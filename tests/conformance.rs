//! Integration test for the tri-oracle conformance harness through the
//! `dos` facade: the reduced matrix must be fully conformant, and the
//! divergence report must serialize and render.

use dos::oracle::{DivergenceReport, Oracle};

#[test]
fn quick_conformance_matrix_is_green() {
    let outcome = Oracle::quick().run();
    assert!(
        outcome.report.is_conformant(),
        "divergences found:\n{}",
        outcome.report.render_table()
    );
    // The reduced matrix still covers every scheduler family...
    for family in ["zero3-offload", "twinflow", "deep-optimizer-states"] {
        assert!(
            outcome.perf_cells.iter().any(|c| c.scheduler == family),
            "matrix never exercised {family}"
        );
    }
    // ...and every update rule in the numerics oracle.
    for rule in ["adam", "adamw", "adagrad", "rmsprop"] {
        assert!(
            outcome.numerics_cells.iter().any(|c| c.rule == rule),
            "numerics oracle never exercised {rule}"
        );
    }
}

#[test]
fn perf_cells_expose_their_bands() {
    let outcome = Oracle::quick().run();
    for cell in &outcome.perf_cells {
        assert!(cell.band.lo < cell.band.hi, "degenerate band in {}", cell.coordinates());
        assert!(cell.predicted_secs > 0.0 && cell.simulated_secs > 0.0);
    }
}

#[test]
fn report_survives_json_round_trip() {
    let outcome = Oracle::quick().run();
    let json = dos::oracle::to_json(&outcome.report).expect("serialize");
    let back: DivergenceReport = dos::oracle::from_json(&json).expect("deserialize");
    assert_eq!(back, outcome.report);
}
