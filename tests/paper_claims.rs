//! Integration tests asserting the paper's headline claims hold across the
//! whole stack (profiles → simulator → schedulers → reports).

use dos::core::{DeepOptimizerStates, PerfModel, StridePolicy, TwinFlow, Zero3Offload};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{simulate_iteration, simulate_training, TrainConfig};

fn zoo() -> Vec<ModelSpec> {
    ModelSpec::table2_zoo()
}

/// Abstract: "we demonstrate 2.5x faster iterations over state-of-the-art
/// approaches" — at least 2x for every model, optimizer fully offloaded.
#[test]
fn headline_iteration_speedup() {
    let profile = HardwareProfile::jlse_h100();
    for spec in zoo() {
        let z = simulate_iteration(
            &TrainConfig::baseline(spec.clone(), profile.clone()),
            &Zero3Offload,
        )
        .unwrap();
        let d = simulate_iteration(
            &TrainConfig::deep_optimizer_states(spec.clone(), profile.clone()),
            &DeepOptimizerStates::default(),
        )
        .unwrap();
        let speedup = z.total_secs / d.total_secs;
        assert!(
            (2.0..2.8).contains(&speedup),
            "{}: speedup {speedup:.2} outside the paper band",
            spec.name
        );
    }
}

/// §5.4: "asynchronous transfers during the backward pass constitute 1.9x
/// of the speedup, and the update phase further accelerated the iteration"
/// — both components contribute.
#[test]
fn speedup_decomposes_into_backward_and_update() {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("20B").unwrap();
    let z = simulate_iteration(&TrainConfig::baseline(spec.clone(), profile.clone()), &Zero3Offload)
        .unwrap();
    let d = simulate_iteration(
        &TrainConfig::deep_optimizer_states(spec, profile),
        &DeepOptimizerStates::default(),
    )
    .unwrap();
    assert!(z.backward_secs / d.backward_secs > 1.8, "backward component too small");
    assert!(z.update_secs / d.update_secs > 1.4, "update component too small");
}

/// §4.2 + §5.4: Equation 1 gives k = 2 on both testbeds, and k = 2 is also
/// the simulated optimum.
#[test]
fn stride_two_analytic_and_empirical() {
    for profile in [HardwareProfile::jlse_h100(), HardwareProfile::v100_node()] {
        let analytic = PerfModel::new(profile.perf_model_inputs()).optimal_stride();
        assert_eq!(analytic, Some(2), "{}: analytic stride", profile.name);

        let spec = ModelSpec::by_name("7B").unwrap();
        let mut best = (0usize, f64::INFINITY);
        for k in 1..=5 {
            let cfg = TrainConfig::deep_optimizer_states(spec.clone(), profile.clone());
            let r = simulate_iteration(
                &cfg,
                &DeepOptimizerStates { stride: StridePolicy::Fixed(k), ..Default::default() },
            )
            .unwrap();
            if r.update_secs < best.1 {
                best = (k, r.update_secs);
            }
        }
        assert_eq!(best.0, 2, "{}: empirical stride", profile.name);
    }
}

/// Figure 10: at least 1.5x faster updates than TwinFlow at every static
/// residency ratio.
#[test]
fn beats_twinflow_at_all_ratios() {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("20B").unwrap();
    for ratio in [0.0, 0.25, 0.5] {
        let mut tcfg = TrainConfig::baseline(spec.clone(), profile.clone());
        tcfg.offload.gpu_resident_ratio = ratio;
        let tw = simulate_iteration(&tcfg, &TwinFlow).unwrap();
        let mut dcfg = TrainConfig::deep_optimizer_states(spec.clone(), profile.clone());
        dcfg.offload.gpu_resident_ratio = ratio;
        let d = simulate_iteration(&dcfg, &DeepOptimizerStates::default()).unwrap();
        assert!(
            tw.update_secs / d.update_secs > 1.5,
            "ratio {ratio}: {:.2} vs {:.2}",
            tw.update_secs,
            d.update_secs
        );
    }
}

/// Figure 11's memory headline: DOS at 0 % static residency beats TwinFlow
/// at 50 % — faster *and* tens of GB less GPU memory.
#[test]
fn faster_with_less_memory_than_twinflow_50() {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("20B").unwrap();
    let mut tcfg = TrainConfig::baseline(spec.clone(), profile.clone());
    tcfg.offload.gpu_resident_ratio = 0.5;
    let tw = simulate_iteration(&tcfg, &TwinFlow).unwrap();
    let dcfg = TrainConfig::deep_optimizer_states(spec, profile);
    let d = simulate_iteration(&dcfg, &DeepOptimizerStates::default()).unwrap();
    assert!(d.total_secs < tw.total_secs, "{} !< {}", d.total_secs, tw.total_secs);
    let saved = tw.gpu_peak_bytes.saturating_sub(d.gpu_peak_bytes);
    assert!(
        saved > 20_000_000_000,
        "expected tens of GB saved, got {:.1} GB",
        saved as f64 / 1e9
    );
}

/// Figure 9: spilled asynchronous transfers do not build up stalls across
/// 100 iterations.
#[test]
fn hundred_iterations_stay_stable() {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("20B").unwrap();
    let cfg = TrainConfig::deep_optimizer_states(spec, profile);
    let r = simulate_training(&cfg, &DeepOptimizerStates::default(), 100).unwrap();
    assert!(r.is_stable(2, 0.05), "iterations drifted: {:?}", &r.iteration_durations()[..10]);
    assert!(r.oom.is_none());
}

/// Figure 2 / §4.2: the subgroup size affects neither the baseline
/// iteration time (beyond a few %) nor the optimal stride.
#[test]
fn subgroup_size_is_free() {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("13B").unwrap();
    let mut times = Vec::new();
    for sg in [50_000_000usize, 100_000_000, 1_000_000_000] {
        let mut cfg = TrainConfig::baseline(spec.clone(), profile.clone());
        cfg.offload.subgroup_params = sg;
        times.push(simulate_iteration(&cfg, &Zero3Offload).unwrap().total_secs);
    }
    let max = times.iter().copied().fold(f64::MIN, f64::max);
    let min = times.iter().copied().fold(f64::MAX, f64::min);
    assert!(max / min < 1.05, "subgroup size changed the baseline: {times:?}");
}

/// The Grace-Hopper future-work profile (§6): a 200 GB/s C2C link pushes
/// the optimal schedule toward all-GPU updates.
#[test]
fn grace_hopper_prefers_more_gpu() {
    let gh = PerfModel::new(HardwareProfile::grace_hopper().perf_model_inputs());
    let h100 = PerfModel::new(HardwareProfile::jlse_h100().perf_model_inputs());
    assert!(gh.gpu_fraction() >= h100.gpu_fraction());
    assert_eq!(gh.optimal_stride(), Some(1), "C2C should want everything on the GPU");
}
