//! Integration tests of the JSON configuration surface (§4.4): the single
//! `deep_optimizer_states` entry drives the whole middleware.

use dos_runtime::{run_iteration, run_training, scheduler_for, RuntimeConfig};

#[test]
fn full_config_document_round_trip() {
    let json = r#"{
        "model": "13B",
        "profile": "jlse-4xH100",
        "zero_stage": 3,
        "micro_batch": 2,
        "grad_accumulation": 2,
        "subgroup_size": 50000000,
        "gpu_resident_ratio": 0.1,
        "activation_checkpointing": true,
        "deep_optimizer_states": {
            "enabled": true,
            "update_stride": "auto",
            "fp32_gradient_path": true,
            "overlap_backward": true
        }
    }"#;
    let cfg = RuntimeConfig::from_json(json).unwrap();
    let train = cfg.resolve().unwrap();
    assert_eq!(train.spec.name, "13B");
    assert_eq!(train.micro_batch, 2);
    assert_eq!(train.grad_accumulation, 2);
    assert_eq!(train.offload.subgroup_params, 50_000_000);
    let reparsed = RuntimeConfig::from_json(&cfg.to_json()).unwrap();
    assert_eq!(reparsed.resolve().unwrap(), train);
}

#[test]
fn the_paper_in_one_flag() {
    let on = RuntimeConfig::from_json(r#"{ "model": "20B" }"#).unwrap();
    let off = RuntimeConfig::from_json(
        r#"{ "model": "20B", "deep_optimizer_states": { "enabled": false } }"#,
    )
    .unwrap();
    assert_eq!(scheduler_for(&on).name(), "deep-optimizer-states");
    assert_eq!(scheduler_for(&off).name(), "zero3-offload");
    let fast = run_iteration(&on).unwrap();
    let slow = run_iteration(&off).unwrap();
    assert!((2.0..2.8).contains(&(slow.total_secs / fast.total_secs)));
}

#[test]
fn stride_override_matches_fixed_scheduler() {
    let auto = RuntimeConfig::from_json(r#"{ "model": "7B" }"#).unwrap();
    let fixed = RuntimeConfig::from_json(
        r#"{ "model": "7B", "deep_optimizer_states": { "update_stride": 2 } }"#,
    )
    .unwrap();
    // Auto resolves to k = 2 on the default profile, so both runs agree.
    let a = run_iteration(&auto).unwrap();
    let b = run_iteration(&fixed).unwrap();
    assert_eq!(a.total_secs, b.total_secs);
}

#[test]
fn v100_profile_via_config() {
    let cfg = RuntimeConfig::from_json(
        r#"{ "model": "7B", "profile": "4xV100-32GB" }"#,
    )
    .unwrap();
    let r = run_training(&cfg, 3).unwrap();
    assert_eq!(r.iterations, 3);
    assert!(r.total_secs > 0.0);
}

#[test]
fn bad_documents_fail_loudly() {
    assert!(RuntimeConfig::from_json("{").is_err());
    assert!(RuntimeConfig::from_json(r#"{ "model": "7B", "unknown": 1 }"#).is_err());
    let cfg = RuntimeConfig::from_json(r#"{ "model": "nope" }"#).unwrap();
    assert!(run_iteration(&cfg).is_err());
}
