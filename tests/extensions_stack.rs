//! Integration tests of the extension features through the public surface:
//! JSON-configured NVMe tiering, schedule explanation, checkpointing in
//! training, and the calibration bridge.

use dos::core::{explain_schedule, PerfModel};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{
    simulate_training, simulate_training_with_checkpoints, CheckpointPolicy, TrainConfig,
};
use dos_runtime::{run_iteration, scheduler_for, RuntimeConfig};

/// The whole §6 NVMe story through the JSON config: a 65B model that
/// overflows host DRAM trains once `nvme_offload` is flipped on.
#[test]
fn nvme_tier_via_json() {
    let dram_bound = RuntimeConfig::from_json(r#"{ "model": "65B" }"#).unwrap();
    let r = run_iteration(&dram_bound).unwrap();
    assert!(r.host_oom.is_some(), "65B must overflow 512 GB DRAM");

    let tiered =
        RuntimeConfig::from_json(r#"{ "model": "65B", "nvme_offload": true }"#).unwrap();
    assert_eq!(scheduler_for(&tiered).name(), "dos-nvme-offload");
    let r = run_iteration(&tiered).unwrap();
    assert!(r.host_oom.is_none(), "{:?}", r.host_oom);
    assert!(r.oom.is_none(), "{:?}", r.oom);
    assert!(r.total_secs > 0.0);
}

/// The explanation, the prediction, and the simulation agree on the 20B
/// schedule within a reasonable band.
#[test]
fn explanation_matches_simulation() {
    let cfg = TrainConfig::deep_optimizer_states(
        ModelSpec::by_name("20B").unwrap(),
        HardwareProfile::jlse_h100(),
    );
    let e = explain_schedule(&cfg);
    assert_eq!(e.stride, Some(2));
    let r = dos::sim::simulate_iteration(&cfg, &dos::core::DeepOptimizerStates::default())
        .unwrap();
    let err = (e.predicted_chosen_secs - r.update_secs).abs() / r.update_secs;
    assert!(
        err < 0.15,
        "prediction {:.2}s vs simulated {:.2}s ({:.0}% off)",
        e.predicted_chosen_secs,
        r.update_secs,
        err * 100.0
    );
}

/// Checkpointing policies through the simulated trainer keep iteration
/// stability intact.
#[test]
fn checkpointing_preserves_stability() {
    let cfg = TrainConfig::deep_optimizer_states(
        ModelSpec::by_name("13B").unwrap(),
        HardwareProfile::jlse_h100(),
    );
    let sched = dos::core::DeepOptimizerStates::default();
    let plain = simulate_training(&cfg, &sched, 9).unwrap();
    let ckpt = simulate_training_with_checkpoints(
        &cfg,
        &sched,
        9,
        CheckpointPolicy { every: 3, asynchronous: true },
    )
    .unwrap();
    assert!(plain.is_stable(1, 0.05));
    // Async checkpoints must not destabilize the cadence either.
    let durs = ckpt.iteration_durations();
    let mean = durs[1..].iter().sum::<f64>() / (durs.len() - 1) as f64;
    for d in &durs[1..] {
        assert!((d - mean).abs() < 0.1 * mean, "cadence wobble: {durs:?}");
    }
}

/// The calibration report plugs into the same PerfModel type the profiles
/// use, end to end.
#[test]
fn calibration_bridges_into_the_model() {
    let report = dos::core::calibrate(1 << 16);
    let machine_model = report.perf_model(HardwareProfile::jlse_h100().gpu_update_pps);
    let profile_model =
        PerfModel::new(HardwareProfile::jlse_h100().perf_model_inputs());
    // Both are valid solver instances; the profile one must give the
    // paper's k = 2, the host one whatever this machine deserves.
    assert_eq!(profile_model.optimal_stride(), Some(2));
    let _ = machine_model.optimal_stride();
}

/// Extended-zoo lookups work everywhere a Table 2 name does.
#[test]
fn extended_zoo_is_first_class() {
    for name in ["33B", "65B"] {
        let spec = ModelSpec::by_name(name).unwrap();
        let cfg = TrainConfig::deep_optimizer_states(spec, HardwareProfile::jlse_h100());
        assert!(cfg.params_per_rank() > 7_000_000_000);
        let json = format!(r#"{{ "model": "{name}", "nvme_offload": true }}"#);
        let rc = RuntimeConfig::from_json(&json).unwrap();
        assert!(rc.resolve().is_ok());
    }
}
