//! Integration tests of the functional stack: tokenizer → dataset →
//! data-parallel threads → collectives → sharded optimizer → interleaved
//! hybrid pipeline, with real numerics end to end.

use dos::core::{hybrid_update, PipelineConfig, StridePolicy};
use dos::data::{BpeTokenizer, Corpus, TokenDataset};
use dos::nn::{Gpt, GptConfig, VisitParams};
use dos::optim::{GradPrecision, MixedPrecisionState, ModelOptimizer, UpdateRule};
use dos::zero::partition_into_subgroups;
use dos_runtime::{train_functional, FunctionalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn real_dataset(seq: usize) -> (BpeTokenizer, TokenDataset) {
    let corpus = Corpus::synthetic(7, 200);
    let tokenizer = BpeTokenizer::train(&corpus.joined_text(), 384);
    let dataset = TokenDataset::pack(&corpus, &tokenizer, seq);
    (tokenizer, dataset)
}

/// The full data path produces trainable batches and the model learns them.
#[test]
fn corpus_to_convergence() {
    let (tokenizer, dataset) = real_dataset(12);
    assert!(dataset.len() > 20, "dataset too small: {}", dataset.len());
    let cfg = FunctionalConfig {
        model: GptConfig {
            vocab_size: tokenizer.vocab_size(),
            max_seq: 12,
            dim: 24,
            num_layers: 2,
            num_heads: 2,
            init_std: 0.07,
        },
        world: 2,
        micro_batch: 2,
        ..FunctionalConfig::small()
    };
    let r = train_functional(&cfg, &dataset, 15).unwrap();
    assert!(r.ranks_consistent);
    let early: f32 = r.losses[..3].iter().sum::<f32>() / 3.0;
    let late: f32 = r.losses[12..].iter().sum::<f32>() / 3.0;
    assert!(late < early, "no learning: {early} -> {late}");
}

/// The interleaved pipeline matches a plain `ModelOptimizer` trajectory
/// when the data and model are identical (single rank, FP32 grads).
#[test]
fn pipeline_matches_reference_optimizer() {
    let (_, dataset) = real_dataset(8);
    let gcfg = GptConfig { vocab_size: 384, max_seq: 8, dim: 16, num_layers: 1, num_heads: 2, init_std: 0.08 };

    // Reference: monolithic optimizer, fp16-rounded write-back.
    let mut rng = StdRng::seed_from_u64(99);
    let mut ref_model = Gpt::new(gcfg.clone(), &mut rng);
    let mut ref_opt = ModelOptimizer::new(
        &mut ref_model,
        UpdateRule::adam(),
        5e-3,
        GradPrecision::Fp32,
        true,
    );

    // Pipeline path: same model, hybrid updates over 7-element subgroups.
    let mut rng = StdRng::seed_from_u64(99);
    let mut pipe_model = Gpt::new(gcfg, &mut rng);
    let n = pipe_model.num_params();
    let mut state = MixedPrecisionState::new(pipe_model.gather_params(), UpdateRule::adam(), 5e-3);
    let subgroups = partition_into_subgroups(n, 1000);
    let pipe_cfg = PipelineConfig {
        stride: StridePolicy::Fixed(3),
        static_residents: 1,
        ..PipelineConfig::default()
    };

    let mut loader = dos::data::DataLoader::new(0, 1, 2, 5);
    for _ in 0..4 {
        let batch = loader.next_batch(&dataset);
        let l1 = ref_model.loss_and_backward(&batch.inputs, &batch.targets, batch.batch, batch.seq_len);
        let l2 =
            pipe_model.loss_and_backward(&batch.inputs, &batch.targets, batch.batch, batch.seq_len);
        assert_eq!(l1, l2, "losses diverged before update");
        ref_opt.step(&mut ref_model);

        let grads = pipe_model.gather_grads();
        let report = hybrid_update(&mut state, &grads, &subgroups, pipe_cfg).unwrap();
        let fp16: Vec<f32> = report.fp16_params.iter().map(|h| h.to_f32()).collect();
        pipe_model.scatter_params(&fp16);
        pipe_model.zero_grads();

        assert_eq!(ref_opt.state().params(), state.params(), "master weights diverged");
        assert_eq!(ref_model.gather_params(), pipe_model.gather_params(), "device copies diverged");
    }
}

/// Stride and residents sweep at a realistic parameter count: every
/// configuration is bitwise identical.
#[test]
fn pipeline_configurations_agree_at_scale() {
    let n = 200_000;
    let init: Vec<f32> = (0..n).map(|i| ((i % 997) as f32 / 997.0) - 0.5).collect();
    let grads: Vec<f32> = (0..n).map(|i| ((i % 613) as f32 / 613.0) - 0.5).collect();
    let subgroups = partition_into_subgroups(n, 9_973);

    let mut reference = MixedPrecisionState::new(init.clone(), UpdateRule::adamw(0.01), 0.01);
    reference.full_step(&grads);

    for (stride, residents) in [
        (StridePolicy::Fixed(2), 0),
        (StridePolicy::Fixed(2), 3),
        (StridePolicy::Fixed(5), 1),
        (StridePolicy::Fixed(1), 0),
        (StridePolicy::CpuOnly, 4),
    ] {
        let mut state = MixedPrecisionState::new(init.clone(), UpdateRule::adamw(0.01), 0.01);
        let cfg = PipelineConfig { stride, static_residents: residents, ..Default::default() };
        hybrid_update(&mut state, &grads, &subgroups, cfg).unwrap();
        assert_eq!(
            reference.params(),
            state.params(),
            "stride {stride:?}, residents {residents} diverged"
        );
    }
}

/// Gradient-precision paths stay close but are distinguishable — the FP16
/// flush rounds, the FP32 path does not (Figure 6's correctness backdrop).
#[test]
fn gradient_precision_paths() {
    let gcfg = GptConfig::tiny();
    let mut rng = StdRng::seed_from_u64(3);
    let mut m = Gpt::new(gcfg, &mut rng);
    m.loss_and_backward(&[1, 2, 3, 4, 5, 6, 7, 8], &[2, 3, 4, 5, 6, 7, 8, 9], 2, 4);
    let opt32 = ModelOptimizer::new(&mut m, UpdateRule::adam(), 1e-2, GradPrecision::Fp32, false);
    let opt16 =
        ModelOptimizer::new(&mut m, UpdateRule::adam(), 1e-2, GradPrecision::Fp16Flush, false);
    let g32 = opt32.gather_grads(&mut m);
    let g16 = opt16.gather_grads(&mut m);
    assert_ne!(g32, g16, "fp16 flush should round at least one gradient");
    // Gradients comfortably inside FP16's normal range round within 2^-11;
    // tiny ones underflow entirely — the very hazard loss scaling exists
    // for, and part of why the paper's FP32 path also helps numerically.
    let max_rel: f32 = g32
        .iter()
        .zip(g16.iter())
        .filter(|(a, _)| a.abs() > 1e-4)
        .map(|(a, b)| (a - b).abs() / a.abs())
        .fold(0.0, f32::max);
    assert!(max_rel < 1e-2, "fp16 rounding error too large: {max_rel}");
    let underflows = g32
        .iter()
        .zip(g16.iter())
        .filter(|(a, b)| **a != 0.0 && **b == 0.0)
        .count();
    assert!(underflows < g32.len() / 2, "implausibly many fp16 underflows: {underflows}");
}
