//! End-to-end chaos campaign over the full middleware: device-worker
//! kills mid-update, a torn checkpoint at recovery time, and a simulated
//! PCIe degradation window with transient transfer faults — the same
//! battery `dos-cli chaos` runs in CI.

use dos_runtime::{run_chaos, ChaosOptions, FaultKind, RuntimeConfig};

fn config() -> RuntimeConfig {
    RuntimeConfig::from_json(
        r#"{ "model": "7B", "deep_optimizer_states": { "enabled": true } }"#,
    )
    .unwrap()
}

/// The full seeded campaign holds every robustness invariant: degraded
/// updates stay byte-exact, recovery falls back past the torn checkpoint
/// to a bitwise-identical resume, and simulated faults delay — never
/// drop — scheduled work.
#[test]
fn seeded_campaign_upholds_every_invariant() {
    let report =
        run_chaos(&config(), &ChaosOptions { seed: 2026, ..Default::default() }).unwrap();
    assert!(report.passed(), "{}", report.render());
    let names: Vec<&str> = report.checks.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "pipeline-degradation-byte-exact",
            "degraded-training-matches-healthy",
            "monitored-incident-flight-dump",
            "checkpoint-recovery-bitwise",
            "sim-faults-traced-not-dropped",
        ],
        "{}",
        report.render()
    );
}

/// `--faults` narrows the campaign to the selected fault kinds.
#[test]
fn fault_subset_runs_only_selected_checks() {
    let opts = ChaosOptions {
        seed: 1,
        faults: vec![FaultKind::CkptCorrupt],
        trace_out: None,
        flight_out: None,
        transport_faults: None,
    };
    let report = run_chaos(&config(), &opts).unwrap();
    assert_eq!(report.checks.len(), 1, "{}", report.render());
    assert_eq!(report.checks[0].name, "checkpoint-recovery-bitwise");
    assert!(report.passed(), "{}", report.render());
}

/// Different seeds inject different worker-kill points, and each campaign
/// reports what it injected.
#[test]
fn campaigns_vary_with_the_seed_but_always_hold() {
    for seed in [0u64, 7, 99] {
        let opts = ChaosOptions {
            seed,
            faults: vec![FaultKind::WorkerKill],
            trace_out: None,
            flight_out: None,
            transport_faults: None,
        };
        let report = run_chaos(&config(), &opts).unwrap();
        assert!(report.passed(), "seed {seed}:\n{}", report.render());
        assert!(
            report.checks.iter().all(|c| !c.detail.is_empty()),
            "seed {seed} produced an unexplained check"
        );
    }
}
