//! Train a tiny GPT on the synthetic corpus, then sample text from it —
//! exercising the whole functional stack (tokenizer, data-parallel
//! training with interleaved hybrid updates, autoregressive decoding).
//!
//! ```sh
//! cargo run --release --example generate_text
//! ```

use dos::data::{BpeTokenizer, Corpus, TokenDataset};
use dos::nn::{Gpt, GptConfig, VisitParams};
use dos::optim::LrSchedule;
use dos_runtime::{train_functional, FunctionalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let corpus = Corpus::synthetic(7, 600);
    let tokenizer = BpeTokenizer::train(&corpus.joined_text(), 512);
    let seq_len = 16;
    let dataset = TokenDataset::pack(&corpus, &tokenizer, seq_len);
    println!(
        "tokenizer: {} entries, {:.2} bytes/token on the corpus; {} training sequences",
        tokenizer.vocab_size(),
        tokenizer.bytes_per_token(&corpus.joined_text()),
        dataset.len(),
    );

    let cfg = FunctionalConfig {
        model: GptConfig {
            vocab_size: tokenizer.vocab_size(),
            max_seq: seq_len,
            dim: 48,
            num_layers: 2,
            num_heads: 4,
            init_std: 0.05,
        },
        world: 2,
        micro_batch: 8,
        lr: 4e-3,
        lr_schedule: Some(LrSchedule::WarmupCosine {
            peak: 4e-3,
            warmup_steps: 5,
            total_steps: 60,
            min_factor: 0.1,
        }),
        ..FunctionalConfig::small()
    };

    const ITERS: usize = 60;
    println!("training {ITERS} iterations on {} ranks with stride-2 interleaving...", cfg.world);
    let report = train_functional(&cfg, &dataset, ITERS).expect("training failed");
    println!(
        "loss: {:.3} -> {:.3} (ranks consistent: {})\n",
        report.losses[0],
        report.losses[ITERS - 1],
        report.ranks_consistent,
    );

    // Rebuild a model from the trained parameters and sample from it.
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = Gpt::new(cfg.model.clone(), &mut rng);
    model.scatter_params(&report.final_params);

    let prompt_text = "The ";
    let prompt: Vec<usize> =
        tokenizer.encode(prompt_text).into_iter().map(|t| t as usize).collect();
    for temperature in [0.0f32, 0.8] {
        let mut rng = StdRng::seed_from_u64(42);
        let out = model.generate(&prompt, 24, temperature, &mut rng);
        let ids: Vec<u32> = out.iter().map(|&t| t as u32).collect();
        println!("T={temperature:<4} | {:?}", tokenizer.decode(&ids));
    }
    println!(
        "\n(A 2-layer, 48-dim model after 60 steps is no poet — the point is that the\n\
         whole pipeline, trained through the interleaved hybrid updater, decodes.)"
    );
}
