//! Functional end-to-end training: a tiny GPT on a synthetic corpus, with
//! real data-parallel ranks (threads), real ring collectives, a real BPE
//! tokenizer, and the *actual interleaved hybrid pipeline* doing the
//! optimizer updates — demonstrating the paper's §4.1 correctness claim:
//! interleaved CPU/GPU subgroup updates change nothing about training.
//!
//! ```sh
//! cargo run --release --example tiny_train_convergence
//! ```

use dos::core::StridePolicy;
use dos::data::{BpeTokenizer, Corpus, TokenDataset};
use dos::nn::GptConfig;
use dos_runtime::{train_functional, FunctionalConfig};

fn main() {
    // Data pipeline: synthetic corpus -> trained BPE -> packed sequences.
    let corpus = Corpus::synthetic(2024, 400);
    let tokenizer = BpeTokenizer::train(&corpus.joined_text(), 512);
    let seq_len = 16;
    let dataset = TokenDataset::pack(&corpus, &tokenizer, seq_len);
    println!(
        "corpus: {} records, {} chars | tokenizer vocab {} | {} sequences of {} tokens",
        corpus.records().len(),
        corpus.total_chars(),
        tokenizer.vocab_size(),
        dataset.len(),
        seq_len,
    );

    let base = FunctionalConfig {
        model: GptConfig {
            vocab_size: tokenizer.vocab_size(),
            max_seq: seq_len,
            dim: 32,
            num_layers: 2,
            num_heads: 4,
            init_std: 0.06,
        },
        world: 2,
        micro_batch: 4,
        ..FunctionalConfig::small()
    };

    const ITERS: usize = 30;
    println!("\ntraining {} iterations on {} data-parallel ranks...\n", ITERS, base.world);

    // Reference: everything on the "CPU".
    let mut cpu_cfg = base.clone();
    cpu_cfg.pipeline.stride = StridePolicy::CpuOnly;
    let cpu = train_functional(&cpu_cfg, &dataset, ITERS).expect("cpu-only training failed");

    // Interleaved: every second subgroup goes through the device worker,
    // travelling over the DMA channels — Algorithm 1 with real numerics.
    let mut hybrid_cfg = base;
    hybrid_cfg.pipeline.stride = StridePolicy::Fixed(2);
    let hybrid =
        train_functional(&hybrid_cfg, &dataset, ITERS).expect("interleaved training failed");

    println!("iter   cpu-only loss   interleaved loss");
    for i in (0..ITERS).step_by(5) {
        println!("{:>4}   {:>13.4}   {:>16.4}", i, cpu.losses[i], hybrid.losses[i]);
    }
    println!(
        "{:>4}   {:>13.4}   {:>16.4}",
        ITERS - 1,
        cpu.losses[ITERS - 1],
        hybrid.losses[ITERS - 1]
    );

    assert!(cpu.losses[ITERS - 1] < cpu.losses[0], "training did not converge");
    assert_eq!(
        cpu.losses, hybrid.losses,
        "interleaved offloading must not change the loss trajectory"
    );
    assert_eq!(
        cpu.final_params, hybrid.final_params,
        "interleaved offloading must be bitwise identical"
    );
    assert!(cpu.ranks_consistent && hybrid.ranks_consistent);

    println!(
        "\nloss trajectories and final parameters are BITWISE IDENTICAL across the\n\
         CPU-only and interleaved schedules, and all data-parallel ranks agree —\n\
         the embarrassingly-parallel-update property (§4.1) the scheduler exploits."
    );
}
