//! Scenario: porting the middleware to a new machine. The update stride `k`
//! must be re-derived from four measured throughputs (Equation 1, §4.2) —
//! this example does that for every built-in hardware profile, checks the
//! analytic answer against a simulated stride sweep, and shows what a
//! Grace-Hopper-class 200 GB/s C2C interconnect (the paper's future-work
//! hardware, §6) does to the answer.
//!
//! ```sh
//! cargo run --release --example interleave_tuning
//! ```

use dos::core::{DeepOptimizerStates, PerfModel, StridePolicy};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{simulate_iteration, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ModelSpec::by_name("7B").expect("zoo model");

    for profile in HardwareProfile::presets() {
        let inputs = profile.perf_model_inputs();
        let model = PerfModel::new(inputs);
        println!("== {} ==", profile.name);
        println!(
            "   measured: B={:.1} B P/s, Ug={:.0}, Uc={:.1}, Dc={:.1}",
            inputs.b / 1e9,
            inputs.ug / 1e9,
            inputs.uc / 1e9,
            inputs.dc / 1e9,
        );
        match model.raw_stride() {
            Some(raw) => println!(
                "   Eq. 1: raw k = {raw:.2} -> stride {} ({}% of updates on the GPU)",
                model.optimal_stride().unwrap(),
                (model.gpu_fraction() * 100.0).round(),
            ),
            None => println!("   Eq. 1: CPU side fast enough — no GPU offloading"),
        }

        // Validate against a simulated sweep (the §5.4 methodology).
        let mut best: Option<(usize, f64)> = None;
        print!("   simulated update time by stride:");
        for k in 1..=5 {
            let cfg = TrainConfig::deep_optimizer_states(spec.clone(), profile.clone());
            let r = simulate_iteration(
                &cfg,
                &DeepOptimizerStates { stride: StridePolicy::Fixed(k), ..Default::default() },
            )?;
            print!("  k={k}: {:.2}s", r.update_secs);
            if best.is_none_or(|(_, t)| r.update_secs < t) {
                best = Some((k, r.update_secs));
            }
        }
        let (best_k, _) = best.expect("swept at least one stride");
        println!("\n   simulated optimum: k = {best_k}\n");
    }

    println!(
        "Note how the Grace-Hopper-class profile pushes the optimum toward k = 1\n\
         (update everything on the GPU): with a 200 GB/s C2C link, staging a subgroup\n\
         costs less than updating it on the CPU — the paper's §6 argument that fast\n\
         CPU-GPU interconnects make dynamic offloading *more* attractive, not less.\n"
    );

    // Finally, measure THIS machine's CPU-side inputs with the functional
    // kernels (the §5.4 methodology, live).
    let report = dos::core::calibrate(1 << 20);
    println!("== this machine (measured with the functional kernels) ==");
    println!(
        "   U_c = {:.2} B P/s (real Adam), D_c = {:.2} B P/s (real downscale), \
         B proxy = {:.2} B P/s (memcpy)",
        report.cpu_update_pps / 1e9,
        report.cpu_downscale_pps / 1e9,
        report.staging_pps / 1e9,
    );
    let model = report.perf_model(25.0e9); // borrow the H100's U_g
    match model.optimal_stride() {
        Some(k) => println!("   with an H100-class GPU attached, Eq. 1 would pick k = {k}"),
        None => println!("   this CPU is fast enough that Eq. 1 would skip GPU offloading"),
    }
    Ok(())
}
