//! Scenario: a resource-constrained lab fine-tunes LLMs on a single
//! 4-GPU node (the paper's motivating use case, §1) and needs to choose an
//! offloading strategy per model size.
//!
//! Walks the Table 2 zoo: checks memory feasibility, picks the largest
//! micro-batch that fits, and compares a 100-iteration fine-tuning run
//! under ZeRO-3 offload, TwinFlow (20 % static), and Deep Optimizer States.
//!
//! ```sh
//! cargo run --release --example finetune_20b
//! ```

use dos::core::{DeepOptimizerStates, TwinFlow, Zero3Offload};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{simulate_training, TrainConfig, UpdateScheduler};
use dos::zero::{MemoryEstimator, OffloadConfig, ZeroStage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = HardwareProfile::jlse_h100();
    const ITERS: usize = 100;

    println!(
        "== Fine-tuning feasibility and cost on {} ({} GPUs, {} GB HBM each) ==\n",
        profile.name,
        profile.num_gpus,
        profile.gpu_hbm_bytes / (1 << 30),
    );

    for spec in ModelSpec::table2_zoo() {
        let est = MemoryEstimator::new(
            spec.clone(),
            ZeroStage::Three,
            profile.num_gpus,
            OffloadConfig::default(),
        );
        let Some(max_mb) = est.max_micro_batch(profile.gpu_hbm_bytes, 16) else {
            println!("{:>5}: does not fit even at micro-batch 1 — needs more offloading", spec.name);
            continue;
        };
        let mem = est.per_rank(max_mb);
        println!(
            "{:>5}: {:.1}B params | max micro-batch {} | GPU peak {:.0} GB | host optimizer {:.0} GB/rank",
            spec.name,
            spec.param_count() as f64 / 1e9,
            max_mb,
            mem.gpu_peak() as f64 / 1e9,
            mem.host_optimizer as f64 / 1e9,
        );

        // Compare schedulers at the paper's micro-batch of 1 (larger
        // micro-batches amortize the update phase and shrink everyone's
        // differences — see the fig13_microbatch bench for that sweep).
        let zero3_cfg = TrainConfig::baseline(spec.clone(), profile.clone());
        let mut twin_cfg = zero3_cfg.clone();
        twin_cfg.offload.gpu_resident_ratio = 0.2;
        let dos_cfg = TrainConfig::deep_optimizer_states(spec.clone(), profile.clone());

        let runs: [(&dyn UpdateScheduler, &TrainConfig); 3] = [
            (&Zero3Offload, &zero3_cfg),
            (&TwinFlow, &twin_cfg),
            (&DeepOptimizerStates::default(), &dos_cfg),
        ];
        let mut zero3_total = None;
        for (sched, cfg) in runs {
            let r = simulate_training(cfg, sched, ITERS)?;
            let speedup = zero3_total.map(|z: f64| z / r.total_secs).unwrap_or(1.0);
            if zero3_total.is_none() {
                zero3_total = Some(r.total_secs);
            }
            println!(
                "       {:>22}: {ITERS} iterations in {:>8.1}s  ({:.2}x, stable: {})",
                r.scheduler,
                r.total_secs,
                speedup,
                r.is_stable(2, 0.05),
            );
        }
        println!();
    }

    println!(
        "Takeaway (paper Fig. 9): with Deep Optimizer States, fine-tuning a 20B model\n\
         costs about what a 7B model costs on the stock runtime."
    );
    Ok(())
}
