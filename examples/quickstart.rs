//! Quickstart: enable Deep Optimizer States with one JSON entry and watch a
//! 20B-parameter fine-tuning iteration get ~2x faster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dos::core::PerfModel;
use dos_runtime::{run_iteration, RuntimeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's middleware is configured through a single JSON entry in
    // the training config (§4.4). This is the whole user surface:
    let baseline = RuntimeConfig::from_json(
        r#"{
            "model": "20B",
            "deep_optimizer_states": { "enabled": false }
        }"#,
    )?;
    let with_dos = RuntimeConfig::from_json(
        r#"{
            "model": "20B",
            "deep_optimizer_states": { "enabled": true, "update_stride": "auto" }
        }"#,
    )?;

    let slow = run_iteration(&baseline)?;
    let fast = run_iteration(&with_dos)?;

    println!("== 20B parameters, 4xH100, optimizer fully offloaded to host ==\n");
    for r in [&slow, &fast] {
        println!(
            "{:>22}: forward {:.2}s | backward {:.2}s | update {:.2}s | total {:.2}s  ({:.0} TFLOP/s/GPU)",
            r.scheduler, r.forward_secs, r.backward_secs, r.update_secs, r.total_secs,
            r.tflops_per_gpu,
        );
    }
    println!(
        "\niteration speedup: {:.2}x (paper: 2-2.5x)",
        slow.total_secs / fast.total_secs
    );

    // Under the hood: Equation 1 decides how many subgroup updates to leave
    // on the CPU for each one scheduled on the GPU.
    let train = with_dos.resolve()?;
    let model = PerfModel::new(train.profile.perf_model_inputs());
    println!(
        "performance model: raw k = {:.2} -> update stride {:?} (every {}nd subgroup on the GPU)",
        model.raw_stride().unwrap_or(f64::NAN),
        model.optimal_stride(),
        model.optimal_stride().unwrap_or(0),
    );
    Ok(())
}
