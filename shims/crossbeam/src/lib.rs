//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with MPMC semantics (both endpoints are
//! `Clone + Send + Sync`, unlike `std::sync::mpsc`), which the functional
//! pipeline relies on: receivers are borrowed into scoped threads.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        capacity: Option<usize>,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Sending half of a channel; cloning adds a producer.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of a channel; cloning adds a consumer.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without requiring `T: Debug`, so
    // `.expect()` works on channels of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            cv: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel; `send` blocks while `cap` items queue.
    /// A zero capacity degrades to capacity 1 (no rendezvous support).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.cv.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.inner.cv.notify_all();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.cv.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.cv.wait(st).expect("channel lock");
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().expect("channel lock");
            if let Some(v) = st.queue.pop_front() {
                self.inner.cv.notify_all();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").receivers += 1;
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.inner.state.lock().expect("channel lock").senders -= 1;
            self.inner.cv.notify_all();
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().expect("channel lock").receivers -= 1;
            self.inner.cv.notify_all();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_cross_thread_round_trip() {
            let (tx, rx) = unbounded::<usize>();
            let (back_tx, back_rx) = unbounded::<usize>();
            thread::scope(|s| {
                s.spawn(|| {
                    while let Ok(v) = rx.recv() {
                        back_tx.send(v * 2).unwrap();
                    }
                    drop(back_tx);
                });
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                let mut got: Vec<usize> = Vec::new();
                while let Ok(v) = back_rx.recv() {
                    got.push(v);
                }
                got.sort_unstable();
                assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            });
        }

        #[test]
        fn recv_errors_after_senders_gone() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
