//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with MPMC semantics (both endpoints are
//! `Clone + Send + Sync`, unlike `std::sync::mpsc`), which the functional
//! pipeline relies on: receivers are borrowed into scoped threads.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        capacity: Option<usize>,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Sending half of a channel; cloning adds a producer.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of a channel; cloning adds a consumer.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug without requiring `T: Debug`, so
    // `.expect()` works on channels of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline; senders may still exist.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive operation"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            cv: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel; `send` blocks while `cap` items queue.
    /// A zero capacity degrades to capacity 1 (no rendezvous support).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.cv.wait(st).expect("channel lock");
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            self.inner.cv.notify_all();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.cv.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.cv.wait(st).expect("channel lock");
            }
        }

        /// Blocks until a value, disconnection, or the timeout elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.cv.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .inner
                    .cv
                    .wait_timeout(st, remaining)
                    .expect("channel lock");
                st = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().expect("channel lock");
            if let Some(v) = st.queue.pop_front() {
                self.inner.cv.notify_all();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").receivers += 1;
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.inner.state.lock().expect("channel lock").senders -= 1;
            self.inner.cv.notify_all();
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().expect("channel lock").receivers -= 1;
            self.inner.cv.notify_all();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_cross_thread_round_trip() {
            let (tx, rx) = unbounded::<usize>();
            let (back_tx, back_rx) = unbounded::<usize>();
            thread::scope(|s| {
                s.spawn(|| {
                    while let Ok(v) = rx.recv() {
                        back_tx.send(v * 2).unwrap();
                    }
                    drop(back_tx);
                });
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                let mut got: Vec<usize> = Vec::new();
                while let Ok(v) = back_rx.recv() {
                    got.push(v);
                }
                got.sort_unstable();
                assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            });
        }

        #[test]
        fn recv_errors_after_senders_gone() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            use std::time::Duration;
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_errors_after_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
