//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock harness: each benchmark runs a short warmup, then
//! a fixed measurement window, and prints mean time per iteration plus
//! derived throughput. No statistics, plots, or baselines — enough to run
//! `cargo bench` offline and eyeball regressions.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation: scales the per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    /// Total measured time across `iters` (set by `iter`).
    elapsed: Duration,
    iters: u64,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup and calibration: find an iteration count that fills the
        // measurement window.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        let target =
            ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }
}

/// Top-level harness state.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(300) }
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(name: &str, elapsed: Duration, iters: u64, throughput: Option<Throughput>) {
    let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
    let mut line = format!("{name:<50} {:>12}/iter", format_duration(per_iter));
    if let Some(tp) = throughput {
        let rate = match tp {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                format!("{:.2} GiB/s", n as f64 / per_iter / (1u64 << 30) as f64)
            }
            Throughput::Elements(n) => {
                format!("{:.2} Melem/s", n as f64 / per_iter / 1e6)
            }
        };
        line.push_str(&format!("  {rate:>14}"));
    }
    println!("{line}");
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(name, b.elapsed, b.iters, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), throughput: None }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.parent.measurement_time = t;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            measurement_time: self.parent.measurement_time,
        };
        f(&mut b);
        report(&format!("{}/{label}", self.name), b.elapsed, b.iters, self.throughput);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        self.run(label, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.name.clone();
        self.run(&label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = <$crate::Criterion as ::std::default::Default>::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
