//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Deterministic xoshiro256** generator behind the `Rng`/`SeedableRng`
//! traits, plus `seq::SliceRandom`. Streams differ from upstream `StdRng`
//! (ChaCha12), so tests in this workspace assert *properties* of sampled
//! values, never golden values of the stream itself.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable uniformly over their "natural" domain (`rng.gen()`):
/// full range for integers, `[0, 1)` for floats.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = <u128 as Standard>::sample_standard(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = <u128 as Standard>::sample_standard(rng) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing sampling methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choice, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, matching rand's visitation order (high to low).
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod goldens {
    //! Golden pins of the shim's xoshiro256** stream: the seed tests and
    //! check corpus rely on these exact values never changing. The seed-0
    //! pair matches the reference `rand_xoshiro` test vectors (SplitMix64
    //! seeding), so a drift here means the generator itself changed.

    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn xoshiro256starstar_stream_is_pinned() {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let want: [u64; 8] = [
            0xef33f17055244b74,
            0xe1f591112fb5051b,
            0xd8ab05640214863a,
            0xf985e1f2fb897b03,
            0xaf87a5f7e6ce1408,
            0x86f28e3a0746ff9e,
            0x4e1acb1dbe288cac,
            0x6c13fd25a3155716,
        ];
        for (i, w) in want.into_iter().enumerate() {
            assert_eq!(rng.gen::<u64>(), w, "u64 stream drifted at index {i}");
        }
    }

    #[test]
    fn seed_zero_matches_reference_vectors() {
        // First two outputs of xoshiro256** seeded with SplitMix64(0),
        // as published by the rand_xoshiro crate's test suite.
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.gen::<u64>(), 0x99ec5f36cb75f2b4);
        assert_eq!(rng.gen::<u64>(), 0xbf6e1f784956452a);
    }

    #[test]
    fn derived_draws_are_pinned() {
        // Floats and ranges derive from the same stream; pin one of each
        // so a change to the derivation (not just the core) is caught.
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let f: f64 = rng.gen();
        assert_eq!(f.to_bits(), 0.9343863391160464f64.to_bits());
        let g: f32 = rng.gen();
        assert_eq!(g.to_bits(), 0.8826533f32.to_bits());
        assert_eq!(rng.gen_range(0usize..1000), 819);
    }
}
