//! Offline shim for the `proptest` crate.
//!
//! Samples strategies with a deterministic RNG (seeded from the test
//! name) and runs each case through the test body; failures panic with
//! the sampled inputs. No shrinking — a failing case prints its inputs
//! verbatim instead of a minimized counterexample.

#[doc(hidden)]
pub use ::rand as __rand;

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange, Standard};

    /// A source of sampled values. Unlike real proptest there is no value
    /// tree: `sample` draws directly and failures are not shrunk.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for `any::<T>()`: uniform over T's natural domain.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Uniform sampling over the whole domain of `T`.
    pub fn any<T: Standard>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Helper used by `prop_oneof!` to unify branch types.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    /// Samples a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = {
                    use ::std::hash::{Hash, Hasher};
                    let mut __h = ::std::collections::hash_map::DefaultHasher::new();
                    ::std::stringify!($name).hash(&mut __h);
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        __h.finish(),
                    )
                };
                for __case_idx in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let mut __inputs = ::std::string::String::new();
                    $(
                        __inputs.push_str(&::std::format!(
                            "{} = {:?}, ",
                            ::std::stringify!($arg),
                            &$arg
                        ));
                    )*
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        ::std::panic!(
                            "proptest `{}` case {} failed: {}\n  inputs: {}",
                            ::std::stringify!($name),
                            __case_idx,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($option)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(__l == __r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        ::std::stringify!($left),
                        ::std::stringify!($right),
                        __l,
                        __r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(__l == __r) {
                    return ::std::result::Result::Err(::std::format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        ::std::format!($($fmt)+),
                        __l,
                        __r
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if __l == __r {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        ::std::stringify!($left),
                        ::std::stringify!($right),
                        __l
                    ));
                }
            }
        }
    };
}

/// Discards the current case when `cond` is false. Unlike real proptest
/// the case is not resampled, so heavy use of `prop_assume!` reduces the
/// effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len was {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_picks_from_options(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn assume_discards(b in any::<bool>()) {
            prop_assume!(b);
            prop_assert!(b);
        }
    }
}
