//! Offline shim for the `proptest` crate.
//!
//! Samples strategies with a deterministic RNG (seeded from the test
//! name) and runs each case through the test body. A failing case is
//! *shrunk* by greedy halving descent: each strategy proposes smaller
//! candidates ([`strategy::Strategy::shrink`]) — the floor of its domain,
//! the midpoint toward it, and a single step — and the runner walks to
//! the smallest candidate that still fails (capped at 1000 attempts),
//! then panics with both the minimized and the original inputs.

#[doc(hidden)]
pub use ::rand as __rand;

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange, Standard};

    /// A source of sampled values. Unlike real proptest there is no value
    /// tree: `sample` draws directly, and `shrink` proposes strictly
    /// "smaller" candidates for a failing value (the runner re-checks each
    /// candidate and greedily descends). The default proposes nothing,
    /// which disables shrinking for that strategy.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }
    }

    /// A value with a natural "smallest" point and a halving walk toward
    /// a floor — the engine behind the shim's shrinking. Candidates are
    /// ordered most-aggressive first: the floor itself, the midpoint, a
    /// single step.
    pub trait ShrinkValue: Sized {
        /// The globally simplest value (`0`, `0.0`, `false`).
        fn origin() -> Self;
        /// Candidates strictly between `floor` and `self` (plus `floor`),
        /// empty when `self` is already at the floor.
        fn shrink_toward(&self, floor: &Self) -> Vec<Self>;
    }

    macro_rules! impl_shrink_int {
        ($($t:ty),* $(,)?) => {$(
            impl ShrinkValue for $t {
                fn origin() -> Self {
                    0
                }
                fn shrink_toward(&self, floor: &Self) -> Vec<Self> {
                    let (v, f) = (*self, *floor);
                    if v == f {
                        return Vec::new();
                    }
                    // `abs_diff / 2` always fits the signed type, so the
                    // midpoint is exact even across the full domain.
                    let half = (v.abs_diff(f) / 2) as $t;
                    let mid = if v > f { f + half } else { f - half };
                    let step = if v > f { v - 1 } else { v + 1 };
                    let mut out = vec![f];
                    for c in [mid, step] {
                        if c != v && !out.contains(&c) {
                            out.push(c);
                        }
                    }
                    out
                }
            }
        )*};
    }

    impl_shrink_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_shrink_float {
        ($($t:ty),* $(,)?) => {$(
            impl ShrinkValue for $t {
                fn origin() -> Self {
                    0.0
                }
                fn shrink_toward(&self, floor: &Self) -> Vec<Self> {
                    let (v, f) = (*self, *floor);
                    if v == f || !v.is_finite() || !f.is_finite() {
                        return Vec::new();
                    }
                    let mid = f + (v - f) / 2.0;
                    let mut out = vec![f];
                    if mid != f && mid != v {
                        out.push(mid);
                    }
                    out
                }
            }
        )*};
    }

    impl_shrink_float!(f32, f64);

    impl ShrinkValue for bool {
        fn origin() -> Self {
            false
        }
        fn shrink_toward(&self, floor: &Self) -> Vec<Self> {
            if *self && !*floor {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl<T: ShrinkValue + Clone> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink_toward(&self.start)
        }
    }

    impl<T: ShrinkValue + Clone> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink_toward(self.start())
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy for `any::<T>()`: uniform over T's natural domain.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Uniform sampling over the whole domain of `T`.
    pub fn any<T: Standard>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    impl<T: Standard + ShrinkValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink_toward(&T::origin())
        }
    }

    /// The empty composite (a `proptest!` body with no `in` bindings).
    impl Strategy for () {
        type Value = ();
        fn sample(&self, _rng: &mut StdRng) -> Self::Value {}
    }

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone),+
            {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // Component-wise: shrink one coordinate at a time,
                    // holding the others fixed.
                    let mut out = Vec::new();
                    $(
                        for c in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = c;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            (**self).shrink(value)
        }
    }

    /// Helper used by `prop_oneof!` to unify branch types.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    /// Samples a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Length first — halve toward the minimum, then drop one.
            let len = value.len();
            if len > self.size.min {
                let half = self.size.min + (len - self.size.min) / 2;
                if half < len - 1 {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..len - 1].to_vec());
            }
            // Then each element in place.
            for (i, v) in value.iter().enumerate() {
                for c in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = c;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// The shared property runner behind `proptest!`: samples `cases` values,
/// and on the first failure performs the greedy halving descent — walk to
/// the first still-failing shrink candidate until none fail (or the step
/// budget runs out) — then panics with the minimized and original inputs.
#[doc(hidden)]
pub fn __run_property<S>(
    name: &str,
    cases: u32,
    rng: &mut rand::rngs::StdRng,
    strategy: &S,
    check: impl Fn(&S::Value) -> Result<(), String>,
    describe: impl Fn(&S::Value) -> String,
) where
    S: strategy::Strategy,
    S::Value: Clone,
{
    for case_idx in 0..cases {
        let values = strategy.sample(rng);
        if let Err(msg) = check(&values) {
            let original = values.clone();
            let mut current = values;
            let mut last_msg = msg;
            let mut steps = 0usize;
            'shrinking: while steps < 1000 {
                for cand in strategy.shrink(&current) {
                    steps += 1;
                    if let Err(m) = check(&cand) {
                        current = cand;
                        last_msg = m;
                        continue 'shrinking;
                    }
                    if steps >= 1000 {
                        break 'shrinking;
                    }
                }
                break;
            }
            panic!(
                "proptest `{}` case {} failed: {}\n  minimized inputs: {}\n  original inputs: {}",
                name,
                case_idx,
                last_msg,
                describe(&current),
                describe(&original)
            );
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = {
                    use ::std::hash::{Hash, Hasher};
                    let mut __h = ::std::collections::hash_map::DefaultHasher::new();
                    ::std::stringify!($name).hash(&mut __h);
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        __h.finish(),
                    )
                };
                // One composite strategy over all bindings; the tuple
                // samples components left-to-right, so the RNG stream is
                // identical to sampling each strategy in turn.
                let __strategy = ($( ($strat), )*);
                $crate::__run_property(
                    ::std::stringify!($name),
                    __cfg.cases,
                    &mut __rng,
                    &__strategy,
                    |__values| {
                        let ( $($arg,)* ) = ::std::clone::Clone::clone(__values);
                        $body
                        ::std::result::Result::Ok(())
                    },
                    |__values| {
                        let ( $($arg,)* ) = ::std::clone::Clone::clone(__values);
                        let mut __s = ::std::string::String::new();
                        $(
                            __s.push_str(&::std::format!(
                                "{} = {:?}, ",
                                ::std::stringify!($arg),
                                &$arg
                            ));
                        )*
                        __s
                    },
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($option)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(__l == __r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        ::std::stringify!($left),
                        ::std::stringify!($right),
                        __l,
                        __r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(__l == __r) {
                    return ::std::result::Result::Err(::std::format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        ::std::format!($($fmt)+),
                        __l,
                        __r
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if __l == __r {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        ::std::stringify!($left),
                        ::std::stringify!($right),
                        __l
                    ));
                }
            }
        }
    };
}

/// Discards the current case when `cond` is false. Unlike real proptest
/// the case is not resampled, so heavy use of `prop_assume!` reduces the
/// effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod shrink_tests {
    use crate::prelude::*;
    use crate::strategy::ShrinkValue;

    // Deliberately failing properties, invoked through `catch_unwind`
    // below (no `#[test]` attribute, so the harness never runs them
    // directly).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn fails_at_ten(x in 0usize..1000) {
            prop_assert!(x < 10);
        }

        fn fails_on_long_vecs(v in collection::vec(0u8..100, 0..20)) {
            prop_assert!(v.len() < 3);
        }
    }

    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = std::panic::catch_unwind(f).expect_err("property must fail");
        err.downcast_ref::<String>().cloned().expect("panic carries a String")
    }

    #[test]
    fn seeded_failure_shrinks_to_the_boundary() {
        // 0..1000 with `x < 10` required: sampling all but guarantees a
        // failure far from 10, and the halving walk must land exactly on
        // the smallest failing input.
        let msg = panic_message(fails_at_ten);
        assert!(msg.contains("minimized inputs: x = 10,"), "{msg}");
        assert!(msg.contains("original inputs: x = "), "{msg}");
        // The original really was shrunk, not just relabeled.
        let original: usize = msg
            .split("original inputs: x = ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("original input parses");
        assert!(original > 10, "seeded original {original} should be far from the boundary");
    }

    #[test]
    fn vec_failures_shrink_to_minimal_length() {
        let msg = panic_message(fails_on_long_vecs);
        // Minimal counterexample: the shortest failing vector (len 3)
        // with every element at the range floor.
        assert!(msg.contains("minimized inputs: v = [0, 0, 0],"), "{msg}");
    }

    #[test]
    fn int_shrink_candidates_halve_toward_the_floor() {
        assert_eq!(100u32.shrink_toward(&0), vec![0, 50, 99]);
        assert_eq!(11usize.shrink_toward(&10), vec![10]);
        assert_eq!(10i32.shrink_toward(&10), Vec::<i32>::new());
        assert_eq!((-100i64).shrink_toward(&0), vec![0, -50, -99]);
        assert_eq!(i8::origin(), 0);
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len was {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_picks_from_options(v in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn assume_discards(b in any::<bool>()) {
            prop_assume!(b);
            prop_assert!(b);
        }
    }
}
