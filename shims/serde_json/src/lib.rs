//! Offline shim for `serde_json`: a hand-rolled JSON parser and printer
//! over the `serde` shim's [`Value`] tree. Covers the API surface the
//! workspace uses: `to_string`, `to_string_pretty`, `to_vec`, `to_writer`,
//! `from_str`, `from_slice`, `from_reader`, and `Error`.

use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// Parse or I/O error. Parse errors carry a byte offset.
#[derive(Debug)]
pub enum Error {
    /// Syntax or data-model error with byte offset into the input.
    Syntax { msg: String, offset: usize },
    /// Underlying I/O failure from `to_writer`/`from_reader`.
    Io(std::io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Syntax { msg, offset } => write!(f, "{msg} at byte {offset}"),
            Error::Io(e) => write!(f, "json io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::Syntax { msg: e.to_string(), offset: 0 }
    }
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serializes `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from JSON bytes (must be valid UTF-8).
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error::Syntax {
        msg: format!("invalid UTF-8 in JSON input: {e}"),
        offset: e.valid_up_to(),
    })?;
    from_str(text)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::Syntax {
            msg: "trailing characters after JSON value".to_string(),
            offset: p.pos,
        });
    }
    Ok(T::from_value(&value)?)
}

/// Deserializes a `T` from a reader producing JSON text.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep floats distinguishable from integers on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Real serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, Error> {
        Err(Error::Syntax { msg: msg.into(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected `{}`, found `{}`",
                b as char,
                self.peek().map(|c| c as char).unwrap_or('∅')
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => self.err(format!("unexpected character `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return self.err("expected `,` or `}` in object"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return self.err("expected `,` or `]` in array"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| Error::Syntax {
                                        msg: "invalid \\u escape".to_string(),
                                        offset: self.pos,
                                    })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                Error::Syntax {
                                    msg: "invalid \\u escape".to_string(),
                                    offset: self.pos,
                                }
                            })?;
                            // Surrogate pairs are not reconstructed; the
                            // printer never emits them (it escapes only
                            // control characters).
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| {
                        Error::Syntax {
                            msg: "invalid utf-8 in string".to_string(),
                            offset: self.pos,
                        }
                    })?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Float(f)),
            Err(_) => self.err(format!("invalid number `{text}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn round_trip_nested() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![3]];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[],[3]]");
        let back: Vec<Vec<u8>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<i64>("42 junk").is_err());
    }

    #[test]
    fn float_round_trips_exactly() {
        for &f in &[0.1f64, 1e-9, 123456.789, -2.5e10, f64::MAX] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f);
        }
    }
}
