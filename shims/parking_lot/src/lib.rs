//! Offline shim for the `parking_lot` crate.
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so the handful of `parking_lot` primitives used here are re-implemented
//! over `std::sync`. Semantics match the subset the workspace relies on:
//! no lock poisoning (a poisoned std lock panics is converted into the
//! inner value), guards deref to the protected data, and `Condvar::wait`
//! takes the guard by `&mut` like real parking_lot.

use std::sync;

/// A mutex that does not poison: panicking while holding the lock simply
/// releases it for the next locker, matching `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Condition variable pairing with [`Mutex`]; `wait` takes the guard by
/// `&mut` like parking_lot (std takes it by value).
#[derive(Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Non-poisoning reader-writer lock over `std::sync::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: g }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: g }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_signal() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
