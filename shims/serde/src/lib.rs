//! Offline shim for the `serde` crate.
//!
//! Real serde streams through a `Serializer`/`Deserializer` pair; this shim
//! round-trips through an owned [`Value`] tree instead, which is all the
//! workspace needs (JSON config parsing, checkpoints, report export). The
//! derive macros in `serde_derive` generate impls of the two traits below,
//! honoring the subset of `#[serde(...)]` attributes this workspace uses:
//! `default`, `default = "path"`, `deny_unknown_fields`,
//! `rename_all = "snake_case"`, and `untagged`.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the JSON data model, with
/// integers kept exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (always used when the value fits in `i64`).
    Int(i64),
    /// Unsigned integers above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: a message plus nothing else (no spans — the
/// value tree has already lost them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i128 = match *value {
                    Value::Int(i) => i as i128,
                    Value::UInt(u) => u as i128,
                    Value::Float(f) if f.fract() == 0.0 => f as i128,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i128 = match *value {
                    Value::Int(i) => i as i128,
                    Value::UInt(u) => u as i128,
                    Value::Float(f) if f.fract() == 0.0 => f as i128,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match *value {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    ref other => Err(Error::custom(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => {
                Err(Error::custom(format!("expected sequence, found {}", other.kind())))
            }
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                let seq = value.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected sequence, found {}", value.kind()))
                })?;
                if seq.len() != ARITY {
                    return Err(Error::custom(format!(
                        "expected tuple of {ARITY}, found sequence of {}", seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Support functions called by `serde_derive`-generated code. Not a
/// public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn expect_map<'a>(
        value: &'a Value,
        ty: &str,
    ) -> Result<&'a [(String, Value)], Error> {
        value.as_map().ok_or_else(|| {
            Error::custom(format!("{ty}: expected map, found {}", value.kind()))
        })
    }

    pub fn expect_seq<'a>(value: &'a Value, ty: &str) -> Result<&'a [Value], Error> {
        value.as_seq().ok_or_else(|| {
            Error::custom(format!("{ty}: expected sequence, found {}", value.kind()))
        })
    }

    pub fn de_field<T: Deserialize>(
        map: &[(String, Value)],
        key: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match map_get(map, key) {
            Some(v) => T::from_value(v)
                .map_err(|e| Error::custom(format!("{ty}.{key}: {e}"))),
            None => Err(Error::custom(format!("{ty}: missing field `{key}`"))),
        }
    }

    pub fn de_field_or<T: Deserialize>(
        map: &[(String, Value)],
        key: &str,
        ty: &str,
        default: impl FnOnce() -> T,
    ) -> Result<T, Error> {
        match map_get(map, key) {
            Some(v) => T::from_value(v)
                .map_err(|e| Error::custom(format!("{ty}.{key}: {e}"))),
            None => Ok(default()),
        }
    }

    pub fn deny_unknown(
        map: &[(String, Value)],
        allowed: &[&str],
        ty: &str,
    ) -> Result<(), Error> {
        for (k, _) in map {
            if !allowed.contains(&k.as_str()) {
                return Err(Error::custom(format!("{ty}: unknown field `{k}`")));
            }
        }
        Ok(())
    }

    /// The single `(tag, payload)` entry of an externally-tagged enum map.
    pub fn enum_entry<'a>(
        value: &'a Value,
        ty: &str,
    ) -> Result<(&'a str, &'a Value), Error> {
        let map = expect_map(value, ty)?;
        if map.len() != 1 {
            return Err(Error::custom(format!(
                "{ty}: expected single-entry variant map, found {} entries",
                map.len()
            )));
        }
        Ok((map[0].0.as_str(), &map[0].1))
    }
}
