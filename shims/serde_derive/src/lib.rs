//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim: no `syn`, no `quote` — a small token-tree walker
//! parses the item, and impls are emitted as source strings.
//!
//! Supported shapes (everything this workspace derives on):
//! named-field structs, tuple structs, and enums with unit / newtype /
//! tuple / named-field variants. Supported attributes: container-level
//! `#[serde(default)]`, `#[serde(deny_unknown_fields)]`,
//! `#[serde(rename_all = "snake_case")]`, `#[serde(untagged)]`, and
//! field-level `#[serde(default)]` / `#[serde(default = "path")]`.
//! Anything else panics at compile time rather than silently diverging
//! from real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct ContainerAttrs {
    default: bool,
    deny_unknown: bool,
    rename_all_snake: bool,
    untagged: bool,
}

#[derive(Default, Clone)]
enum FieldDefault {
    #[default]
    None,
    Std,
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Def {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    attrs: ContainerAttrs,
    def: Def,
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses one `#[...]` bracket group into `attrs`/`field_default`.
fn apply_attr(group: &proc_macro::Group, attrs: &mut ContainerAttrs, field_default: &mut FieldDefault) {
    let mut it = group.stream().into_iter();
    let head = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return,
    };
    if head != "serde" {
        return;
    }
    let args = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        other => panic!("serde shim: malformed #[serde] attribute: {other:?}"),
    };
    let mut toks = args.stream().into_iter().peekable();
    while let Some(tok) = toks.next() {
        let name = match tok {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(ref p) if p.as_char() == ',' => continue,
            other => panic!("serde shim: unexpected token in #[serde(...)]: {other}"),
        };
        let eq_value = if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=')
        {
            toks.next();
            match toks.next() {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                other => panic!("serde shim: expected string after `{name} =`: {other:?}"),
            }
        } else {
            None
        };
        match (name.as_str(), eq_value) {
            ("default", None) => {
                attrs.default = true;
                *field_default = FieldDefault::Std;
            }
            ("default", Some(path)) => *field_default = FieldDefault::Path(path),
            ("deny_unknown_fields", None) => attrs.deny_unknown = true,
            ("untagged", None) => attrs.untagged = true,
            ("rename_all", Some(style)) => {
                assert_eq!(
                    style, "snake_case",
                    "serde shim: only rename_all = \"snake_case\" is supported"
                );
                attrs.rename_all_snake = true;
            }
            (other, _) => panic!("serde shim: unsupported serde attribute `{other}`"),
        }
    }
}

/// Consumes leading attributes from `it`, folding serde ones into the
/// returned values.
fn take_attrs(
    it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> (ContainerAttrs, FieldDefault) {
    let mut attrs = ContainerAttrs::default();
    let mut field_default = FieldDefault::None;
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        apply_attr(&g, &mut attrs, &mut field_default);
                    }
                    other => panic!("serde shim: expected [...] after #: {other:?}"),
                }
            }
            _ => break,
        }
    }
    (attrs, field_default)
}

fn skip_visibility(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(
            it.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            it.next();
        }
    }
}

/// Parses `{ field: Type, ... }` contents.
fn parse_named_fields(group: proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = group.stream().into_iter().peekable();
    loop {
        if it.peek().is_none() {
            break;
        }
        let (_cattrs, default) = take_attrs(&mut it);
        skip_visibility(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim: expected field name, found {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim: expected `:` after field `{name}`: {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tok in it.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts top-level comma-separated slots of a parenthesized tuple body.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let mut angle_depth = 0i32;
    let mut slots = 0usize;
    let mut saw_tokens = false;
    for tok in group.stream() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                slots += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        slots += 1;
    }
    slots
}

fn parse_variants(group: proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = group.stream().into_iter().peekable();
    loop {
        if it.peek().is_none() {
            break;
        }
        let (_attrs, _default) = take_attrs(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim: expected variant name, found {other:?}"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g);
                it.next();
                if arity == 0 {
                    Shape::Unit
                } else {
                    Shape::Tuple(arity)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.clone());
                it.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Trailing comma between variants.
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    let (attrs, _field_default) = take_attrs(&mut it);
    skip_visibility(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim: expected struct/enum, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim: expected type name, found {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim: generic types are not supported (deriving on `{name}`)");
    }
    let def = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Def::Struct(Shape::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Def::Struct(Shape::Tuple(tuple_arity(&g)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Def::Struct(Shape::Unit),
            other => panic!("serde shim: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Def::Enum(parse_variants(g))
            }
            other => panic!("serde shim: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim: cannot derive on `{other}`"),
    };
    Input { name, attrs, def }
}

fn variant_key(input: &Input, variant: &str) -> String {
    if input.attrs.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.def {
        Def::Struct(Shape::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let key = if input.attrs.rename_all_snake {
                        snake_case(&f.name)
                    } else {
                        f.name.clone()
                    };
                    format!(
                        "(\"{key}\".to_string(), ::serde::Serialize::to_value(&self.{}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Def::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Def::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Def::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Def::Enum(variants) => {
            let mut arms = Vec::new();
            for v in variants {
                let key = variant_key(input, &v.name);
                let arm = match &v.shape {
                    Shape::Unit => {
                        if input.attrs.untagged {
                            format!("{name}::{} => ::serde::Value::Null,", v.name)
                        } else {
                            format!(
                                "{name}::{} => ::serde::Value::Str(\"{key}\".to_string()),",
                                v.name
                            )
                        }
                    }
                    Shape::Tuple(1) => {
                        let payload = "::serde::Serialize::to_value(__f0)".to_string();
                        if input.attrs.untagged {
                            format!("{name}::{}(__f0) => {payload},", v.name)
                        } else {
                            format!(
                                "{name}::{}(__f0) => ::serde::Value::Map(::std::vec![(\"{key}\".to_string(), {payload})]),",
                                v.name
                            )
                        }
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let payload =
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "));
                        if input.attrs.untagged {
                            format!("{name}::{}({}) => {payload},", v.name, binds.join(", "))
                        } else {
                            format!(
                                "{name}::{}({}) => ::serde::Value::Map(::std::vec![(\"{key}\".to_string(), {payload})]),",
                                v.name,
                                binds.join(", ")
                            )
                        }
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        let payload =
                            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "));
                        if input.attrs.untagged {
                            format!(
                                "{name}::{} {{ {} }} => {payload},",
                                v.name,
                                binds.join(", ")
                            )
                        } else {
                            format!(
                                "{name}::{} {{ {} }} => ::serde::Value::Map(::std::vec![(\"{key}\".to_string(), {payload})]),",
                                v.name,
                                binds.join(", ")
                            )
                        }
                    }
                };
                arms.push(arm);
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn gen_named_struct_de(input: &Input, fields: &[Field]) -> String {
    let name = &input.name;
    let keys: Vec<String> = fields
        .iter()
        .map(|f| {
            if input.attrs.rename_all_snake {
                snake_case(&f.name)
            } else {
                f.name.clone()
            }
        })
        .collect();
    let mut body = format!("let __map = ::serde::__private::expect_map(__value, \"{name}\")?;\n");
    if input.attrs.deny_unknown {
        let allowed: Vec<String> = keys.iter().map(|k| format!("\"{k}\"")).collect();
        body.push_str(&format!(
            "::serde::__private::deny_unknown(__map, &[{}], \"{name}\")?;\n",
            allowed.join(", ")
        ));
    }
    if input.attrs.default {
        // Container default: start from Default::default() and overwrite
        // the fields present in the map.
        body.push_str("let mut __out: Self = ::std::default::Default::default();\n");
        for (f, key) in fields.iter().zip(&keys) {
            body.push_str(&format!(
                "if let ::std::option::Option::Some(__v) = ::serde::__private::map_get(__map, \"{key}\") {{\n\
                     __out.{0} = ::serde::Deserialize::from_value(__v)\n\
                         .map_err(|e| ::serde::Error::custom(::std::format!(\"{name}.{key}: {{e}}\")))?;\n\
                 }}\n",
                f.name
            ));
        }
        body.push_str("::std::result::Result::Ok(__out)\n");
    } else {
        let mut inits = Vec::new();
        for (f, key) in fields.iter().zip(&keys) {
            let init = match &f.default {
                FieldDefault::None => format!(
                    "{0}: ::serde::__private::de_field(__map, \"{key}\", \"{name}\")?",
                    f.name
                ),
                FieldDefault::Std => format!(
                    "{0}: ::serde::__private::de_field_or(__map, \"{key}\", \"{name}\", ::std::default::Default::default)?",
                    f.name
                ),
                FieldDefault::Path(path) => format!(
                    "{0}: ::serde::__private::de_field_or(__map, \"{key}\", \"{name}\", {path})?",
                    f.name
                ),
            };
            inits.push(init);
        }
        body.push_str(&format!(
            "::std::result::Result::Ok({name} {{ {} }})\n",
            inits.join(", ")
        ));
    }
    body
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.def {
        Def::Struct(Shape::Named(fields)) => gen_named_struct_de(input, fields),
        Def::Struct(Shape::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)\n\
                 .map_err(|e| ::serde::Error::custom(::std::format!(\"{name}: {{e}}\")))?))"
        ),
        Def::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = ::serde::__private::expect_seq(__value, \"{name}\")?;\n\
                 if __seq.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\n\
                         ::std::format!(\"{name}: expected {n} elements, found {{}}\", __seq.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Def::Struct(Shape::Unit) => format!("::std::result::Result::Ok({name})"),
        Def::Enum(variants) if input.attrs.untagged => {
            // Try variants in declaration order, first success wins.
            let mut body = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => body.push_str(&format!(
                        "if ::std::matches!(__value, ::serde::Value::Null) {{\n\
                             return ::std::result::Result::Ok({name}::{});\n\
                         }}\n",
                        v.name
                    )),
                    Shape::Tuple(1) => body.push_str(&format!(
                        "if let ::std::result::Result::Ok(__v) = ::serde::Deserialize::from_value(__value) {{\n\
                             return ::std::result::Result::Ok({name}::{}(__v));\n\
                         }}\n",
                        v.name
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&__seq[{i}])?")
                            })
                            .collect();
                        body.push_str(&format!(
                            "{{ let __try = || -> ::std::result::Result<{name}, ::serde::Error> {{\n\
                                 let __seq = ::serde::__private::expect_seq(__value, \"{name}\")?;\n\
                                 if __seq.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\"arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{}({}))\n\
                             }};\n\
                             if let ::std::result::Result::Ok(__v) = __try() {{\n\
                                 return ::std::result::Result::Ok(__v);\n\
                             }} }}\n",
                            v.name,
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{0}: ::serde::__private::de_field(__m, \"{0}\", \"{name}::{1}\")?",
                                    f.name, v.name
                                )
                            })
                            .collect();
                        body.push_str(&format!(
                            "{{ let __try = || -> ::std::result::Result<{name}, ::serde::Error> {{\n\
                                 let __m = ::serde::__private::expect_map(__value, \"{name}::{0}\")?;\n\
                                 ::std::result::Result::Ok({name}::{0} {{ {1} }})\n\
                             }};\n\
                             if let ::std::result::Result::Ok(__v) = __try() {{\n\
                                 return ::std::result::Result::Ok(__v);\n\
                             }} }}\n",
                            v.name,
                            inits.join(", ")
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "::std::result::Result::Err(::serde::Error::custom(\n\
                     \"{name}: data did not match any untagged variant\"))"
            ));
            body
        }
        Def::Enum(variants) => {
            let unit: Vec<&Variant> =
                variants.iter().filter(|v| matches!(v.shape, Shape::Unit)).collect();
            let data: Vec<&Variant> =
                variants.iter().filter(|v| !matches!(v.shape, Shape::Unit)).collect();
            let mut body = String::new();
            if !unit.is_empty() {
                let arms: Vec<String> = unit
                    .iter()
                    .map(|v| {
                        format!(
                            "\"{}\" => ::std::result::Result::Ok({name}::{}),",
                            variant_key(input, &v.name),
                            v.name
                        )
                    })
                    .collect();
                body.push_str(&format!(
                    "if let ::std::option::Option::Some(__s) = __value.as_str() {{\n\
                         return match __s {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                 ::std::format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                         }};\n\
                     }}\n",
                    arms.join("\n")
                ));
            }
            if data.is_empty() {
                body.push_str(&format!(
                    "::std::result::Result::Err(::serde::Error::custom(\n\
                         ::std::format!(\"{name}: expected variant string, found {{}}\", __value.kind())))"
                ));
            } else {
                let mut arms = Vec::new();
                for v in &data {
                    let key = variant_key(input, &v.name);
                    let arm = match &v.shape {
                        Shape::Unit => unreachable!("unit variants handled above"),
                        Shape::Tuple(1) => format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{}(\n\
                                 ::serde::Deserialize::from_value(__payload)\n\
                                     .map_err(|e| ::serde::Error::custom(::std::format!(\"{name}::{key}: {{e}}\")))?)),",
                            v.name
                        ),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__seq[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{key}\" => {{\n\
                                     let __seq = ::serde::__private::expect_seq(__payload, \"{name}::{key}\")?;\n\
                                     if __seq.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::Error::custom(\n\
                                             ::std::format!(\"{name}::{key}: expected {n} elements, found {{}}\", __seq.len())));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{}({}))\n\
                                 }},",
                                v.name,
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{0}: ::serde::__private::de_field(__m, \"{0}\", \"{name}::{1}\")?",
                                        f.name, v.name
                                    )
                                })
                                .collect();
                            format!(
                                "\"{key}\" => {{\n\
                                     let __m = ::serde::__private::expect_map(__payload, \"{name}::{}\")?;\n\
                                     ::std::result::Result::Ok({name}::{} {{ {} }})\n\
                                 }},",
                                v.name,
                                v.name,
                                inits.join(", ")
                            )
                        }
                    };
                    arms.push(arm);
                }
                body.push_str(&format!(
                    "let (__tag, __payload) = ::serde::__private::enum_entry(__value, \"{name}\")?;\n\
                     match __tag {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                             ::std::format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                     }}",
                    arms.join("\n")
                ));
            }
            body
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim: generated Deserialize impl parses")
}
