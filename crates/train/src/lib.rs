//! `dos-train`: the JSON-configured [`Trainer`] facade over the
//! functional hybrid-update pipeline.
//!
//! The paper's middleware is "enabled and configured through a single
//! JSON entry in the configuration file given to the training runtime"
//! (§4.4). This crate is that surface for the *functional* stack: a
//! [`TrainerConfig`] document (update rule, learning rate, subgroup
//! partitioning, and the `"deep_optimizer_states"` entry) resolves into a
//! [`Trainer`] that steps a [`dos_optim::MixedPrecisionState`] through
//! [`dos_core::hybrid_update_pooled`] with a per-trainer staging
//! [`dos_core::ArenaPool`].
//!
//! It sits *below* `dos-runtime` in the crate graph on purpose:
//! `dos-check`'s differential fuzzer drives its numerics arm through this
//! config surface (so a config-file typo or entry-resolution bug is a
//! fuzzable event, not just a unit-test concern), while `dos-runtime` —
//! which depends on `dos-check` for the CLI — re-exports the shared entry
//! types ([`DosEntry`], [`StrideEntry`], [`NamedStride`]) for its own
//! simulator-facing `RuntimeConfig` document.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod config;
pub mod trainer;

pub use checkpoint::{AsyncCheckpointer, CheckpointError, CheckpointStore, TrainingCheckpoint};
pub use config::{
    CollectivesEntry, DosEntry, MonitorEntry, NamedStride, StrideEntry, TrainerConfig, TrainerError,
};
pub use trainer::Trainer;
