//! The single-JSON-entry configuration surface.
//!
//! The paper ships Deep Optimizer States as a middleware "that can be
//! enabled and configured through a single JSON entry in the configuration
//! file given to the training runtime" (§4.4). This module owns the
//! canonical `"deep_optimizer_states"` entry — shared with the simulator's
//! [`RuntimeConfig`](https://docs.rs/dos-runtime) document, which re-exports
//! these types — plus the small trainer-level document wrapped around it by
//! [`TrainerConfig`].

use serde::{Deserialize, Serialize};

use dos_core::{PipelineConfig, PipelineError, StridePolicy};
use dos_optim::UpdateRule;

/// Errors raised while parsing or resolving a trainer configuration, or
/// while stepping the trainer it builds.
#[derive(Debug)]
#[non_exhaustive]
pub enum TrainerError {
    /// The JSON failed to parse.
    Parse(serde_json::Error),
    /// A field value is out of range or a name could not be resolved.
    Invalid {
        /// Description of the invalid value.
        detail: String,
    },
    /// The hybrid-update pipeline rejected a step's preconditions.
    Pipeline(PipelineError),
}

impl std::fmt::Display for TrainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainerError::Parse(e) => write!(f, "invalid trainer JSON: {e}"),
            TrainerError::Invalid { detail } => write!(f, "invalid trainer config: {detail}"),
            TrainerError::Pipeline(e) => write!(f, "pipeline: {e}"),
        }
    }
}

impl std::error::Error for TrainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainerError::Parse(e) => Some(e),
            TrainerError::Pipeline(e) => Some(e),
            TrainerError::Invalid { .. } => None,
        }
    }
}

impl From<serde_json::Error> for TrainerError {
    fn from(e: serde_json::Error) -> Self {
        TrainerError::Parse(e)
    }
}

impl From<PipelineError> for TrainerError {
    fn from(e: PipelineError) -> Self {
        TrainerError::Pipeline(e)
    }
}

/// The `"deep_optimizer_states"` JSON entry (§4.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields, default)]
pub struct DosEntry {
    /// Master switch; `false` leaves the baseline scheduler in place.
    pub enabled: bool,
    /// `"auto"` (solve Equation 1), `"cpu_only"`, `"adaptive"` (online
    /// controller retuning), or an integer stride.
    pub update_stride: StrideEntry,
    /// FP32-on-GPU gradient conversion path (Figure 6 bottom).
    pub fp32_gradient_path: bool,
    /// Overlap gradient flushes with backward compute.
    pub overlap_backward: bool,
}

impl Default for DosEntry {
    fn default() -> Self {
        DosEntry {
            enabled: true,
            update_stride: StrideEntry::Auto,
            fp32_gradient_path: true,
            overlap_backward: true,
        }
    }
}

/// JSON form of [`StridePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", untagged)]
pub enum StrideEntry {
    /// A fixed stride value.
    Fixed(usize),
    /// A named policy: `"auto"` or `"cpu_only"`.
    Named(NamedStride),
}

/// Named stride policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum NamedStride {
    /// Solve Equation 1.
    Auto,
    /// Keep every dynamic subgroup on the CPU.
    CpuOnly,
    /// Online retuning by the `dos-control` feedback controller.
    Adaptive,
}

impl StrideEntry {
    /// The `"auto"` policy.
    #[allow(non_upper_case_globals)]
    pub const Auto: StrideEntry = StrideEntry::Named(NamedStride::Auto);

    /// Converts to the scheduler's policy type.
    pub fn to_policy(self) -> StridePolicy {
        match self {
            StrideEntry::Fixed(k) => StridePolicy::Fixed(k),
            StrideEntry::Named(NamedStride::Auto) => StridePolicy::Auto,
            StrideEntry::Named(NamedStride::CpuOnly) => StridePolicy::CpuOnly,
            StrideEntry::Named(NamedStride::Adaptive) => StridePolicy::Adaptive,
        }
    }
}

/// The optional `"monitor"` JSON entry: production monitoring.
///
/// When present, [`TrainerConfig::build`] attaches a flight-only
/// [`dos_telemetry::Tracer`] (bounded ring, no unbounded event store) so
/// every step records into the flight recorder, publishes arena gauges,
/// and — unless `health` is disabled — runs the online health detectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields, default)]
pub struct MonitorEntry {
    /// Address for the metrics endpoint (e.g. `"127.0.0.1:9464"`, or port
    /// `0` for ephemeral). `None` leaves serving to the embedding runtime;
    /// the trainer itself never opens sockets.
    pub listen: Option<String>,
    /// Flight-recorder ring capacity in events.
    pub flight_capacity: usize,
    /// Enable the online health/anomaly detectors.
    pub health: bool,
}

impl Default for MonitorEntry {
    fn default() -> Self {
        MonitorEntry { listen: None, flight_capacity: 4096, health: true }
    }
}

/// The optional `"collectives"` JSON entry: data-parallel transport
/// robustness knobs. The single-process [`crate::Trainer`] carries it
/// untouched; `dos-runtime`'s functional trainer consumes it via
/// `FunctionalConfig::apply_collectives`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields, default)]
pub struct CollectivesEntry {
    /// Transport backend: `"inproc"` (rank threads in one process) or
    /// `"uds"` (Unix-domain sockets rendezvousing in `socket_dir`).
    pub transport: String,
    /// Rendezvous directory for the `"uds"` backend (`rank<r>.sock`
    /// files). Required when `transport` is `"uds"`.
    pub socket_dir: Option<String>,
    /// Per-collective deadline in milliseconds. Absent keeps the blocking
    /// mode (liveness via disconnect propagation); present enables
    /// heartbeats, backoff retransmits, and timeout-vs-rank-failure
    /// attribution.
    pub collective_timeout_ms: Option<u64>,
    /// `"error"` aborts the run when a rank dies; `"elastic"` evicts the
    /// dead rank and continues at reduced world size from the latest
    /// crash-consistent checkpoint.
    pub on_rank_failure: String,
}

impl Default for CollectivesEntry {
    fn default() -> Self {
        CollectivesEntry {
            transport: "inproc".to_string(),
            socket_dir: None,
            collective_timeout_ms: None,
            on_rank_failure: "error".to_string(),
        }
    }
}

impl CollectivesEntry {
    /// Validates the backend and policy names.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Invalid`] for unknown names, or `"uds"`
    /// without a `socket_dir`.
    pub fn validate(&self) -> Result<(), TrainerError> {
        match self.transport.as_str() {
            "inproc" => {}
            "uds" => {
                if self.socket_dir.is_none() {
                    return Err(TrainerError::Invalid {
                        detail: "collectives.transport \"uds\" requires socket_dir".into(),
                    });
                }
            }
            other => {
                return Err(TrainerError::Invalid {
                    detail: format!(
                        "unknown collectives.transport {other:?} (expected \"inproc\" or \"uds\")"
                    ),
                })
            }
        }
        if !matches!(self.on_rank_failure.as_str(), "error" | "elastic") {
            return Err(TrainerError::Invalid {
                detail: format!(
                    "unknown collectives.on_rank_failure {:?} (expected \"error\" or \
                     \"elastic\")",
                    self.on_rank_failure
                ),
            });
        }
        Ok(())
    }
}

/// A functional-trainer configuration document: one optimizer shard, its
/// partitioning, the update rule, and the middleware entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TrainerConfig {
    /// Flat parameter count of the optimizer shard.
    pub params: usize,
    /// Subgroup size in parameters (DeepSpeed's `sub_group_size`).
    pub subgroup_size: usize,
    /// Update rule name: `"adam"`, `"adamw"`, `"adagrad"`, `"rmsprop"`.
    #[serde(default = "default_rule")]
    pub rule: String,
    /// Decoupled weight decay (only `"adamw"` reads it).
    #[serde(default)]
    pub weight_decay: f32,
    /// Learning rate.
    #[serde(default = "default_lr")]
    pub lr: f32,
    /// Trailing subgroups treated as static device residents.
    #[serde(default)]
    pub static_residents: usize,
    /// Update scheduler: `"hybrid"` (the paper's interleaved in-barrier
    /// pipeline, the default) or `"zenflow_async"` (cross-iteration
    /// bounded-staleness updates; see `importance_ratio` /
    /// `staleness_bound`).
    #[serde(default = "default_scheduler")]
    pub scheduler: String,
    /// ZenFlow only: fraction of subgroups updated synchronously each step
    /// (the top-p importance set). In (0, 1]; at least one subgroup is
    /// always hot.
    #[serde(default = "default_importance_ratio")]
    pub importance_ratio: f64,
    /// ZenFlow only: bounded staleness window S — a cold subgroup's
    /// gradient is delayed at most S steps before its update is forced.
    #[serde(default = "default_staleness_bound")]
    pub staleness_bound: usize,
    /// The middleware entry.
    #[serde(default)]
    pub deep_optimizer_states: DosEntry,
    /// Optional production-monitoring entry (flight recorder, metrics,
    /// health detection). Absent → zero observability overhead.
    #[serde(default)]
    pub monitor: Option<MonitorEntry>,
    /// Optional data-parallel transport entry (backend, deadlines,
    /// rank-failure policy); see [`CollectivesEntry`].
    #[serde(default)]
    pub collectives: Option<CollectivesEntry>,
}

fn default_rule() -> String {
    "adam".to_string()
}
fn default_lr() -> f32 {
    0.01
}
fn default_scheduler() -> String {
    "hybrid".to_string()
}
fn default_importance_ratio() -> f64 {
    0.1
}
fn default_staleness_bound() -> usize {
    1
}

impl TrainerConfig {
    /// Parses a configuration from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Parse`] on malformed JSON (including unknown
    /// fields — typos fail fast rather than silently training a different
    /// configuration).
    pub fn from_json(json: &str) -> Result<TrainerConfig, TrainerError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Serializes back to pretty JSON.
    pub fn to_json(&self) -> String {
        // The in-tree serializer is infallible for derived config types.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Resolves the rule name into an [`UpdateRule`].
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Invalid`] for unknown names.
    pub fn resolve_rule(&self) -> Result<UpdateRule, TrainerError> {
        match self.rule.as_str() {
            "adam" => Ok(UpdateRule::adam()),
            "adamw" => Ok(UpdateRule::adamw(self.weight_decay)),
            "adagrad" => Ok(UpdateRule::adagrad()),
            "rmsprop" => Ok(UpdateRule::rmsprop()),
            other => {
                Err(TrainerError::Invalid { detail: format!("unknown update rule {other:?}") })
            }
        }
    }

    /// Resolves the middleware entry into a pipeline configuration.
    /// Disabling the entry retreats every dynamic subgroup to the CPU —
    /// the pre-middleware baseline path.
    pub fn pipeline(&self) -> PipelineConfig {
        let dos = &self.deep_optimizer_states;
        PipelineConfig {
            stride: if dos.enabled { dos.update_stride.to_policy() } else { StridePolicy::CpuOnly },
            static_residents: self.static_residents,
            fault_injection: None,
        }
    }

    /// Whether the `"zenflow_async"` scheduler is selected.
    pub fn is_zenflow(&self) -> bool {
        self.scheduler == "zenflow_async"
    }

    /// The ZenFlow policy knobs as a pipeline configuration.
    pub fn zenflow(&self) -> dos_core::ZenFlowConfig {
        dos_core::ZenFlowConfig {
            importance_ratio: self.importance_ratio,
            staleness_bound: self.staleness_bound,
        }
    }

    /// Validates shape fields and the optional entries.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Invalid`] when `params` or `subgroup_size`
    /// is zero, the `scheduler` name or its knobs are out of range, or the
    /// `collectives` entry names an unknown backend or policy.
    pub fn validate(&self) -> Result<(), TrainerError> {
        if self.params == 0 || self.subgroup_size == 0 {
            return Err(TrainerError::Invalid {
                detail: "params and subgroup_size must be positive".into(),
            });
        }
        match self.scheduler.as_str() {
            "hybrid" => {}
            "zenflow_async" => {
                if !(self.importance_ratio > 0.0 && self.importance_ratio <= 1.0) {
                    return Err(TrainerError::Invalid {
                        detail: format!(
                            "importance_ratio {} outside (0, 1]",
                            self.importance_ratio
                        ),
                    });
                }
                if self.staleness_bound == 0 {
                    return Err(TrainerError::Invalid {
                        detail: "staleness_bound must be at least 1".into(),
                    });
                }
            }
            other => {
                return Err(TrainerError::Invalid {
                    detail: format!(
                        "unknown scheduler {other:?} (expected \"hybrid\" or \
                         \"zenflow_async\")"
                    ),
                })
            }
        }
        if let Some(c) = &self.collectives {
            c.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_config_uses_paper_defaults() {
        let cfg =
            TrainerConfig::from_json(r#"{ "params": 64, "subgroup_size": 16 }"#).unwrap();
        assert_eq!(cfg.rule, "adam");
        assert_eq!(cfg.lr, 0.01);
        assert!(cfg.deep_optimizer_states.enabled);
        assert_eq!(cfg.pipeline().stride, StridePolicy::Auto);
    }

    #[test]
    fn stride_entry_forms() {
        for (entry, want) in [
            ("3", StridePolicy::Fixed(3)),
            ("\"auto\"", StridePolicy::Auto),
            ("\"cpu_only\"", StridePolicy::CpuOnly),
            ("\"adaptive\"", StridePolicy::Adaptive),
        ] {
            let cfg = TrainerConfig::from_json(&format!(
                r#"{{ "params": 8, "subgroup_size": 4,
                      "deep_optimizer_states": {{ "update_stride": {entry} }} }}"#
            ))
            .unwrap();
            assert_eq!(cfg.pipeline().stride, want);
        }
    }

    #[test]
    fn disabling_the_middleware_forces_cpu_only() {
        let cfg = TrainerConfig::from_json(
            r#"{ "params": 8, "subgroup_size": 4,
                 "deep_optimizer_states": { "enabled": false, "update_stride": 3 } }"#,
        )
        .unwrap();
        assert_eq!(cfg.pipeline().stride, StridePolicy::CpuOnly);
    }

    #[test]
    fn unknown_fields_and_rules_fail_fast() {
        assert!(TrainerConfig::from_json(r#"{ "params": 8, "subgroup_size": 4, "typo": 1 }"#)
            .is_err());
        let cfg = TrainerConfig::from_json(
            r#"{ "params": 8, "subgroup_size": 4, "rule": "sgd" }"#,
        )
        .unwrap();
        assert!(matches!(cfg.resolve_rule(), Err(TrainerError::Invalid { .. })));
        let cfg = TrainerConfig::from_json(r#"{ "params": 0, "subgroup_size": 4 }"#).unwrap();
        assert!(matches!(cfg.validate(), Err(TrainerError::Invalid { .. })));
    }

    #[test]
    fn monitor_entry_parses_defaults_and_round_trips() {
        let cfg = TrainerConfig::from_json(r#"{ "params": 8, "subgroup_size": 4 }"#).unwrap();
        assert!(cfg.monitor.is_none(), "absent entry stays absent");
        let cfg = TrainerConfig::from_json(
            r#"{ "params": 8, "subgroup_size": 4,
                 "monitor": { "listen": "127.0.0.1:0" } }"#,
        )
        .unwrap();
        let mon = cfg.monitor.clone().unwrap();
        assert_eq!(mon.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(mon.flight_capacity, 4096);
        assert!(mon.health);
        let again = TrainerConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(again.monitor, Some(mon));
        // Typos inside the entry fail fast like everywhere else.
        assert!(TrainerConfig::from_json(
            r#"{ "params": 8, "subgroup_size": 4, "monitor": { "listne": "x" } }"#
        )
        .is_err());
    }

    #[test]
    fn collectives_entry_parses_validates_and_round_trips() {
        let cfg = TrainerConfig::from_json(r#"{ "params": 8, "subgroup_size": 4 }"#).unwrap();
        assert!(cfg.collectives.is_none(), "absent entry stays absent");

        let cfg = TrainerConfig::from_json(
            r#"{ "params": 8, "subgroup_size": 4,
                 "collectives": { "collective_timeout_ms": 2000,
                                  "on_rank_failure": "elastic" } }"#,
        )
        .unwrap();
        cfg.validate().unwrap();
        let c = cfg.collectives.clone().unwrap();
        assert_eq!(c.transport, "inproc");
        assert_eq!(c.collective_timeout_ms, Some(2000));
        assert_eq!(c.on_rank_failure, "elastic");
        let again = TrainerConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(again.collectives, Some(c));

        // The UDS backend needs a rendezvous directory.
        let cfg = TrainerConfig::from_json(
            r#"{ "params": 8, "subgroup_size": 4, "collectives": { "transport": "uds" } }"#,
        )
        .unwrap();
        assert!(matches!(cfg.validate(), Err(TrainerError::Invalid { .. })));
        let cfg = TrainerConfig::from_json(
            r#"{ "params": 8, "subgroup_size": 4,
                 "collectives": { "transport": "uds", "socket_dir": "/tmp/dos-uds" } }"#,
        )
        .unwrap();
        cfg.validate().unwrap();

        // Unknown names and typos fail fast.
        for bad in [
            r#"{ "params": 8, "subgroup_size": 4, "collectives": { "transport": "rdma" } }"#,
            r#"{ "params": 8, "subgroup_size": 4,
                 "collectives": { "on_rank_failure": "shrug" } }"#,
        ] {
            assert!(TrainerConfig::from_json(bad).unwrap().validate().is_err(), "{bad}");
        }
        assert!(TrainerConfig::from_json(
            r#"{ "params": 8, "subgroup_size": 4, "collectives": { "transprot": "uds" } }"#
        )
        .is_err());
    }

    #[test]
    fn zenflow_entry_parses_validates_and_round_trips() {
        let cfg = TrainerConfig::from_json(r#"{ "params": 8, "subgroup_size": 4 }"#).unwrap();
        assert_eq!(cfg.scheduler, "hybrid");
        assert!(!cfg.is_zenflow());
        cfg.validate().unwrap();

        let cfg = TrainerConfig::from_json(
            r#"{ "params": 48, "subgroup_size": 8, "scheduler": "zenflow_async",
                 "importance_ratio": 0.25, "staleness_bound": 2 }"#,
        )
        .unwrap();
        assert!(cfg.is_zenflow());
        cfg.validate().unwrap();
        let zf = cfg.zenflow();
        assert_eq!(zf.importance_ratio, 0.25);
        assert_eq!(zf.staleness_bound, 2);
        let again = TrainerConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(again.scheduler, "zenflow_async");
        assert_eq!(again.importance_ratio, 0.25);

        for bad in [
            r#"{ "params": 8, "subgroup_size": 4, "scheduler": "zenflow" }"#,
            r#"{ "params": 8, "subgroup_size": 4, "scheduler": "zenflow_async",
                 "importance_ratio": 0.0 }"#,
            r#"{ "params": 8, "subgroup_size": 4, "scheduler": "zenflow_async",
                 "importance_ratio": 1.5 }"#,
            r#"{ "params": 8, "subgroup_size": 4, "scheduler": "zenflow_async",
                 "staleness_bound": 0 }"#,
        ] {
            assert!(
                matches!(
                    TrainerConfig::from_json(bad).unwrap().validate(),
                    Err(TrainerError::Invalid { .. })
                ),
                "{bad}"
            );
        }
    }

    #[test]
    fn round_trips_through_json() {
        let cfg = TrainerConfig::from_json(
            r#"{ "params": 48, "subgroup_size": 8, "rule": "adamw", "weight_decay": 0.1,
                 "static_residents": 1,
                 "deep_optimizer_states": { "update_stride": 2 } }"#,
        )
        .unwrap();
        let again = TrainerConfig::from_json(&cfg.to_json()).unwrap();
        assert_eq!(again.params, 48);
        assert_eq!(again.rule, "adamw");
        assert_eq!(again.pipeline().stride, StridePolicy::Fixed(2));
        assert_eq!(again.static_residents, 1);
    }
}
