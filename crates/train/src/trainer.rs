//! The [`Trainer`] facade: a JSON-configured optimizer shard stepped
//! through the zero-copy hybrid-update pipeline.

use dos_core::{hybrid_update_pooled, ArenaPool, DeviceFault, PipelineConfig, PipelineReport};
use dos_optim::MixedPrecisionState;
use dos_zero::{partition_into_subgroups, SubgroupSpec};

use crate::config::{TrainerConfig, TrainerError};

/// A functional trainer over one flat optimizer shard.
///
/// Construction resolves the whole JSON surface — rule name, stride
/// entry, partitioning — so that anything reachable through a
/// configuration file exercises the exact production code path:
/// [`hybrid_update_pooled`] with a per-trainer [`ArenaPool`], never a
/// hand-assembled pipeline call.
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainerConfig,
    state: MixedPrecisionState,
    subgroups: Vec<SubgroupSpec>,
    pipeline: PipelineConfig,
    pool: ArenaPool,
    steps_taken: usize,
}

impl Trainer {
    /// Builds a trainer from a JSON document and the initial parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Parse`] on malformed JSON and
    /// [`TrainerError::Invalid`] for unresolvable names, zero shapes, or
    /// an `init` whose length disagrees with `params`.
    pub fn from_json(json: &str, init: Vec<f32>) -> Result<Trainer, TrainerError> {
        TrainerConfig::from_json(json)?.build(init)
    }

    /// Arms (or clears) a device-worker fault for the next steps. Chaos
    /// campaigns and the differential fuzzer use this; production configs
    /// never set it, which is why it is not part of the JSON surface.
    pub fn inject_fault(&mut self, fault: Option<DeviceFault>) {
        self.pipeline.fault_injection = fault;
    }

    /// Runs one optimizer step over the full shard.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Invalid`] on a gradient-length mismatch and
    /// [`TrainerError::Pipeline`] when the pipeline rejects the step.
    pub fn step(&mut self, grads: &[f32]) -> Result<PipelineReport, TrainerError> {
        if grads.len() != self.cfg.params {
            return Err(TrainerError::Invalid {
                detail: format!(
                    "gradient length {} != configured params {}",
                    grads.len(),
                    self.cfg.params
                ),
            });
        }
        let report = hybrid_update_pooled(
            &mut self.state,
            grads,
            &self.subgroups,
            self.pipeline,
            None,
            &self.pool,
        )?;
        self.steps_taken += 1;
        Ok(report)
    }

    /// The resolved configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// The FP32 master parameters.
    pub fn params(&self) -> &[f32] {
        self.state.params()
    }

    /// The first-moment (momentum) state.
    pub fn momentum(&self) -> &[f32] {
        self.state.momentum()
    }

    /// The second-moment (variance) state.
    pub fn variance(&self) -> &[f32] {
        self.state.variance()
    }

    /// The subgroup partition the pipeline runs over.
    pub fn subgroups(&self) -> &[SubgroupSpec] {
        &self.subgroups
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// The trainer's staging arena (lease gauges, hit/miss counters).
    pub fn arena(&self) -> &ArenaPool {
        &self.pool
    }
}

impl TrainerConfig {
    /// Builds a [`Trainer`] from this configuration and the initial
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Invalid`] for zero shapes, unknown rule
    /// names, or a length mismatch between `init` and `params`.
    pub fn build(self, init: Vec<f32>) -> Result<Trainer, TrainerError> {
        self.validate()?;
        if init.len() != self.params {
            return Err(TrainerError::Invalid {
                detail: format!("init length {} != params {}", init.len(), self.params),
            });
        }
        let rule = self.resolve_rule()?;
        let pipeline = self.pipeline();
        let subgroups = partition_into_subgroups(self.params, self.subgroup_size);
        let state = MixedPrecisionState::new(init, rule, self.lr);
        Ok(Trainer { cfg: self, state, subgroups, pipeline, pool: ArenaPool::new(), steps_taken: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_optim::UpdateRule;

    fn init(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    fn grads(n: usize, step: usize) -> Vec<f32> {
        (0..n).map(|i| ((i + 13 * step) as f32 * 0.11).cos()).collect()
    }

    #[test]
    fn json_built_trainer_matches_the_sequential_twin_bitwise() {
        let n = 47; // deliberately not a multiple of the subgroup size
        let json = r#"{ "params": 47, "subgroup_size": 8, "static_residents": 1,
                        "deep_optimizer_states": { "update_stride": 2 } }"#;
        let mut trainer = Trainer::from_json(json, init(n)).unwrap();
        let mut seq = MixedPrecisionState::new(init(n), UpdateRule::adam(), 0.01);
        for step in 0..3 {
            let g = grads(n, step);
            seq.full_step(&g);
            let report = trainer.step(&g).unwrap();
            assert!(report.device_subgroups > 0, "stride 2 must use the device");
            assert_eq!(report.fp16_params, seq.downscale_range(0..n));
        }
        assert_eq!(trainer.params(), seq.params());
        assert_eq!(trainer.momentum(), seq.momentum());
        assert_eq!(trainer.variance(), seq.variance());
        assert_eq!(trainer.steps_taken(), 3);
        assert_eq!(trainer.arena().in_use_bytes(), 0, "all leases returned");
        assert!(trainer.arena().high_water_bytes() > 0);
    }

    #[test]
    fn injected_fault_degrades_but_does_not_diverge() {
        let n = 40;
        let json = r#"{ "params": 40, "subgroup_size": 5,
                        "deep_optimizer_states": { "update_stride": 2 } }"#;
        let mut trainer = Trainer::from_json(json, init(n)).unwrap();
        trainer.inject_fault(Some(DeviceFault::PanicAfter(1)));
        let mut seq = MixedPrecisionState::new(init(n), UpdateRule::adam(), 0.01);
        let g = grads(n, 0);
        seq.full_step(&g);
        let report = trainer.step(&g).unwrap();
        assert!(report.degraded.is_some(), "the armed fault must fire");
        assert_eq!(trainer.params(), seq.params());
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let json = r#"{ "params": 8, "subgroup_size": 4 }"#;
        assert!(matches!(
            Trainer::from_json(json, vec![0.0; 7]),
            Err(TrainerError::Invalid { .. })
        ));
        let mut trainer = Trainer::from_json(json, vec![0.0; 8]).unwrap();
        assert!(matches!(trainer.step(&[0.0; 9]), Err(TrainerError::Invalid { .. })));
    }
}
