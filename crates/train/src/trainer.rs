//! The [`Trainer`] facade: a JSON-configured optimizer shard stepped
//! through the zero-copy hybrid-update pipeline.

use dos_core::{
    hybrid_update_pooled, ArenaPool, DeviceFault, PipelineConfig, PipelineReport,
    ZenFlowPipeline,
};
use dos_optim::MixedPrecisionState;
use dos_telemetry::{
    window_stats, HealthBoard, HealthEvent, HealthMonitor, IterationReport, Tracer, HEALTH_TRACK,
};
use dos_zero::{partition_into_subgroups, SubgroupSpec};

use crate::checkpoint::TrainingCheckpoint;
use crate::config::{TrainerConfig, TrainerError};

/// Track names the pipeline records its spans on (kept in sync with
/// `dos-core`'s hybrid-update pipeline).
const CPU_TRACK: &str = "cpu";
const DEVICE_TRACK: &str = "device-worker";

/// A functional trainer over one flat optimizer shard.
///
/// Construction resolves the whole JSON surface — rule name, stride
/// entry, partitioning — so that anything reachable through a
/// configuration file exercises the exact production code path:
/// [`hybrid_update_pooled`] with a per-trainer [`ArenaPool`], never a
/// hand-assembled pipeline call.
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainerConfig,
    state: MixedPrecisionState,
    subgroups: Vec<SubgroupSpec>,
    pipeline: PipelineConfig,
    pool: ArenaPool,
    steps_taken: usize,
    monitoring: Option<Monitoring>,
    /// Present when `"scheduler": "zenflow_async"` is configured: the
    /// cross-iteration bounded-staleness update driver that replaces the
    /// in-barrier hybrid pipeline.
    zenflow: Option<ZenFlowPipeline>,
}

/// Per-trainer monitoring state: a flight-only tracer feeding the ring
/// and metrics, plus the online health detectors and their board.
#[derive(Debug)]
struct Monitoring {
    tracer: Tracer,
    /// Whether detector events are emitted (instants + board); the EWMA
    /// baselines are maintained either way.
    detect: bool,
    health: HealthMonitor,
    board: HealthBoard,
    last_report: Option<IterationReport>,
    last_events: Vec<HealthEvent>,
    prev_hits: u64,
    prev_misses: u64,
}

impl Trainer {
    /// Builds a trainer from a JSON document and the initial parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Parse`] on malformed JSON and
    /// [`TrainerError::Invalid`] for unresolvable names, zero shapes, or
    /// an `init` whose length disagrees with `params`.
    pub fn from_json(json: &str, init: Vec<f32>) -> Result<Trainer, TrainerError> {
        TrainerConfig::from_json(json)?.build(init)
    }

    /// Arms (or clears) a device-worker fault for the next steps. Chaos
    /// campaigns and the differential fuzzer use this; production configs
    /// never set it, which is why it is not part of the JSON surface.
    pub fn inject_fault(&mut self, fault: Option<DeviceFault>) {
        self.pipeline.fault_injection = fault;
    }

    /// Runs one optimizer step over the full shard.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Invalid`] on a gradient-length mismatch and
    /// [`TrainerError::Pipeline`] when the pipeline rejects the step.
    pub fn step(&mut self, grads: &[f32]) -> Result<PipelineReport, TrainerError> {
        if grads.len() != self.cfg.params {
            return Err(TrainerError::Invalid {
                detail: format!(
                    "gradient length {} != configured params {}",
                    grads.len(),
                    self.cfg.params
                ),
            });
        }
        let window_start = self.monitoring.as_ref().map(|m| m.tracer.now());
        let wall = std::time::Instant::now();
        let report = match &mut self.zenflow {
            Some(zf) => {
                let zr = zf.step(&mut self.state, grads);
                // The device view is downscaled *before* harvesting, so
                // cold in-flight ranges deterministically show their
                // pre-dispatch (bounded-stale) parameters — the precision
                // the next iteration actually trains with under ZenFlow.
                // Staged through the arena (same vectorized kernel, bit
                // identical) so monitored ZenFlow runs publish the arena
                // gauges the /metrics smoke keys on.
                let staged = self.pool.lease_f16_downscaled(self.state.params());
                let fp16_params = staged.to_vec();
                drop(staged);
                zf.poll_pending(&mut self.state);
                PipelineReport {
                    fp16_params,
                    device_subgroups: zr.hot.len(),
                    cpu_subgroups: zr.flushed.len(),
                    degraded: None,
                }
            }
            None => hybrid_update_pooled(
                &mut self.state,
                grads,
                &self.subgroups,
                self.pipeline,
                self.monitoring.as_ref().map(|m| &m.tracer),
                &self.pool,
            )?,
        };
        self.steps_taken += 1;
        if let Some(start) = window_start {
            self.observe_iteration(start, wall.elapsed().as_secs_f64(), &report);
        }
        Ok(report)
    }

    /// Folds one finished step into the monitoring state: builds the
    /// [`IterationReport`], runs the detectors, emits `health:*` instants
    /// (a `health:degraded` instant also triggers the flight recorder's
    /// automatic dump), and publishes to the board.
    fn observe_iteration(&mut self, window_start: f64, iter_secs: f64, report: &PipelineReport) {
        let params = self.cfg.params;
        let steps_taken = self.steps_taken;
        let hits = self.pool.reuse_hits();
        let misses = self.pool.allocation_misses();
        let high_water = self.pool.high_water_bytes();
        let Some(mon) = self.monitoring.as_mut() else { return };
        let window_end = mon.tracer.now();
        let window_events = match mon.tracer.flight() {
            Some(flight) => flight.events(),
            None => mon.tracer.events(),
        };
        let (stall_fraction, overlap_efficiency) =
            window_stats(&window_events, CPU_TRACK, DEVICE_TRACK, window_start, window_end);
        let iter = IterationReport {
            iteration: (steps_taken - 1) as u64,
            iter_secs,
            params: params as u64,
            pps: if iter_secs > 0.0 { params as f64 / iter_secs } else { 0.0 },
            stall_fraction,
            overlap_efficiency,
            device_subgroups: report.device_subgroups as u64,
            cpu_subgroups: report.cpu_subgroups as u64,
            arena_reuse_hits: hits.saturating_sub(mon.prev_hits),
            arena_allocation_misses: misses.saturating_sub(mon.prev_misses),
            arena_high_water_bytes: high_water as u64,
            degraded: report.degraded.is_some(),
        };
        mon.prev_hits = hits;
        mon.prev_misses = misses;
        let events = mon.health.observe(&iter);
        if mon.detect {
            for ev in &events {
                mon.tracer.instant_at(HEALTH_TRACK, ev.kind.instant_name(), "health", window_end);
            }
            mon.board.publish(iter, &events, &mon.health);
        } else {
            mon.board.publish(iter, &[], &mon.health);
        }
        mon.last_report = Some(iter);
        mon.last_events = events;
    }

    /// Captures a consistent snapshot of the trainer's optimizer state,
    /// suitable for [`crate::checkpoint::CheckpointStore::save`] and for
    /// resuming via [`TrainerConfig::resume`]. Preemption in the serving
    /// control plane is exactly `checkpoint()` + drop.
    ///
    /// Under the ZenFlow scheduler this is a **drain barrier**: every
    /// in-flight asynchronous update is joined and any residual
    /// accumulated gradient applied before the state is copied, so the
    /// checkpoint is never torn across a cross-iteration update.
    pub fn checkpoint(&mut self) -> TrainingCheckpoint {
        if let Some(zf) = &mut self.zenflow {
            zf.drain(&mut self.state);
        }
        TrainingCheckpoint {
            params: self.state.params().to_vec(),
            optimizer: self.state.clone(),
            iteration: self.steps_taken,
        }
    }

    /// Joins every in-flight ZenFlow update and applies any residual
    /// accumulated gradient (a no-op under the hybrid scheduler). After
    /// this, [`Trainer::params`]/[`Trainer::momentum`]/[`Trainer::variance`]
    /// read the fully-settled state the sequential bounded-staleness
    /// oracle produces.
    pub fn drain(&mut self) {
        if let Some(zf) = &mut self.zenflow {
            zf.drain(&mut self.state);
        }
    }

    /// The ZenFlow driver, when `"scheduler": "zenflow_async"` is
    /// configured (staleness telemetry lives on it).
    pub fn zenflow(&self) -> Option<&ZenFlowPipeline> {
        self.zenflow.as_ref()
    }

    /// The resolved configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// The FP32 master parameters.
    pub fn params(&self) -> &[f32] {
        self.state.params()
    }

    /// The first-moment (momentum) state.
    pub fn momentum(&self) -> &[f32] {
        self.state.momentum()
    }

    /// The second-moment (variance) state.
    pub fn variance(&self) -> &[f32] {
        self.state.variance()
    }

    /// The subgroup partition the pipeline runs over.
    pub fn subgroups(&self) -> &[SubgroupSpec] {
        &self.subgroups
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// The trainer's staging arena (lease gauges, hit/miss counters).
    pub fn arena(&self) -> &ArenaPool {
        &self.pool
    }

    /// The monitoring tracer, when a `monitor` entry is configured. Its
    /// flight recorder and [`dos_telemetry::MetricsRegistry`] carry the
    /// live observability state.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.monitoring.as_ref().map(|m| &m.tracer)
    }

    /// The health board, when monitoring is configured.
    pub fn health_board(&self) -> Option<&HealthBoard> {
        self.monitoring.as_ref().map(|m| &m.board)
    }

    /// The most recent per-iteration report, when monitoring is configured
    /// and at least one step has run.
    pub fn last_iteration(&self) -> Option<IterationReport> {
        self.monitoring.as_ref().and_then(|m| m.last_report)
    }

    /// Health events raised by the most recent step (empty when quiet or
    /// unmonitored).
    pub fn last_health_events(&self) -> &[HealthEvent] {
        self.monitoring.as_ref().map(|m| m.last_events.as_slice()).unwrap_or(&[])
    }
}

impl TrainerConfig {
    /// Builds a [`Trainer`] from this configuration and the initial
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Invalid`] for zero shapes, unknown rule
    /// names, or a length mismatch between `init` and `params`.
    pub fn build(self, init: Vec<f32>) -> Result<Trainer, TrainerError> {
        self.validate()?;
        if init.len() != self.params {
            return Err(TrainerError::Invalid {
                detail: format!("init length {} != params {}", init.len(), self.params),
            });
        }
        let rule = self.resolve_rule()?;
        let state = MixedPrecisionState::new(init, rule, self.lr);
        self.assemble(state, 0)
    }

    /// Rebuilds a [`Trainer`] from this configuration and a previously
    /// captured [`TrainingCheckpoint`], continuing at the checkpoint's
    /// iteration with its exact optimizer state (master params, moments,
    /// step counts) — the resume half of checkpoint-based preemption.
    ///
    /// # Errors
    ///
    /// Returns [`TrainerError::Invalid`] for an unresolvable config or a
    /// checkpoint whose shard length disagrees with `params`.
    pub fn resume(self, checkpoint: &TrainingCheckpoint) -> Result<Trainer, TrainerError> {
        self.validate()?;
        self.resolve_rule()?;
        if checkpoint.optimizer.len() != self.params {
            return Err(TrainerError::Invalid {
                detail: format!(
                    "checkpoint shard length {} != params {}",
                    checkpoint.optimizer.len(),
                    self.params
                ),
            });
        }
        self.assemble(checkpoint.optimizer.clone(), checkpoint.iteration)
    }

    /// Shared tail of [`TrainerConfig::build`]/[`TrainerConfig::resume`]:
    /// wires the pipeline, partition, monitoring, and staging arena around
    /// an already-constructed optimizer state.
    fn assemble(
        self,
        state: MixedPrecisionState,
        steps_taken: usize,
    ) -> Result<Trainer, TrainerError> {
        let pipeline = self.pipeline();
        let subgroups = partition_into_subgroups(self.params, self.subgroup_size);
        let monitoring = self.monitor.as_ref().map(|entry| Monitoring {
            tracer: Tracer::flight_only(entry.flight_capacity),
            detect: entry.health,
            health: HealthMonitor::default(),
            board: HealthBoard::new(),
            last_report: None,
            last_events: Vec::new(),
            prev_hits: 0,
            prev_misses: 0,
        });
        // The arena publishes its gauges into the monitoring tracer's
        // registry so `/metrics` sees `arena.{in_use,high_water}_bytes`.
        let pool = match &monitoring {
            Some(mon) => ArenaPool::with_metrics(mon.tracer.metrics().clone()),
            None => ArenaPool::new(),
        };
        let zenflow = self
            .is_zenflow()
            .then(|| ZenFlowPipeline::new(subgroups.clone(), self.zenflow()));
        Ok(Trainer { cfg: self, state, subgroups, pipeline, pool, steps_taken, monitoring, zenflow })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_optim::UpdateRule;

    fn init(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    fn grads(n: usize, step: usize) -> Vec<f32> {
        (0..n).map(|i| ((i + 13 * step) as f32 * 0.11).cos()).collect()
    }

    #[test]
    fn json_built_trainer_matches_the_sequential_twin_bitwise() {
        let n = 47; // deliberately not a multiple of the subgroup size
        let json = r#"{ "params": 47, "subgroup_size": 8, "static_residents": 1,
                        "deep_optimizer_states": { "update_stride": 2 } }"#;
        let mut trainer = Trainer::from_json(json, init(n)).unwrap();
        let mut seq = MixedPrecisionState::new(init(n), UpdateRule::adam(), 0.01);
        for step in 0..3 {
            let g = grads(n, step);
            seq.full_step(&g);
            let report = trainer.step(&g).unwrap();
            assert!(report.device_subgroups > 0, "stride 2 must use the device");
            assert_eq!(report.fp16_params, seq.downscale_range(0..n));
        }
        assert_eq!(trainer.params(), seq.params());
        assert_eq!(trainer.momentum(), seq.momentum());
        assert_eq!(trainer.variance(), seq.variance());
        assert_eq!(trainer.steps_taken(), 3);
        assert_eq!(trainer.arena().in_use_bytes(), 0, "all leases returned");
        assert!(trainer.arena().high_water_bytes() > 0);
    }

    #[test]
    fn injected_fault_degrades_but_does_not_diverge() {
        let n = 40;
        let json = r#"{ "params": 40, "subgroup_size": 5,
                        "deep_optimizer_states": { "update_stride": 2 } }"#;
        let mut trainer = Trainer::from_json(json, init(n)).unwrap();
        trainer.inject_fault(Some(DeviceFault::PanicAfter(1)));
        let mut seq = MixedPrecisionState::new(init(n), UpdateRule::adam(), 0.01);
        let g = grads(n, 0);
        seq.full_step(&g);
        let report = trainer.step(&g).unwrap();
        assert!(report.degraded.is_some(), "the armed fault must fire");
        assert_eq!(trainer.params(), seq.params());
    }

    #[test]
    fn monitored_trainer_is_bitwise_identical_and_reports() {
        let n = 47;
        let plain = r#"{ "params": 47, "subgroup_size": 8,
                         "deep_optimizer_states": { "update_stride": 2 } }"#;
        let monitored = r#"{ "params": 47, "subgroup_size": 8,
                             "deep_optimizer_states": { "update_stride": 2 },
                             "monitor": {} }"#;
        let mut a = Trainer::from_json(plain, init(n)).unwrap();
        let mut b = Trainer::from_json(monitored, init(n)).unwrap();
        for step in 0..4 {
            let g = grads(n, step);
            a.step(&g).unwrap();
            b.step(&g).unwrap();
        }
        assert_eq!(a.params(), b.params(), "monitoring must not perturb numerics");
        assert_eq!(a.momentum(), b.momentum());
        assert_eq!(a.variance(), b.variance());

        let rep = b.last_iteration().expect("monitored trainer reports");
        assert_eq!(rep.iteration, 3);
        assert_eq!(rep.params, 47);
        assert!(rep.pps > 0.0);
        assert!(rep.device_subgroups > 0);
        assert!(!rep.degraded);
        let board = b.health_board().unwrap().snapshot();
        assert_eq!(board.iterations, 4);
        assert!(!board.degraded);

        let tracer = b.tracer().unwrap();
        assert!(tracer.flight().unwrap().total_recorded() > 0, "ring fills");
        assert!(tracer.is_empty(), "flight-only mode keeps no unbounded store");
        assert!(tracer.metrics().gauge("arena.in_use_bytes").is_some());
        assert!(a.tracer().is_none() && a.health_board().is_none());
    }

    #[test]
    fn degraded_monitored_step_dumps_flight_context() {
        let n = 40;
        let json = r#"{ "params": 40, "subgroup_size": 5,
                        "deep_optimizer_states": { "update_stride": 2 },
                        "monitor": { "flight_capacity": 256 } }"#;
        let mut trainer = Trainer::from_json(json, init(n)).unwrap();
        let g = grads(n, 0);
        trainer.step(&g).unwrap();
        trainer.inject_fault(Some(DeviceFault::PanicAfter(1)));
        let report = trainer.step(&g).unwrap();
        assert!(report.degraded.is_some(), "the armed fault must fire");

        assert!(
            trainer.last_iteration().unwrap().degraded,
            "iteration report carries the degradation"
        );
        assert!(trainer
            .last_health_events()
            .iter()
            .any(|e| e.kind == dos_telemetry::HealthEventKind::Degraded));
        // The health:degraded instant triggered an automatic flight dump
        // whose ring context includes the pipeline's fault instant.
        let dump = trainer.tracer().unwrap().flight().unwrap().last_dump().expect("auto dump");
        assert_eq!(dump.reason, "health:degraded");
        assert!(dump.events.iter().any(|e| e.name == "fault:device-worker"), "{dump:?}");
        assert!(dump.events.iter().any(|e| e.name == "health:degraded"));
    }

    #[test]
    fn checkpoint_resume_is_bitwise_identical_to_uninterrupted() {
        let n = 47;
        let json = r#"{ "params": 47, "subgroup_size": 8,
                        "deep_optimizer_states": { "update_stride": 2 } }"#;
        let cfg = TrainerConfig::from_json(json).unwrap();
        let mut a = cfg.clone().build(init(n)).unwrap();
        let mut b = cfg.clone().build(init(n)).unwrap();
        for step in 0..5 {
            a.step(&grads(n, step)).unwrap();
        }
        // B: 2 steps, preempt (checkpoint + drop), resume, 3 more.
        for step in 0..2 {
            b.step(&grads(n, step)).unwrap();
        }
        let snap = b.checkpoint();
        assert_eq!(snap.iteration, 2);
        drop(b);
        // Round-trip through the on-disk format like a real preemption does.
        let snap = TrainingCheckpoint::from_bytes(&snap.to_bytes().unwrap()).unwrap();
        let mut b = cfg.resume(&snap).unwrap();
        assert_eq!(b.steps_taken(), 2);
        for step in 2..5 {
            b.step(&grads(n, step)).unwrap();
        }
        assert_eq!(a.params(), b.params());
        assert_eq!(a.momentum(), b.momentum());
        assert_eq!(a.variance(), b.variance());
        assert_eq!(a.steps_taken(), b.steps_taken());
    }

    #[test]
    fn zenflow_trainer_matches_the_bounded_staleness_oracle_bitwise() {
        let n = 48;
        let json = r#"{ "params": 48, "subgroup_size": 8, "scheduler": "zenflow_async",
                        "importance_ratio": 0.25, "staleness_bound": 2 }"#;
        let mut trainer = Trainer::from_json(json, init(n)).unwrap();
        let steps: Vec<Vec<f32>> = (0..5).map(|t| grads(n, t)).collect();
        for g in &steps {
            let report = trainer.step(g).unwrap();
            assert!(report.device_subgroups >= 1, "hot set never empty");
            assert!(report.degraded.is_none());
        }
        trainer.drain();
        let zf = trainer.zenflow().unwrap();
        assert!(zf.max_age_seen() <= 2, "staleness bound violated: {}", zf.max_age_seen());

        let mut oracle = MixedPrecisionState::new(init(n), UpdateRule::adam(), 0.01);
        let subgroups = dos_zero::partition_into_subgroups(n, 8);
        let cfg = dos_core::ZenFlowConfig { importance_ratio: 0.25, staleness_bound: 2 };
        dos_core::zenflow_reference(&mut oracle, &subgroups, &cfg, &steps);
        assert_eq!(trainer.params(), oracle.params());
        assert_eq!(trainer.momentum(), oracle.momentum());
        assert_eq!(trainer.variance(), oracle.variance());
    }

    #[test]
    fn monitored_zenflow_run_publishes_arena_gauges() {
        // The ZenFlow path stages its device downscale through the arena,
        // so a monitored run's /metrics payload carries the same
        // arena.in_use_bytes gauge the smoke tests key on.
        let n = 48;
        let json = r#"{ "params": 48, "subgroup_size": 8, "scheduler": "zenflow_async",
                        "importance_ratio": 0.25, "staleness_bound": 1,
                        "monitor": { "flight_capacity": 256 } }"#;
        let mut trainer = Trainer::from_json(json, init(n)).unwrap();
        for step in 0..3 {
            trainer.step(&grads(n, step)).unwrap();
        }
        let metrics = trainer.tracer().unwrap().metrics().clone();
        assert!(metrics.gauge("arena.in_use_bytes").is_some(), "missing arena gauge");
        assert_eq!(trainer.arena().in_use_bytes(), 0, "staging lease returned");
        assert!(trainer.arena().high_water_bytes() >= n * 2, "downscale staged via arena");
    }

    #[test]
    fn zenflow_checkpoint_is_a_drain_barrier() {
        let n = 48;
        let json = r#"{ "params": 48, "subgroup_size": 8, "scheduler": "zenflow_async",
                        "importance_ratio": 0.25, "staleness_bound": 3 }"#;
        let mut trainer = Trainer::from_json(json, init(n)).unwrap();
        trainer.step(&grads(n, 0)).unwrap();
        // A checkpoint right after one step (cold residue still pending)
        // must capture the fully-settled oracle state, never a torn one.
        let snap = trainer.checkpoint();
        let mut oracle = MixedPrecisionState::new(init(n), UpdateRule::adam(), 0.01);
        let subgroups = dos_zero::partition_into_subgroups(n, 8);
        let cfg = dos_core::ZenFlowConfig { importance_ratio: 0.25, staleness_bound: 3 };
        dos_core::zenflow_reference(&mut oracle, &subgroups, &cfg, &[grads(n, 0)]);
        assert_eq!(snap.params, oracle.params());
        assert_eq!(snap.optimizer.momentum(), oracle.momentum());
    }

    #[test]
    fn zenflow_loss_trajectory_tracks_the_synchronous_baseline() {
        // Minimize 0.5‖p‖² by gradient descent (grad = p): the delayed
        // cold updates may lag the synchronous trajectory, but within the
        // declared staleness tolerance — and both must actually converge.
        let n = 64;
        let loss = |p: &[f32]| -> f64 { p.iter().map(|x| (*x as f64) * (*x as f64)).sum() };
        let sync_json = r#"{ "params": 64, "subgroup_size": 8 }"#;
        let zen_json = r#"{ "params": 64, "subgroup_size": 8, "scheduler": "zenflow_async",
                            "importance_ratio": 0.25, "staleness_bound": 2 }"#;
        let mut sync = Trainer::from_json(sync_json, init(n)).unwrap();
        let mut zen = Trainer::from_json(zen_json, init(n)).unwrap();
        let initial = loss(&init(n));
        // Declared tolerance: over a dozen-step horizon the bounded-stale
        // trajectory stays within 25% of the synchronous one (a cold
        // subgroup lags at most S=2 updates, and Adam's normalization
        // makes each collapsed update worth roughly one step).
        const TOLERANCE: f64 = 0.25;
        const HORIZON: usize = 12;
        let mut prev_zen = f64::INFINITY;
        for t in 0..60 {
            let gs: Vec<f32> = sync.params().to_vec();
            sync.step(&gs).unwrap();
            let gz: Vec<f32> = zen.params().to_vec();
            zen.step(&gz).unwrap();
            let (ls, lz) = (loss(sync.params()), loss(zen.params()));
            if t < HORIZON {
                assert!(
                    (ls - lz).abs() <= TOLERANCE * ls.max(1e-6),
                    "t={t}: diverged past tolerance: sync {ls:.6} vs zenflow {lz:.6}"
                );
            }
            assert!(lz <= prev_zen + 1e-9, "t={t}: zenflow loss rose: {lz:.6} > {prev_zen:.6}");
            prev_zen = lz;
        }
        zen.drain();
        let (ls, lz) = (loss(sync.params()), loss(zen.params()));
        assert!(ls < 0.2 * initial, "baseline failed to converge: {ls:.6} vs {initial:.6}");
        assert!(lz < 0.5 * initial, "zenflow failed to converge: {lz:.6} vs {initial:.6}");
    }

    #[test]
    fn resume_rejects_mismatched_shards() {
        let json = r#"{ "params": 8, "subgroup_size": 4 }"#;
        let cfg = TrainerConfig::from_json(json).unwrap();
        let mut t = cfg.clone().build(vec![0.0; 8]).unwrap();
        let snap = t.checkpoint();
        let bigger = TrainerConfig::from_json(r#"{ "params": 12, "subgroup_size": 4 }"#).unwrap();
        assert!(matches!(bigger.resume(&snap), Err(TrainerError::Invalid { .. })));
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let json = r#"{ "params": 8, "subgroup_size": 4 }"#;
        assert!(matches!(
            Trainer::from_json(json, vec![0.0; 7]),
            Err(TrainerError::Invalid { .. })
        ));
        let mut trainer = Trainer::from_json(json, vec![0.0; 8]).unwrap();
        assert!(matches!(trainer.step(&[0.0; 9]), Err(TrainerError::Invalid { .. })));
    }
}
