//! Crash-consistent functional checkpointing of model + optimizer state.
//!
//! One motivation the paper gives for host-offloaded optimizer state (§2)
//! is cheap checkpointing: the large FP32 tensors already live in host
//! memory, so they can be flushed to persistent storage asynchronously
//! without blocking the GPUs (the DataStates-LLM line of work). This module
//! provides that for the functional engine, hardened against the failure
//! modes a real run sees:
//!
//! * **Atomic writes** — [`TrainingCheckpoint::save`] writes to a temp file
//!   in the target directory, fsyncs, and atomically renames over the
//!   destination (then fsyncs the directory), so a crash mid-write never
//!   leaves a half-written file under the checkpoint's name.
//! * **Self-validating format** — a versioned header with an embedded
//!   FNV-1a checksum and payload length, so truncation and bit flips are
//!   detected as typed [`CheckpointError`]s instead of being restored as
//!   garbage.
//! * **Retention + fallback** — a [`CheckpointStore`] keeps the last N
//!   checkpoints and [`CheckpointStore::latest_valid`] falls back to the
//!   newest one that still validates.
//! * **Async flush** — [`AsyncCheckpointer`] writes on a background thread
//!   while training continues, with at most one write in flight.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use dos_core::sync::JoinHandle;

use serde::{Deserialize, Serialize};

use dos_nn::VisitParams;
use dos_optim::MixedPrecisionState;

/// Magic prefix of the on-disk format; the digit after it is the version.
const MAGIC: &str = "DOSCKPT";
/// Current format version.
const VERSION: u32 = 1;

/// Everything that can go wrong persisting or restoring a checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the `DOSCKPT<version>` magic — it is
    /// not a checkpoint (or its header was destroyed).
    BadMagic {
        /// What the first line actually contained (lossily decoded).
        found: String,
    },
    /// The file is a checkpoint of a format version this build cannot read.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// The payload is shorter than the header promised (a torn write or a
    /// truncated copy).
    Truncated {
        /// Payload bytes the header declared.
        expected: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// The payload's checksum does not match the header's (bit rot or
    /// in-place corruption).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed over the payload.
        got: u64,
    },
    /// The file's structure is invalid in some other way (bad header
    /// field, trailing bytes, undecodable payload).
    Corrupt {
        /// What exactly failed to parse.
        detail: String,
    },
    /// The snapshot does not fit the model it is being restored into.
    ShapeMismatch {
        /// Parameter count the model expects.
        expected: usize,
        /// Parameter count the snapshot holds.
        got: usize,
    },
    /// No checkpoint in the store's directory survived validation.
    NoValidCheckpoint {
        /// The directory that was searched.
        dir: PathBuf,
        /// How many candidate files were found and rejected.
        rejected: usize,
    },
    /// The background writer thread panicked.
    WriterPanicked,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "not a checkpoint file: expected `{MAGIC}{VERSION}` header, found `{found}`")
            }
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint format version {found} (this build reads {VERSION})")
            }
            CheckpointError::Truncated { expected, got } => {
                write!(f, "truncated checkpoint: header declares {expected} payload bytes, found {got}")
            }
            CheckpointError::ChecksumMismatch { expected, got } => {
                write!(f, "checkpoint checksum mismatch: header {expected:#018x}, payload {got:#018x}")
            }
            CheckpointError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
            CheckpointError::ShapeMismatch { expected, got } => {
                write!(f, "checkpoint shape mismatch: model has {expected} params, snapshot has {got}")
            }
            CheckpointError::NoValidCheckpoint { dir, rejected } => {
                write!(
                    f,
                    "no valid checkpoint in {} ({rejected} candidate(s) rejected)",
                    dir.display()
                )
            }
            CheckpointError::WriterPanicked => write!(f, "background checkpoint writer panicked"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and plenty to catch torn writes
/// and bit flips (this is corruption *detection*, not authentication).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A consistent snapshot of training state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingCheckpoint {
    /// The model's (device) parameters at capture time.
    pub params: Vec<f32>,
    /// The FP32 optimizer state (master params, momentum, variance, step).
    pub optimizer: MixedPrecisionState,
    /// Iterations completed when captured.
    pub iteration: usize,
}

impl TrainingCheckpoint {
    /// Captures a snapshot from a model and its optimizer state.
    ///
    /// The copy is taken eagerly (host memory is cheap relative to the GPU
    /// tier it stands in for), so training may mutate both immediately
    /// after this returns.
    pub fn capture(
        model: &mut impl VisitParams,
        optimizer: &MixedPrecisionState,
        iteration: usize,
    ) -> TrainingCheckpoint {
        TrainingCheckpoint {
            params: model.gather_params(),
            optimizer: optimizer.clone(),
            iteration,
        }
    }

    /// Restores the snapshot into a model; returns the optimizer state to
    /// resume with.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ShapeMismatch`] if the model's parameter
    /// count differs from the snapshot's (the model is left untouched).
    pub fn restore(
        &self,
        model: &mut impl VisitParams,
    ) -> Result<MixedPrecisionState, CheckpointError> {
        let expected = model.num_params();
        if expected != self.params.len() {
            return Err(CheckpointError::ShapeMismatch { expected, got: self.params.len() });
        }
        model.scatter_params(&self.params);
        model.zero_grads();
        Ok(self.optimizer.clone())
    }

    /// Serializes the snapshot into the self-validating on-disk format:
    ///
    /// ```text
    /// DOSCKPT1\n<fnv1a-64 hex>\n<payload length>\n<JSON payload>
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] if serialization itself fails
    /// (it should not for well-formed state).
    pub fn to_bytes(&self) -> Result<Vec<u8>, CheckpointError> {
        let payload = serde_json::to_vec(self)
            .map_err(|e| CheckpointError::Corrupt { detail: format!("serialize: {e}") })?;
        let mut out = format!(
            "{MAGIC}{VERSION}\n{:016x}\n{}\n",
            fnv1a64(&payload),
            payload.len()
        )
        .into_bytes();
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Parses and validates the on-disk format produced by
    /// [`TrainingCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any deviation — wrong magic, unknown version, short payload,
    /// checksum mismatch, trailing bytes, undecodable JSON — returns the
    /// corresponding typed [`CheckpointError`]; corrupted input is never
    /// silently restored.
    pub fn from_bytes(bytes: &[u8]) -> Result<TrainingCheckpoint, CheckpointError> {
        let mut rest = bytes;
        let mut next_line = |what: &str| -> Result<&str, CheckpointError> {
            let nl = rest.iter().position(|&b| b == b'\n').ok_or_else(|| {
                CheckpointError::Corrupt { detail: format!("missing {what} line") }
            })?;
            let (line, tail) = rest.split_at(nl);
            rest = &tail[1..];
            std::str::from_utf8(line)
                .map_err(|_| CheckpointError::Corrupt { detail: format!("non-UTF-8 {what} line") })
        };

        let magic = match next_line("magic") {
            Ok(m) => m.to_string(),
            // A file too short to even hold the header reads as not-a-checkpoint.
            Err(_) => {
                return Err(CheckpointError::BadMagic {
                    found: String::from_utf8_lossy(&bytes[..bytes.len().min(16)]).into_owned(),
                })
            }
        };
        match magic.strip_prefix(MAGIC) {
            Some(ver) => match ver.parse::<u32>() {
                Ok(v) if v == VERSION => {}
                Ok(v) => return Err(CheckpointError::UnsupportedVersion { found: v }),
                Err(_) => return Err(CheckpointError::BadMagic { found: magic }),
            },
            None => return Err(CheckpointError::BadMagic { found: magic }),
        }

        let checksum_line = next_line("checksum")?.to_string();
        let expected_sum = u64::from_str_radix(&checksum_line, 16).map_err(|_| {
            CheckpointError::Corrupt { detail: format!("bad checksum field `{checksum_line}`") }
        })?;
        let len_line = next_line("payload-length")?.to_string();
        let expected_len: usize = len_line.parse().map_err(|_| CheckpointError::Corrupt {
            detail: format!("bad payload-length field `{len_line}`"),
        })?;

        if rest.len() < expected_len {
            return Err(CheckpointError::Truncated { expected: expected_len, got: rest.len() });
        }
        if rest.len() > expected_len {
            return Err(CheckpointError::Corrupt {
                detail: format!("{} trailing bytes after payload", rest.len() - expected_len),
            });
        }
        let got_sum = fnv1a64(rest);
        if got_sum != expected_sum {
            return Err(CheckpointError::ChecksumMismatch { expected: expected_sum, got: got_sum });
        }
        serde_json::from_slice(rest)
            .map_err(|e| CheckpointError::Corrupt { detail: format!("payload decode: {e}") })
    }

    /// Writes the snapshot to `path` crash-consistently: serialize, write
    /// to a temp file in the same directory, fsync it, atomically rename
    /// over `path`, then fsync the directory. A crash at any point leaves
    /// either the old file or the new one — never a torn mix.
    ///
    /// # Errors
    ///
    /// Returns I/O or serialization errors; on error the destination is
    /// untouched (a stale temp file may remain).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes()?;
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(e.into());
        }
        if let Some(dir) = dir {
            // Persist the rename itself. Opening a directory read-only for
            // fsync is POSIX-specific; where unsupported, skip silently.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads and validates a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the file cannot be read, or any
    /// of the validation errors of [`TrainingCheckpoint::from_bytes`].
    pub fn load(path: &Path) -> Result<TrainingCheckpoint, CheckpointError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        TrainingCheckpoint::from_bytes(&bytes)
    }
}

/// A retention directory of checkpoints: `ckpt-<iteration>.dos` files, the
/// newest `keep` retained, with fallback to the newest *valid* one when
/// recovering from a crash that corrupted or truncated the latest.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    tracer: Option<dos_telemetry::Tracer>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `dir`, retaining the
    /// newest `keep` checkpoints (`keep` is clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<CheckpointStore, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, keep: keep.max(1), tracer: None })
    }

    /// Attaches a tracer so recovery incidents are recorded: a fallback
    /// past rejected checkpoint files emits a `fault:checkpoint:fallback`
    /// instant (which also triggers the tracer's flight-recorder dump).
    #[must_use]
    pub fn with_tracer(mut self, tracer: dos_telemetry::Tracer) -> CheckpointStore {
        self.tracer = Some(tracer);
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path a given iteration's checkpoint gets.
    pub fn path_for(&self, iteration: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{iteration:08}.dos"))
    }

    /// Checkpoint files currently in the store, oldest first.
    pub fn list(&self) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".dos"))
            })
            .collect();
        files.sort();
        files
    }

    /// Saves `checkpoint` under its iteration's name (atomically), then
    /// prunes checkpoints beyond the retention limit, oldest first.
    ///
    /// # Errors
    ///
    /// Returns the save error, if any; pruning failures are ignored (a
    /// leftover old checkpoint is harmless).
    pub fn save(&self, checkpoint: &TrainingCheckpoint) -> Result<PathBuf, CheckpointError> {
        let path = self.path_for(checkpoint.iteration);
        checkpoint.save(&path)?;
        let files = self.list();
        if files.len() > self.keep {
            for old in &files[..files.len() - self.keep] {
                let _ = fs::remove_file(old);
            }
        }
        Ok(path)
    }

    /// Loads the newest checkpoint that validates, skipping (and counting)
    /// any that are truncated, corrupt, or unreadable — the crash-recovery
    /// entry point.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::NoValidCheckpoint`] when every candidate
    /// fails validation (or none exist).
    pub fn latest_valid(&self) -> Result<(TrainingCheckpoint, PathBuf), CheckpointError> {
        let mut rejected = 0;
        for path in self.list().into_iter().rev() {
            match TrainingCheckpoint::load(&path) {
                Ok(ckpt) => {
                    if rejected > 0 {
                        // Recovered, but not from the newest file: that is
                        // an incident worth a flight-recorder dump.
                        if let Some(t) = &self.tracer {
                            t.instant_at("faults", "fault:checkpoint:fallback", "fault", t.now());
                        }
                    }
                    return Ok((ckpt, path));
                }
                Err(_) => rejected += 1,
            }
        }
        Err(CheckpointError::NoValidCheckpoint { dir: self.dir.clone(), rejected })
    }
}

/// Writes checkpoints on a background thread so training continues
/// unblocked; at most one write is in flight (a new request waits for the
/// previous one, bounding staging memory like the paper's pinned windows).
#[derive(Debug, Default)]
pub struct AsyncCheckpointer {
    in_flight: Option<(PathBuf, JoinHandle<Result<(), CheckpointError>>)>,
}

impl AsyncCheckpointer {
    /// Creates an idle checkpointer.
    pub fn new() -> AsyncCheckpointer {
        AsyncCheckpointer::default()
    }

    /// Starts writing `checkpoint` to `path` in the background, first
    /// draining any previous in-flight write.
    ///
    /// # Errors
    ///
    /// Returns the error of the *previous* write if it failed.
    pub fn save_async(
        &mut self,
        checkpoint: TrainingCheckpoint,
        path: impl Into<PathBuf>,
    ) -> Result<(), CheckpointError> {
        self.drain()?;
        let path = path.into();
        let thread_path = path.clone();
        let handle = dos_core::sync::spawn(move || checkpoint.save(&thread_path));
        self.in_flight = Some((path, handle));
        Ok(())
    }

    /// Starts writing `checkpoint` into `store` in the background
    /// (retention pruning included), first draining any previous write.
    ///
    /// # Errors
    ///
    /// Returns the error of the *previous* write if it failed.
    pub fn save_async_in(
        &mut self,
        checkpoint: TrainingCheckpoint,
        store: &CheckpointStore,
    ) -> Result<(), CheckpointError> {
        self.drain()?;
        let path = store.path_for(checkpoint.iteration);
        let store = store.clone();
        let handle = dos_core::sync::spawn(move || store.save(&checkpoint).map(|_| ()));
        self.in_flight = Some((path, handle));
        Ok(())
    }

    /// Whether a write is currently in flight (without blocking).
    pub fn is_writing(&self) -> bool {
        self.in_flight.as_ref().is_some_and(|(_, h)| !h.is_finished())
    }

    /// Blocks until any in-flight write completes.
    ///
    /// # Errors
    ///
    /// Returns the write's error, if any; a panicked writer thread surfaces
    /// as [`CheckpointError::WriterPanicked`].
    pub fn drain(&mut self) -> Result<(), CheckpointError> {
        if let Some((_, handle)) = self.in_flight.take() {
            handle.join().map_err(|_| CheckpointError::WriterPanicked)??;
        }
        Ok(())
    }
}

impl Drop for AsyncCheckpointer {
    fn drop(&mut self) {
        // Destructors must not fail: ignore errors, finish the write.
        let _ = self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_nn::{Gpt, GptConfig};
    use dos_optim::UpdateRule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Gpt, MixedPrecisionState) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = Gpt::new(GptConfig::tiny(), &mut rng);
        let state =
            MixedPrecisionState::new(model.gather_params(), UpdateRule::adam(), 1e-2);
        (model, state)
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dos-ckpt-test-{name}-{}.dos", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let (mut model, mut state) = setup();
        state.full_step(&vec![0.01; state.len()]);
        let ckpt = TrainingCheckpoint::capture(&mut model, &state, 7);
        let path = tmp("roundtrip");
        ckpt.save(&path).unwrap();
        let loaded = TrainingCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);
        assert_eq!(loaded.iteration, 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_is_human_inspectable_and_versioned() {
        let (mut model, state) = setup();
        let bytes = TrainingCheckpoint::capture(&mut model, &state, 1).to_bytes().unwrap();
        assert!(bytes.starts_with(b"DOSCKPT1\n"));
        let round = TrainingCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(round.iteration, 1);
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let (mut model, state) = setup();
        let ckpt = TrainingCheckpoint::capture(&mut model, &state, 3);
        let bytes = ckpt.to_bytes().unwrap();
        // Cut mid-payload: header intact, payload short.
        let cut = &bytes[..bytes.len() - 100];
        match TrainingCheckpoint::from_bytes(cut) {
            Err(CheckpointError::Truncated { expected, got }) => {
                assert_eq!(expected, got + 100);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Empty and header-only files are typed errors too.
        assert!(TrainingCheckpoint::from_bytes(&[]).is_err());
        assert!(TrainingCheckpoint::from_bytes(b"DOSCKPT1\n").is_err());
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let (mut model, state) = setup();
        let ckpt = TrainingCheckpoint::capture(&mut model, &state, 3);
        let mut bytes = ckpt.to_bytes().unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        match TrainingCheckpoint::from_bytes(&bytes) {
            Err(CheckpointError::ChecksumMismatch { expected, got }) => {
                assert_ne!(expected, got);
            }
            // A flip that breaks JSON before the checksum check can't
            // happen (checksum runs first), but a flip landing in the
            // header is a different typed error — also acceptable.
            Err(_) => {}
            Ok(_) => panic!("corrupted checkpoint restored silently"),
        }
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        let err = TrainingCheckpoint::from_bytes(b"DOSCKPT9\n0\n0\n").unwrap_err();
        assert!(matches!(err, CheckpointError::UnsupportedVersion { found: 9 }));
        let err = TrainingCheckpoint::from_bytes(b"{\"json\": true}\n").unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic { .. }));
    }

    #[test]
    fn restore_rejects_mismatched_models() {
        let (mut model, state) = setup();
        let mut ckpt = TrainingCheckpoint::capture(&mut model, &state, 1);
        ckpt.params.pop();
        match ckpt.restore(&mut model) {
            Err(CheckpointError::ShapeMismatch { expected, got }) => {
                assert_eq!(expected, got + 1);
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn resume_matches_uninterrupted_training() {
        let (mut model_a, mut state_a) = setup();
        let (mut model_b, mut state_b) = setup();
        let tokens = [1usize, 2, 3, 4];
        let targets = [2usize, 3, 4, 5];

        let train_step = |m: &mut Gpt, s: &mut MixedPrecisionState| {
            m.loss_and_backward(&tokens, &targets, 1, 4);
            let grads = m.gather_grads();
            s.full_step(&grads);
            m.scatter_params(s.params());
            m.zero_grads();
        };

        // A: 4 uninterrupted steps.
        for _ in 0..4 {
            train_step(&mut model_a, &mut state_a);
        }
        // B: 2 steps, checkpoint to disk, restore into fresh objects, 2 more.
        for _ in 0..2 {
            train_step(&mut model_b, &mut state_b);
        }
        let path = tmp("resume");
        TrainingCheckpoint::capture(&mut model_b, &state_b, 2).save(&path).unwrap();
        let (mut model_c, _) = setup();
        let loaded = TrainingCheckpoint::load(&path).unwrap();
        let mut state_c = loaded.restore(&mut model_c).unwrap();
        for _ in 0..2 {
            train_step(&mut model_c, &mut state_c);
        }
        assert_eq!(model_a.gather_params(), model_c.gather_params());
        assert_eq!(state_a.params(), state_c.params());
        assert_eq!(state_a.step_count(), state_c.step_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_retains_and_falls_back_to_newest_valid() {
        let dir = std::env::temp_dir()
            .join(format!("dos-ckpt-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 2).unwrap();
        let (mut model, mut state) = setup();
        for it in 1..=4 {
            state.full_step(&vec![0.001 * it as f32; state.len()]);
            store.save(&TrainingCheckpoint::capture(&mut model, &state, it)).unwrap();
        }
        // Retention: only the newest 2 remain.
        let files = store.list();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0], store.path_for(3));
        assert_eq!(files[1], store.path_for(4));

        // Undamaged: the newest wins.
        let (ckpt, path) = store.latest_valid().unwrap();
        assert_eq!(ckpt.iteration, 4);
        assert_eq!(path, store.path_for(4));

        // Truncate the newest (a crash mid-copy): fall back to iteration 3.
        let bytes = std::fs::read(store.path_for(4)).unwrap();
        std::fs::write(store.path_for(4), &bytes[..bytes.len() / 2]).unwrap();
        let (ckpt, path) = store.latest_valid().unwrap();
        assert_eq!(ckpt.iteration, 3);
        assert_eq!(path, store.path_for(3));

        // Destroy both: typed failure with the rejection count.
        std::fs::write(store.path_for(3), b"garbage").unwrap();
        match store.latest_valid() {
            Err(CheckpointError::NoValidCheckpoint { rejected, .. }) => assert_eq!(rejected, 2),
            other => panic!("expected NoValidCheckpoint, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fallback_recovery_emits_a_fault_instant_and_flight_dump() {
        let dir = std::env::temp_dir()
            .join(format!("dos-ckpt-fallback-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tracer = dos_telemetry::Tracer::with_flight(64);
        let store = CheckpointStore::open(&dir, 2).unwrap().with_tracer(tracer.clone());
        let (mut model, mut state) = setup();
        for it in 1..=2 {
            state.full_step(&vec![0.001 * it as f32; state.len()]);
            store.save(&TrainingCheckpoint::capture(&mut model, &state, it)).unwrap();
        }
        // A clean recovery stays quiet.
        store.latest_valid().unwrap();
        assert!(tracer.events().iter().all(|e| e.name != "fault:checkpoint:fallback"));

        // Truncate the newest: recovery falls back and records the incident.
        let bytes = std::fs::read(store.path_for(2)).unwrap();
        std::fs::write(store.path_for(2), &bytes[..bytes.len() / 2]).unwrap();
        let (ckpt, _) = store.latest_valid().unwrap();
        assert_eq!(ckpt.iteration, 1);
        assert!(tracer.events().iter().any(|e| e.name == "fault:checkpoint:fallback"));
        let dump = tracer.flight().unwrap().last_dump().expect("fault: triggers auto dump");
        assert_eq!(dump.reason, "fault:checkpoint:fallback");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_save_leaves_no_temp_files() {
        let dir = std::env::temp_dir()
            .join(format!("dos-ckpt-atomic-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, 3).unwrap();
        let (mut model, state) = setup();
        store.save(&TrainingCheckpoint::capture(&mut model, &state, 1)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_writer_overlaps_and_drains() {
        let (mut model, state) = setup();
        let ckpt = TrainingCheckpoint::capture(&mut model, &state, 0);
        let path = tmp("async");
        let mut writer = AsyncCheckpointer::new();
        writer.save_async(ckpt.clone(), &path).unwrap();
        // Training can proceed here while the write is in flight.
        writer.drain().unwrap();
        assert!(!writer.is_writing());
        assert_eq!(TrainingCheckpoint::load(&path).unwrap(), ckpt);
        // Back-to-back saves drain the previous write first.
        writer.save_async(ckpt.clone(), &path).unwrap();
        writer.save_async(ckpt.clone(), &path).unwrap();
        writer.drain().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn async_writer_reports_errors_on_drain() {
        let (mut model, state) = setup();
        let ckpt = TrainingCheckpoint::capture(&mut model, &state, 0);
        let mut writer = AsyncCheckpointer::new();
        writer.save_async(ckpt, "/nonexistent-dir/ckpt.dos").unwrap();
        assert!(writer.drain().is_err());
    }
}
