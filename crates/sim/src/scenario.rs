//! Builds training iterations on the simulated hardware.
//!
//! [`IterationScenario`] owns one rank's [`RankSim`] and knows how to submit
//! the forward and backward phases (ZeRO-3 all-gathers, compute, activation
//! checkpointing, gradient reduce-scatter and flush) plus the primitive
//! update-phase operations (CPU/GPU subgroup updates, downscaling,
//! prefetch/flush over dedicated streams) that update schedulers in
//! `dos-core` compose into the paper's Figure 5 schedules.

use dos_collectives::RingCost;
use dos_hal::{OpId, OpSpec, RankSim, SimError, SimTime, StreamId};
use dos_telemetry::Timeline;
use dos_zero::{SubgroupSpec, ZeroPartition};

use crate::config::{GradientPath, TrainConfig};

/// The two completion points of a subgroup flush (Algorithm 1's
/// `async_flush_out`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushHandles {
    /// FP16 parameters are updated on the GPU (D2D `.half()` done); the next
    /// iteration may consume them.
    pub params_ready: OpId,
    /// The FP32 state (p, m, v) has fully drained to the host.
    pub flushed: OpId,
}

/// One rank's simulated training iteration builder.
#[derive(Debug, Clone)]
pub struct IterationScenario {
    /// The configuration being simulated.
    pub cfg: TrainConfig,
    /// The simulated rank (engine, resources, streams, memory pools).
    pub rank: RankSim,
    subgroups: Vec<SubgroupSpec>,
    nvlink_stream: StreamId,
    flush_stream: StreamId,
    nvme_stream: StreamId,
    iteration: usize,
    micro_step: usize,
}

impl IterationScenario {
    /// Creates the scenario for data-parallel rank 0 (the largest shard
    /// under uneven partitioning, hence the conservative choice) and
    /// records the steady-state allocations (FP16 parameter shard, static
    /// optimizer residents).
    pub fn new(cfg: TrainConfig) -> IterationScenario {
        Self::new_for_rank(cfg, 0)
    }

    /// Creates the scenario for an arbitrary rank. Because the update phase
    /// invokes blocking collectives at iteration boundaries, "the slowest
    /// process in the group dictates the iteration time" (§5.4) — see
    /// [`simulate_iteration_slowest`](crate::simulate_iteration_slowest).
    ///
    /// # Panics
    ///
    /// Panics if `dp_rank >= cfg.world`.
    pub fn new_for_rank(cfg: TrainConfig, dp_rank: usize) -> IterationScenario {
        assert!(dp_rank < cfg.world, "rank {dp_rank} out of range");
        let mut rank = RankSim::new(&cfg.profile);
        let nvlink_stream = rank.sim.add_stream("nvlink");
        let flush_stream = rank.sim.add_stream("grad-flush");
        let nvme_stream = rank.sim.add_stream("nvme");
        let part = ZeroPartition::new(cfg.stage, cfg.world, dp_rank);
        let total = cfg.spec.param_count() as usize;
        let subgroups = part.subgroups(total, cfg.offload.subgroup_params);

        // Steady-state GPU allocations.
        rank.hbm.alloc(SimTime::ZERO, part.gpu_param_bytes(total as u64), "fp16-params");
        let static_bytes =
            (12.0 * (total as f64 / cfg.world as f64) * cfg.offload.gpu_resident_ratio) as u64;
        if static_bytes > 0 {
            rank.hbm.alloc(SimTime::ZERO, static_bytes, "static-optimizer");
        }
        // Host-side optimizer state + FP32 gradient buffer. With the NVMe
        // tier the host keeps only a 4-subgroup staging window.
        let per_rank = (total / cfg.world) as u64;
        let host_opt = if cfg.offload.optimizer_on_nvme {
            (12 * cfg.offload.subgroup_params as u64 * 4)
                .min(12 * per_rank - static_bytes)
        } else {
            12 * per_rank - static_bytes
        };
        rank.dram.alloc(SimTime::ZERO, host_opt, "host-optimizer");
        rank.dram.alloc(SimTime::ZERO, 4 * per_rank, "host-grads");
        // Pinned FP16 staging (downscaled params awaiting H2D + flush window).
        rank.dram.alloc(SimTime::ZERO, 2 * per_rank, "host-pinned-staging");

        IterationScenario {
            cfg,
            rank,
            subgroups,
            nvlink_stream,
            flush_stream,
            nvme_stream,
            iteration: 0,
            micro_step: 0,
        }
    }

    /// This rank's optimizer subgroups, in parameter order.
    pub fn subgroups(&self) -> &[SubgroupSpec] {
        &self.subgroups
    }

    /// The iteration index the next `run_forward` will build.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    fn ring(&self) -> RingCost {
        RingCost::new(
            self.cfg.world,
            self.cfg.profile.nvlink_bw,
            self.cfg.profile.op_latency.as_secs(),
        )
    }

    fn layer_params(&self) -> f64 {
        self.cfg.spec.param_count() as f64 / self.cfg.spec.num_layers as f64
    }

    /// Duration of an update-phase PCIe transfer of `bytes` at the effective
    /// optimizer-state rate (`B` of Eq. 1, expressed in FP32 params/s).
    fn update_xfer_secs(&self, bytes: f64) -> f64 {
        bytes / (4.0 * self.cfg.profile.update_b_pps)
    }

    // ----------------------------------------------------------------
    // Forward phase
    // ----------------------------------------------------------------

    /// Submits the forward pass; returns the op that completes it.
    ///
    /// Per layer: a ZeRO-3 ring all-gather of the layer's FP16 parameters
    /// (overlapped with the previous layer's compute, as DeepSpeed
    /// prefetches) followed by the layer's GEMMs. Activations (or
    /// checkpoints) are allocated as layers complete.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_forward(&mut self, after: Option<OpId>) -> Result<OpId, SimError> {
        let cfg = self.cfg.clone();
        let layers = cfg.spec.num_layers;
        let flops_per_layer = cfg.spec.forward_flops(cfg.micro_batch) / layers as f64;
        let gemm_secs = flops_per_layer / cfg.profile.gpu_flops;
        let ring = self.ring();
        let gather_total_bytes = 2.0 * self.layer_params();
        let gather_secs = if cfg.stage.shards_parameters() && cfg.world > 1 {
            ring.all_gather(gather_total_bytes)
        } else {
            0.0
        };
        let act_bytes_per_layer = if cfg.offload.activation_checkpointing {
            cfg.spec.activation_checkpoint_bytes(cfg.micro_batch) / layers as u64
        } else {
            cfg.spec.activation_bytes(cfg.micro_batch) / layers as u64
        };

        let phase = "forward";
        let mut prev_compute = after;
        for l in 0..layers {
            let mut gather_op = None;
            if gather_secs > 0.0 {
                let mut spec = OpSpec::occupy(
                    self.rank.res.nvlink,
                    SimTime::from_secs(gather_secs),
                    gather_total_bytes * (cfg.world - 1) as f64 / cfg.world as f64,
                )
                .on(self.nvlink_stream)
                .label(format!("allgather:l{l}"))
                .phase(phase);
                if let Some(op) = after.filter(|_| l == 0) {
                    spec = spec.after(op);
                }
                gather_op = Some(self.rank.sim.submit(spec)?);
            }
            let mut spec = OpSpec::occupy(
                self.rank.res.gpu,
                SimTime::from_secs(gemm_secs),
                flops_per_layer,
            )
            .on(self.rank.streams.compute)
            .label(format!("fwd:l{l}"))
            .phase(phase);
            if let Some(op) = gather_op {
                spec = spec.after(op);
            }
            if let Some(op) = prev_compute {
                spec = spec.after(op);
            }
            let compute = self.rank.sim.submit(spec)?;
            self.rank.hbm.alloc(
                self.rank.sim.finish_time(compute),
                act_bytes_per_layer,
                format!("act:l{l}"),
            );
            prev_compute = Some(compute);
        }
        Ok(prev_compute.expect("at least one layer"))
    }

    // ----------------------------------------------------------------
    // Backward phase
    // ----------------------------------------------------------------

    /// Submits the backward pass; returns the op after which all of this
    /// rank's FP32 gradients are resident in the host gradient buffer
    /// (ready for the update phase).
    ///
    /// Per layer (in reverse): ZeRO-3 all-gather, activation recompute (if
    /// checkpointing), backward GEMMs, gradient reduce-scatter across ranks,
    /// and the gradient flush to host using the configured
    /// [`GradientPath`].
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_backward(&mut self, after: OpId) -> Result<OpId, SimError> {
        let cfg = self.cfg.clone();
        let layers = cfg.spec.num_layers;
        let fwd_flops_layer = cfg.spec.forward_flops(cfg.micro_batch) / layers as f64;
        let bwd_flops_layer = 2.0 * fwd_flops_layer;
        let gemm_bwd_secs = bwd_flops_layer / cfg.profile.gpu_flops;
        let recompute_secs = if cfg.offload.activation_checkpointing {
            fwd_flops_layer / cfg.profile.gpu_flops
        } else {
            0.0
        };
        let ring = self.ring();
        let gather_total_bytes = 2.0 * self.layer_params();
        let gather_secs = if cfg.stage.shards_parameters() && cfg.world > 1 {
            ring.all_gather(gather_total_bytes)
        } else {
            0.0
        };
        let rs_secs = if cfg.stage.shards_gradients() && cfg.world > 1 {
            ring.reduce_scatter(gather_total_bytes)
        } else {
            0.0
        };
        let act_bytes_per_layer = if cfg.offload.activation_checkpointing {
            cfg.spec.activation_checkpoint_bytes(cfg.micro_batch) / layers as u64
        } else {
            cfg.spec.activation_bytes(cfg.micro_batch) / layers as u64
        };
        // Parameters whose gradients this rank flushes per layer.
        let flush_params = self.layer_params() / cfg.world as f64;

        let phase = "backward";
        let accumulate = self.micro_step > 0;
        let mut prev = after;
        let mut flush_ops: Vec<OpId> = Vec::new();
        for l in (0..layers).rev() {
            let mut gather_op = None;
            if gather_secs > 0.0 {
                let spec = OpSpec::occupy(
                    self.rank.res.nvlink,
                    SimTime::from_secs(gather_secs),
                    gather_total_bytes * (cfg.world - 1) as f64 / cfg.world as f64,
                )
                .on(self.nvlink_stream)
                .after(if l == layers - 1 { after } else { prev })
                .label(format!("allgather-b:l{l}"))
                .phase(phase);
                gather_op = Some(self.rank.sim.submit(spec)?);
            }
            if recompute_secs > 0.0 {
                let mut spec = OpSpec::occupy(
                    self.rank.res.gpu,
                    SimTime::from_secs(recompute_secs),
                    fwd_flops_layer,
                )
                .on(self.rank.streams.compute)
                .after(prev)
                .label(format!("recompute:l{l}"))
                .phase(phase);
                if let Some(op) = gather_op {
                    spec = spec.after(op);
                }
                prev = self.rank.sim.submit(spec)?;
            }
            let mut spec = OpSpec::occupy(
                self.rank.res.gpu,
                SimTime::from_secs(gemm_bwd_secs),
                bwd_flops_layer,
            )
            .on(self.rank.streams.compute)
            .after(prev)
            .label(format!("bwd:l{l}"))
            .phase(phase);
            if let Some(op) = gather_op {
                spec = spec.after(op);
            }
            let compute = self.rank.sim.submit(spec)?;
            // Activations of this layer are released once backward used them.
            self.rank.hbm.free(
                self.rank.sim.finish_time(compute),
                act_bytes_per_layer,
                format!("act:l{l}"),
            );
            prev = compute;

            let mut grads_ready = compute;
            if rs_secs > 0.0 {
                let spec = OpSpec::occupy(
                    self.rank.res.nvlink,
                    SimTime::from_secs(rs_secs),
                    gather_total_bytes * (cfg.world - 1) as f64 / cfg.world as f64,
                )
                .on(self.nvlink_stream)
                .after(compute)
                .label(format!("reduce-scatter:l{l}"))
                .phase(phase);
                grads_ready = self.rank.sim.submit(spec)?;
            }
            let flush =
                self.flush_layer_grads(l, flush_params, grads_ready, phase, accumulate)?;
            flush_ops.push(flush);
        }
        // Backward completes when compute and every flush are done.
        let join = self.rank.sim.join(self.rank.streams.compute, flush_ops)?;
        let done = self
            .rank
            .sim
            .submit(OpSpec::marker().on(self.rank.streams.compute).after(join).after(prev))?;
        self.micro_step = (self.micro_step + 1) % self.cfg.grad_accumulation.max(1);
        if self.micro_step == 0 {
            self.iteration += 1;
        }
        Ok(done)
    }

    /// Gradient flush for one layer's rank-share of gradients.
    ///
    /// With gradient accumulation, micro-steps after the first fetch the
    /// previously accumulated gradients back to the GPU and accumulate
    /// there — §3 observes this H2D traffic during the backward pass
    /// because `old_grad.add_(new_grad)` is orders of magnitude faster on
    /// the GPU than on the CPU.
    fn flush_layer_grads(
        &mut self,
        layer: usize,
        params: f64,
        after: OpId,
        phase: &str,
        accumulate: bool,
    ) -> Result<OpId, SimError> {
        let p = self.cfg.profile.clone();
        let bytes16 = 2.0 * params;
        let bytes32 = 4.0 * params;
        let after = if accumulate {
            // Fetch the running FP16 gradient sum and add on the GPU.
            let fetch = self.rank.sim.submit(
                OpSpec::transfer(self.rank.res.h2d, bytes16)
                    .on(self.rank.streams.h2d)
                    .after(after)
                    .label(format!("h2d-accum-grads:l{layer}"))
                    .phase(phase),
            )?;
            self.rank.sim.submit(
                OpSpec::occupy(
                    self.rank.res.gpu,
                    SimTime::from_secs(bytes16 / p.conv.g32_g16),
                    bytes16,
                )
                .on(self.rank.streams.compute)
                .after(fetch)
                .label(format!("gpu-accumulate:l{layer}"))
                .phase(phase),
            )?
        } else {
            after
        };
        // Blocking baselines run the flush on the compute stream; the
        // overlapped design uses a dedicated stream.
        let stream = if self.cfg.overlap_backward {
            self.flush_stream
        } else {
            self.rank.streams.compute
        };
        match self.cfg.gradient_path {
            GradientPath::LegacyFp16Flush => {
                // (1) allocate an unpinned FP16 staging buffer on the host,
                // (2) D2H into it at the pageable rate,
                // (3) upscale FP16->FP32 on the CPU.
                let alloc = self.rank.sim.submit(
                    OpSpec::occupy(
                        self.rank.res.host_mem,
                        SimTime::from_secs(bytes16 / p.host_alloc_bw),
                        bytes16,
                    )
                    .on(stream)
                    .after(after)
                    .label(format!("alloc-staging:l{layer}"))
                    .phase(phase),
                )?;
                let d2h = self.rank.sim.submit(
                    OpSpec::occupy(
                        self.rank.res.d2h,
                        SimTime::from_secs(bytes16 / p.pcie_d2h_pageable),
                        bytes16,
                    )
                    .on(stream)
                    .after(alloc)
                    .label(format!("d2h-grads16:l{layer}"))
                    .phase(phase),
                )?;
                self.rank.sim.submit(
                    OpSpec::occupy(
                        self.rank.res.cpu,
                        SimTime::from_secs(bytes32 / p.conv.h32_h16),
                        bytes32,
                    )
                    .on(stream)
                    .after(d2h)
                    .label(format!("host-upscale:l{layer}"))
                    .phase(phase),
                )
            }
            GradientPath::Fp32OnGpu => {
                // Chunk-wise FP16->FP32 on the GPU, then pinned FP32 DMA.
                let convert = self.rank.sim.submit(
                    OpSpec::occupy(
                        self.rank.res.gpu,
                        SimTime::from_secs(bytes32 / p.conv.g32_g16),
                        bytes32,
                    )
                    .on(stream)
                    .after(after)
                    .label(format!("gpu-upscale:l{layer}"))
                    .phase(phase),
                )?;
                self.rank.sim.submit(
                    OpSpec::transfer(self.rank.res.d2h, bytes32)
                        .on(stream)
                        .after(convert)
                        .label(format!("d2h-grads32:l{layer}"))
                        .phase(phase),
                )
            }
        }
    }

    // ----------------------------------------------------------------
    // Update-phase primitives (composed by dos-core schedulers)
    // ----------------------------------------------------------------

    /// Applies the DRAM-contention slowdown to CPU work (call when PCIe
    /// traffic will run concurrently with CPU updates; Figure 15's CPU dip).
    pub fn apply_update_contention(&mut self) {
        let f = self.cfg.profile.dram_contention_cpu_factor;
        self.rank.sim.set_throughput_scale(self.rank.res.cpu, f);
    }

    /// Removes the contention slowdown.
    pub fn clear_update_contention(&mut self) {
        self.rank.sim.set_throughput_scale(self.rank.res.cpu, 1.0);
    }

    /// CPU update of one subgroup (duration `S / U_c`).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn cpu_update(&mut self, sg: &SubgroupSpec, after: &[OpId]) -> Result<OpId, SimError> {
        let secs = sg.len() as f64 / self.cfg.profile.cpu_update_pps();
        self.rank.sim.submit(
            OpSpec::compute(self.rank.res.cpu, secs)
                .on(self.rank.streams.cpu)
                .after_all(after.iter().copied())
                .label(format!("cpu-update:sg{}", sg.id))
                .phase("update"),
        )
    }

    /// CPU FP32→FP16 downscale of one subgroup's parameters (`S / D_c`).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn cpu_downscale(&mut self, sg: &SubgroupSpec, after: &[OpId]) -> Result<OpId, SimError> {
        let secs = sg.len() as f64 / self.cfg.profile.cpu_downscale_pps();
        self.rank.sim.submit(
            OpSpec::compute(self.rank.res.cpu, secs)
                .on(self.rank.streams.cpu)
                .after_all(after.iter().copied())
                .label(format!("downscale:sg{}", sg.id))
                .phase("update"),
        )
    }

    /// H2D transfer of one subgroup's downscaled FP16 parameters
    /// (`S / (2B)`), on the general H2D stream.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn h2d_updated_params(
        &mut self,
        sg: &SubgroupSpec,
        after: &[OpId],
    ) -> Result<OpId, SimError> {
        let bytes = 2.0 * sg.len() as f64;
        self.rank.sim.submit(
            OpSpec::occupy(
                self.rank.res.h2d,
                SimTime::from_secs(self.update_xfer_secs(bytes)),
                bytes,
            )
            .on(self.rank.streams.h2d)
            .after_all(after.iter().copied())
            .label(format!("h2d-params16:sg{}", sg.id))
            .phase("update"),
        )
    }

    /// GPU update of one subgroup (duration `S / U_g`).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn gpu_update(&mut self, sg: &SubgroupSpec, after: &[OpId]) -> Result<OpId, SimError> {
        let secs = sg.len() as f64 / self.cfg.profile.gpu_update_pps;
        self.rank.sim.submit(
            OpSpec::compute(self.rank.res.gpu, secs)
                .on(self.rank.streams.compute)
                .after_all(after.iter().copied())
                .label(format!("gpu-update:sg{}", sg.id))
                .phase("update"),
        )
    }

    /// Asynchronous prefetch of one subgroup's FP32 state (p, m, v) to the
    /// GPU over the three dedicated streams (Algorithm 1,
    /// `async_prefetch_in`). Allocates the transient GPU buffer. Returns the
    /// join op.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn prefetch_subgroup(
        &mut self,
        sg: &SubgroupSpec,
        after: &[OpId],
    ) -> Result<OpId, SimError> {
        let bytes = 4.0 * sg.len() as f64;
        let secs = self.update_xfer_secs(bytes);
        let streams =
            [self.rank.streams.momentum, self.rank.streams.variance, self.rank.streams.param];
        let names = ["momentum", "variance", "param"];
        let mut ops = Vec::with_capacity(3);
        for (stream, name) in streams.into_iter().zip(names) {
            ops.push(self.rank.sim.submit(
                OpSpec::occupy(self.rank.res.h2d, SimTime::from_secs(secs), bytes)
                    .on(stream)
                    .after_all(after.iter().copied())
                    .label(format!("prefetch-{name}:sg{}", sg.id))
                    .phase("update"),
            )?);
        }
        let join = self.rank.sim.join(self.rank.streams.param, ops)?;
        let t = self.rank.sim.finish_time(join);
        self.rank.hbm.alloc(t, sg.optimizer_bytes(), format!("sg-buffer:{}", sg.id));
        Ok(join)
    }

    /// Asynchronous flush of one GPU-updated subgroup (Algorithm 1,
    /// `async_flush_out`): D2D FP32→FP16 of the parameters on the GPU, then
    /// p, m, v D2H on the dedicated streams. Frees the transient GPU buffer.
    ///
    /// Returns both the op after which the *FP16 parameters* are usable by
    /// the next iteration (the D2D `.half()` copy) and the op after which
    /// the optimizer state has fully drained to the host — the D2H part may
    /// spill into the next iteration (Figure 5's dotted line).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn flush_subgroup(
        &mut self,
        sg: &SubgroupSpec,
        after: &[OpId],
    ) -> Result<FlushHandles, SimError> {
        let bytes32 = 4.0 * sg.len() as f64;
        // model16[x] <- p_tmp.half() : D2D on the parameter stream.
        let halve = self.rank.sim.submit(
            OpSpec::occupy(
                self.rank.res.gpu,
                SimTime::from_secs(bytes32 / self.cfg.profile.conv.g32_g16),
                bytes32,
            )
            .on(self.rank.streams.param)
            .after_all(after.iter().copied())
            .label(format!("d2d-half:sg{}", sg.id))
            .phase("update"),
        )?;
        let secs = self.update_xfer_secs(bytes32);
        // The flush drains on the D2H stream while the *next* subgroup's
        // prefetch proceeds on the dedicated H2D streams into a second
        // transient buffer — the double-buffered overlap Figure 5 (bottom)
        // shows between `flush S3` and `prefetch S6`.
        let names = ["momentum", "variance", "param"];
        let mut ops = Vec::with_capacity(3);
        for name in names {
            ops.push(self.rank.sim.submit(
                OpSpec::occupy(self.rank.res.d2h, SimTime::from_secs(secs), bytes32)
                    .on(self.rank.streams.d2h)
                    .after(halve)
                    .label(format!("flush-{name}:sg{}", sg.id))
                    .phase("update"),
            )?);
        }
        let join = self.rank.sim.join(self.rank.streams.d2h, ops)?;
        let t = self.rank.sim.finish_time(join);
        self.rank.hbm.free(t, sg.optimizer_bytes(), format!("sg-buffer:{}", sg.id));
        Ok(FlushHandles { params_ready: halve, flushed: join })
    }

    /// Reads one subgroup's FP32 optimizer state (p, m, v) from NVMe into
    /// the host staging window (ZeRO-Infinity tier; §6 future work).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn nvme_read_subgroup(
        &mut self,
        sg: &SubgroupSpec,
        after: &[OpId],
    ) -> Result<OpId, SimError> {
        let bytes = sg.optimizer_bytes() as f64;
        self.rank.sim.submit(
            OpSpec::occupy(
                self.rank.res.nvme,
                SimTime::from_secs(bytes / self.cfg.profile.nvme_read_bw),
                bytes,
            )
            .on(self.nvme_stream)
            .after_all(after.iter().copied())
            .label(format!("nvme-read:sg{}", sg.id))
            .phase("update"),
        )
    }

    /// Writes one subgroup's updated FP32 state back to NVMe.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn nvme_write_subgroup(
        &mut self,
        sg: &SubgroupSpec,
        after: &[OpId],
    ) -> Result<OpId, SimError> {
        let bytes = sg.optimizer_bytes() as f64;
        self.rank.sim.submit(
            OpSpec::occupy(
                self.rank.res.nvme,
                SimTime::from_secs(bytes / self.cfg.profile.nvme_write_bw),
                bytes,
            )
            .on(self.nvme_stream)
            .after_all(after.iter().copied())
            .label(format!("nvme-write:sg{}", sg.id))
            .phase("update"),
        )
    }

    /// Converts the engine trace into a telemetry [`Timeline`].
    pub fn timeline(&self) -> Timeline {
        let mut tl = Timeline::new();
        for iv in self.rank.sim.trace() {
            let resource = match iv.resource {
                Some(r) => self.rank.sim.resource_name(r).to_string(),
                None => continue,
            };
            tl.push(dos_telemetry::Span {
                resource,
                label: iv.label.clone(),
                phase: iv.phase.clone(),
                start: iv.start.as_secs(),
                end: iv.end.as_secs(),
                work: iv.work,
            });
        }
        tl
    }

    /// Replays the engine schedule into `tracer` on the simulated clock,
    /// one track per stream (see [`dos_hal::Simulator::record_into`]).
    pub fn record_into(&self, tracer: &dos_telemetry::Tracer) {
        self.rank.sim.record_into(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_hal::HardwareProfile;
    use dos_nn::ModelSpec;

    fn scenario(name: &str) -> IterationScenario {
        IterationScenario::new(TrainConfig::baseline(
            ModelSpec::by_name(name).unwrap(),
            HardwareProfile::jlse_h100(),
        ))
    }

    #[test]
    fn subgroup_count_matches_shard() {
        let scn = scenario("20B");
        let per_rank = scn.cfg.params_per_rank();
        assert_eq!(scn.subgroups().len(), per_rank.div_ceil(100_000_000));
    }

    #[test]
    fn forward_then_backward_orders_phases() {
        let mut scn = scenario("7B");
        let fwd = scn.run_forward(None).unwrap();
        let bwd = scn.run_backward(fwd).unwrap();
        let t_fwd = scn.rank.sim.finish_time(fwd);
        let t_bwd = scn.rank.sim.finish_time(bwd);
        assert!(t_bwd > t_fwd);
        assert_eq!(scn.iteration(), 1);
        let tl = scn.timeline();
        let (f0, f1) = tl.phase_bounds("forward").unwrap();
        let (b0, b1) = tl.phase_bounds("backward").unwrap();
        assert!(f0 < f1 && b0 < b1);
        assert!(b1 > f1);
    }

    #[test]
    fn backward_is_longer_than_forward_with_checkpointing() {
        let mut scn = scenario("7B");
        let fwd = scn.run_forward(None).unwrap();
        let bwd = scn.run_backward(fwd).unwrap();
        let fwd_secs = scn.rank.sim.finish_time(fwd).as_secs();
        let bwd_secs = scn.rank.sim.finish_time(bwd).as_secs() - fwd_secs;
        // 3x compute plus blocking flushes.
        assert!(bwd_secs > 2.0 * fwd_secs, "fwd {fwd_secs}, bwd {bwd_secs}");
    }

    #[test]
    fn legacy_flush_is_much_slower_than_fp32_on_gpu() {
        let mut legacy = scenario("20B");
        let fwd = legacy.run_forward(None).unwrap();
        let bwd = legacy.run_backward(fwd).unwrap();
        let legacy_secs = legacy.rank.sim.finish_time(bwd).as_secs();

        let cfg = TrainConfig::deep_optimizer_states(
            ModelSpec::by_name("20B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        let mut dos = IterationScenario::new(cfg);
        let fwd = dos.run_forward(None).unwrap();
        let bwd = dos.run_backward(fwd).unwrap();
        let dos_secs = dos.rank.sim.finish_time(bwd).as_secs();
        assert!(
            legacy_secs > 1.5 * dos_secs,
            "legacy fwd+bwd {legacy_secs}s vs DOS {dos_secs}s"
        );
    }

    #[test]
    fn update_primitives_have_model_durations() {
        let mut scn = scenario("20B");
        let sg = scn.subgroups()[0];
        let p = scn.cfg.profile.clone();
        let c = scn.cpu_update(&sg, &[]).unwrap();
        let cpu_secs = scn.rank.sim.finish_time(c).as_secs();
        assert!((cpu_secs - sg.len() as f64 / p.cpu_update_pps()).abs() < 1e-9);
        let g = scn.gpu_update(&sg, &[]).unwrap();
        let gpu_end = scn.rank.sim.finish_time(g).as_secs();
        assert!(gpu_end < cpu_secs, "gpu update should be much faster");
    }

    #[test]
    fn prefetch_occupies_h2d_for_3s_over_b() {
        let mut scn = scenario("20B");
        let sg = scn.subgroups()[0];
        let join = scn.prefetch_subgroup(&sg, &[]).unwrap();
        let secs = scn.rank.sim.finish_time(join).as_secs();
        let expected = 3.0 * sg.len() as f64 / scn.cfg.profile.update_b_pps;
        assert!((secs - expected).abs() / expected < 1e-6, "{secs} vs {expected}");
    }

    #[test]
    fn prefetch_and_flush_balance_hbm() {
        let mut scn = scenario("20B");
        let sg = scn.subgroups()[0];
        let pre = scn.prefetch_subgroup(&sg, &[]).unwrap();
        let upd = scn.gpu_update(&sg, &[pre]).unwrap();
        let flush = scn.flush_subgroup(&sg, &[upd]).unwrap();
        assert!(flush.params_ready < flush.flushed);
        scn.rank.hbm.validate().unwrap();
    }

    #[test]
    fn contention_slows_cpu_updates() {
        let mut scn = scenario("20B");
        let sg = scn.subgroups()[0];
        scn.apply_update_contention();
        let c = scn.cpu_update(&sg, &[]).unwrap();
        let slowed = scn.rank.sim.finish_time(c).as_secs();
        scn.clear_update_contention();
        let base = sg.len() as f64 / scn.cfg.profile.cpu_update_pps();
        assert!(slowed > base * 1.2, "contention not applied: {slowed} vs {base}");
    }
}
