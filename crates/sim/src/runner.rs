//! Iteration and training-run drivers.

use dos_hal::{OpId, SimError};

use crate::config::TrainConfig;
use crate::report::{IterationReport, ResourceUtilization, TrainingReport};
use crate::scenario::IterationScenario;

/// An update-phase scheduling policy.
///
/// Implementations (in `dos-core`) compose the update primitives of
/// [`IterationScenario`] into a schedule: DeepSpeed ZeRO-3's all-CPU
/// updates, TwinFlow's static split, or Deep Optimizer States' interleaved
/// offloading. The returned op is the point at which the next iteration's
/// forward pass may begin (all updated FP16 parameters resident on the
/// GPU); trailing asynchronous flushes may spill past it.
pub trait UpdateScheduler {
    /// Scheduler name used in reports.
    fn name(&self) -> &str;

    /// Submits the update phase after `grads_ready`.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    fn schedule_update(
        &self,
        scn: &mut IterationScenario,
        grads_ready: OpId,
    ) -> Result<OpId, SimError>;
}

/// Fraction of `[start, end)` covered by the union of the given resources'
/// busy intervals.
fn union_busy(tl: &dos_telemetry::Timeline, resources: &[&str], start: f64, end: f64) -> f64 {
    let mut ivals: Vec<(f64, f64)> = tl
        .spans()
        .iter()
        .filter(|s| resources.contains(&s.resource.as_str()))
        .map(|s| (s.start.max(start), s.end.min(end)))
        .filter(|(a, b)| b > a)
        .collect();
    ivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut covered = 0.0;
    let mut cursor = start;
    for (a, b) in ivals {
        let a = a.max(cursor);
        if b > a {
            covered += b - a;
            cursor = b;
        }
    }
    (covered / (end - start)).min(1.0)
}

fn window_utilization(
    scn: &IterationScenario,
    start: f64,
    end: f64,
) -> ResourceUtilization {
    if end <= start {
        return ResourceUtilization::default();
    }
    let tl = scn.timeline();
    ResourceUtilization {
        gpu: union_busy(&tl, &["gpu"], start, end),
        // NVML reports the GPU busy while its copy engines move data (§5.4
        // notes this explicitly), so the Figure 15 view is the union of
        // compute and both PCIe directions.
        gpu_nvml: union_busy(&tl, &["gpu", "pcie.h2d", "pcie.d2h"], start, end),
        cpu: union_busy(&tl, &["cpu"], start, end),
        pcie_h2d: union_busy(&tl, &["pcie.h2d"], start, end),
        pcie_d2h: union_busy(&tl, &["pcie.d2h"], start, end),
    }
}

/// Simulates one training iteration under the given update scheduler.
///
/// # Errors
///
/// Propagates engine errors; out-of-memory is reported in the result's
/// `oom` field rather than as an error so sweeps (Figure 13) can chart it.
pub fn simulate_iteration(
    cfg: &TrainConfig,
    sched: &dyn UpdateScheduler,
) -> Result<IterationReport, SimError> {
    simulate_iteration_for(cfg, sched, 0)
}

/// Like [`simulate_iteration`], additionally replaying the engine's full
/// schedule into `tracer` on the simulated clock — one track per engine
/// stream — before the scenario is consumed, and publishing explicit
/// phase-boundary instants (`phase-begin:`/`phase-end:` on the
/// [`dos_telemetry::PHASE_TRACK`] track) at the collective join points, so
/// `analyze_tracer` segments interleaved phases correctly. The returned
/// report is identical to the untraced run (tracing only observes).
///
/// # Errors
///
/// Propagates engine errors, exactly as [`simulate_iteration`].
pub fn simulate_iteration_traced(
    cfg: &TrainConfig,
    sched: &dyn UpdateScheduler,
    tracer: &dos_telemetry::Tracer,
) -> Result<IterationReport, SimError> {
    simulate_iteration_faulted(cfg, sched, None, tracer)
}

/// Like [`simulate_iteration_traced`], additionally installing a
/// [`dos_hal::FaultPlan`] on the rank's engine before any op is submitted:
/// transfers hit degradation windows and failure/retry rules, injected
/// fault occurrences replay into `tracer` as `fault:` instants on the
/// `faults` track, and exhausted retries surface as
/// [`SimError::TransferFault`]. `faults: None` is exactly the traced run.
///
/// # Errors
///
/// Propagates engine errors, including [`SimError::TransferFault`] when a
/// transfer exhausts its retry budget. The fault events recorded up to the
/// failure are lost with the scenario in that case; campaigns that need
/// them should widen the retry budget instead.
pub fn simulate_iteration_faulted(
    cfg: &TrainConfig,
    sched: &dyn UpdateScheduler,
    faults: Option<&dos_hal::FaultPlan>,
    tracer: &dos_telemetry::Tracer,
) -> Result<IterationReport, SimError> {
    let mut scn = IterationScenario::new_for_rank(cfg.clone(), 0);
    if let Some(plan) = faults {
        scn.rank.sim.install_fault_plan(plan.clone());
    }
    let fwd = scn.run_forward(None)?;
    let mut bwd = scn.run_backward(fwd)?;
    for _ in 1..cfg.grad_accumulation.max(1) {
        let f = scn.run_forward(Some(bwd))?;
        bwd = scn.run_backward(f)?;
    }
    let upd = sched.schedule_update(&mut scn, bwd)?;
    scn.record_into(tracer);
    let t_fwd = scn.rank.sim.finish_time(fwd).as_secs();
    let t_bwd = scn.rank.sim.finish_time(bwd).as_secs();
    let t_upd = scn.rank.sim.finish_time(upd).as_secs();
    tracer.phase_boundary("forward", 0.0, t_fwd);
    tracer.phase_boundary("backward", t_fwd, t_bwd);
    tracer.phase_boundary("update", t_bwd, t_upd);
    finalize_report(cfg, sched, scn, fwd, bwd, upd)
}

fn finalize_report(
    cfg: &TrainConfig,
    sched: &dyn UpdateScheduler,
    scn: IterationScenario,
    fwd: OpId,
    bwd: OpId,
    upd: OpId,
) -> Result<IterationReport, SimError> {
    let t_fwd = scn.rank.sim.finish_time(fwd).as_secs();
    let t_bwd = scn.rank.sim.finish_time(bwd).as_secs();
    let t_upd = scn.rank.sim.finish_time(upd).as_secs();
    let makespan = scn.rank.sim.makespan().as_secs();

    let model_flops = 3.0 * cfg.spec.forward_flops(cfg.micro_batch) * cfg.grad_accumulation as f64;
    let params_per_rank = cfg.params_per_rank() as f64;
    let update_secs = t_upd - t_bwd;

    Ok(IterationReport {
        scheduler: sched.name().to_string(),
        model: cfg.spec.name.clone(),
        forward_secs: t_fwd,
        backward_secs: t_bwd - t_fwd,
        update_secs,
        total_secs: t_upd,
        spill_secs: (makespan - t_upd).max(0.0),
        tflops_per_gpu: model_flops / t_upd / 1e12,
        update_pps_per_rank: if update_secs > 0.0 { params_per_rank / update_secs } else { 0.0 },
        gpu_peak_bytes: scn.rank.hbm.peak_usage(),
        oom: scn.rank.hbm.validate().err().map(|e| e.to_string()),
        host_oom: scn.rank.dram.validate().err().map(|e| e.to_string()),
        update_utilization: window_utilization(&scn, t_bwd, t_upd),
        timeline: scn.timeline(),
    })
}

/// Simulates `iterations` back-to-back iterations in one engine, so that
/// trailing asynchronous optimizer movement from iteration *i* competes with
/// iteration *i+1* (the effect Figure 9 checks for).
///
/// # Errors
///
/// Propagates engine errors.
pub fn simulate_training(
    cfg: &TrainConfig,
    sched: &dyn UpdateScheduler,
    iterations: usize,
) -> Result<TrainingReport, SimError> {
    simulate_training_timeline(cfg, sched, iterations).map(|(report, _)| report)
}

/// Like [`simulate_training`], additionally returning the shared engine's
/// full multi-iteration [`dos_telemetry::Timeline`]. The timeline is what
/// lets the analyzer check *cross-iteration* overlap — e.g. that a
/// stall-free scheduler's `update`-phase CPU spans run concurrently with
/// the next iteration's `forward`/`backward` GPU spans
/// ([`dos_telemetry::cross_phase_overlap_secs`]).
///
/// # Errors
///
/// Propagates engine errors.
pub fn simulate_training_timeline(
    cfg: &TrainConfig,
    sched: &dyn UpdateScheduler,
    iterations: usize,
) -> Result<(TrainingReport, dos_telemetry::Timeline), SimError> {
    let mut scn = IterationScenario::new(cfg.clone());
    let mut prev_update: Option<OpId> = None;
    let mut ends = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let fwd = scn.run_forward(prev_update)?;
        let mut bwd = scn.run_backward(fwd)?;
        for _ in 1..cfg.grad_accumulation.max(1) {
            let f = scn.run_forward(Some(bwd))?;
            bwd = scn.run_backward(f)?;
        }
        let upd = sched.schedule_update(&mut scn, bwd)?;
        prev_update = Some(upd);
        ends.push(scn.rank.sim.finish_time(upd).as_secs());
    }
    let total = scn.rank.sim.makespan().as_secs();
    let report = TrainingReport {
        scheduler: sched.name().to_string(),
        model: cfg.spec.name.clone(),
        iterations,
        total_secs: total,
        avg_iteration_secs: ends.last().copied().unwrap_or(0.0) / iterations.max(1) as f64,
        iteration_ends: ends,
        oom: scn.rank.hbm.validate().err().map(|e| e.to_string()),
    };
    Ok((report, scn.timeline()))
}

/// One iteration's plan, produced by an [`IterationController`] before the
/// iteration is submitted to the engine.
pub struct ControlledIteration {
    /// The update scheduler to run this iteration under.
    pub scheduler: Box<dyn UpdateScheduler>,
    /// Optional per-iteration override of the offload configuration (the
    /// control plane resizes the GPU-resident tail against observed
    /// `MemoryPool` headroom).
    pub offload: Option<dos_zero::OffloadConfig>,
    /// Optional fault plan to install on the iteration's engine (pinned
    /// degradation windows expressed per iteration).
    pub faults: Option<dos_hal::FaultPlan>,
}

/// The feedback hook `dos-control` implements: called around every
/// iteration of [`simulate_training_controlled`], it closes the loop
/// between observed update-phase timings and the next iteration's
/// schedule (stride, resident set, degradation-ladder rung).
pub trait IterationController {
    /// Plans iteration `iteration` (0-based) given the run configuration.
    fn plan_iteration(&mut self, iteration: usize, cfg: &TrainConfig) -> ControlledIteration;

    /// Observes the finished iteration's report (timeline included), so
    /// estimators can update before the next [`Self::plan_iteration`].
    fn observe_iteration(&mut self, iteration: usize, report: &IterationReport);
}

/// Runs `iterations` iterations, each planned by `controller` and simulated
/// on a fresh engine (so per-iteration fault plans and offload overrides
/// apply cleanly; trailing flushes are contained within their iteration,
/// unlike [`simulate_training`]'s shared engine).
///
/// If `trace` is given as `(tracer, index)`, iteration `index`'s full
/// engine schedule (fault instants included) and phase boundaries are
/// replayed into the tracer — the controller can add its own `control:*`
/// instants on top.
///
/// # Errors
///
/// Propagates engine errors from any iteration.
pub fn simulate_training_controlled(
    cfg: &TrainConfig,
    controller: &mut dyn IterationController,
    iterations: usize,
    trace: Option<(&dos_telemetry::Tracer, usize)>,
) -> Result<Vec<IterationReport>, SimError> {
    let mut reports = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let plan = controller.plan_iteration(i, cfg);
        let mut it_cfg = cfg.clone();
        if let Some(offload) = plan.offload {
            it_cfg.offload = offload;
        }
        let mut scn = IterationScenario::new_for_rank(it_cfg.clone(), 0);
        if let Some(faults) = &plan.faults {
            scn.rank.sim.install_fault_plan(faults.clone());
        }
        let fwd = scn.run_forward(None)?;
        let mut bwd = scn.run_backward(fwd)?;
        for _ in 1..it_cfg.grad_accumulation.max(1) {
            let f = scn.run_forward(Some(bwd))?;
            bwd = scn.run_backward(f)?;
        }
        let upd = plan.scheduler.schedule_update(&mut scn, bwd)?;
        if let Some((tracer, index)) = trace {
            if index == i {
                scn.record_into(tracer);
                let t_fwd = scn.rank.sim.finish_time(fwd).as_secs();
                let t_bwd = scn.rank.sim.finish_time(bwd).as_secs();
                let t_upd = scn.rank.sim.finish_time(upd).as_secs();
                tracer.phase_boundary("forward", 0.0, t_fwd);
                tracer.phase_boundary("backward", t_fwd, t_bwd);
                tracer.phase_boundary("update", t_bwd, t_upd);
            }
        }
        let report = finalize_report(&it_cfg, plan.scheduler.as_ref(), scn, fwd, bwd, upd)?;
        controller.observe_iteration(i, &report);
        reports.push(report);
    }
    Ok(reports)
}

/// When and how to checkpoint during a simulated run.
///
/// Offloaded optimizer state accelerates checkpointing because the large
/// host-resident tensors can be flushed to persistent storage without
/// blocking the GPUs (§2, "Hybrid CPU-GPU Optimizer Offloading").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint after every `every`-th iteration.
    pub every: usize,
    /// Write asynchronously (overlapping subsequent iterations) instead of
    /// stalling training until the NVMe write completes.
    pub asynchronous: bool,
}

/// Simulates a run that checkpoints model + optimizer state to NVMe.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `policy.every` is zero.
pub fn simulate_training_with_checkpoints(
    cfg: &TrainConfig,
    sched: &dyn UpdateScheduler,
    iterations: usize,
    policy: CheckpointPolicy,
) -> Result<TrainingReport, SimError> {
    assert!(policy.every > 0, "checkpoint interval must be positive");
    let mut scn = IterationScenario::new(cfg.clone());
    // Checkpoints drain host memory to NVMe on their own stream; they never
    // touch the GPU or its PCIe link (the offloading advantage of §2).
    let ckpt_stream = scn.rank.sim.add_stream("checkpoint");
    // Per-rank checkpoint payload: FP32 optimizer state + FP16 model shard.
    let per_rank = cfg.params_per_rank() as f64;
    let ckpt_bytes = 12.0 * per_rank + 2.0 * per_rank;
    let nvme_secs = ckpt_bytes / cfg.profile.nvme_write_bw;

    let mut prev_update: Option<OpId> = None;
    let mut ends = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let fwd = scn.run_forward(prev_update)?;
        let mut bwd = scn.run_backward(fwd)?;
        for _ in 1..cfg.grad_accumulation.max(1) {
            let f = scn.run_forward(Some(bwd))?;
            bwd = scn.run_backward(f)?;
        }
        let upd = sched.schedule_update(&mut scn, bwd)?;
        let mut boundary = upd;
        if (i + 1) % policy.every == 0 {
            let ckpt = scn.rank.sim.submit(
                dos_hal::OpSpec::occupy(
                    scn.rank.res.nvme,
                    dos_hal::SimTime::from_secs(nvme_secs),
                    ckpt_bytes,
                )
                .on(ckpt_stream)
                .after(upd)
                .label(format!("checkpoint:{i}"))
                .phase("checkpoint"),
            )?;
            if !policy.asynchronous {
                boundary = ckpt;
            }
        }
        prev_update = Some(boundary);
        ends.push(scn.rank.sim.finish_time(boundary).as_secs());
    }
    let total = scn.rank.sim.makespan().as_secs();
    Ok(TrainingReport {
        scheduler: sched.name().to_string(),
        model: cfg.spec.name.clone(),
        iterations,
        total_secs: total,
        avg_iteration_secs: ends.last().copied().unwrap_or(0.0) / iterations.max(1) as f64,
        iteration_ends: ends,
        oom: scn.rank.hbm.validate().err().map(|e| e.to_string()),
    })
}

/// Simulates every data-parallel rank and returns the slowest one's report
/// — §5.4: the blocking collectives at phase boundaries mean "the slowest
/// process in the group dictates the iteration time" (shards differ by up
/// to one subgroup under uneven partitioning).
///
/// # Errors
///
/// Propagates engine errors.
pub fn simulate_iteration_slowest(
    cfg: &TrainConfig,
    sched: &dyn UpdateScheduler,
) -> Result<IterationReport, SimError> {
    let mut slowest: Option<IterationReport> = None;
    for rank in 0..cfg.world {
        let report = simulate_iteration_for(cfg, sched, rank)?;
        if slowest.as_ref().is_none_or(|r| report.total_secs > r.total_secs) {
            slowest = Some(report);
        }
    }
    Ok(slowest.expect("world >= 1"))
}

fn simulate_iteration_for(
    cfg: &TrainConfig,
    sched: &dyn UpdateScheduler,
    rank: usize,
) -> Result<IterationReport, SimError> {
    let mut scn = IterationScenario::new_for_rank(cfg.clone(), rank);
    let fwd = scn.run_forward(None)?;
    let mut bwd = scn.run_backward(fwd)?;
    for _ in 1..cfg.grad_accumulation.max(1) {
        let f = scn.run_forward(Some(bwd))?;
        bwd = scn.run_backward(f)?;
    }
    let upd = sched.schedule_update(&mut scn, bwd)?;
    finalize_report(cfg, sched, scn, fwd, bwd, upd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_hal::HardwareProfile;
    use dos_nn::ModelSpec;

    /// A trivial scheduler: update every subgroup on the CPU sequentially,
    /// then H2D the downscaled parameters (used only to exercise the
    /// runner; the real schedulers live in `dos-core`).
    struct NaiveCpu;

    impl UpdateScheduler for NaiveCpu {
        fn name(&self) -> &str {
            "naive-cpu"
        }

        fn schedule_update(
            &self,
            scn: &mut IterationScenario,
            grads_ready: OpId,
        ) -> Result<OpId, SimError> {
            let sgs = scn.subgroups().to_vec();
            let mut last = grads_ready;
            for sg in &sgs {
                let u = scn.cpu_update(sg, &[last])?;
                let d = scn.cpu_downscale(sg, &[u])?;
                last = scn.h2d_updated_params(sg, &[d])?;
            }
            Ok(last)
        }
    }

    #[test]
    fn single_iteration_report_is_consistent() {
        let cfg = TrainConfig::baseline(
            ModelSpec::by_name("7B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        let r = simulate_iteration(&cfg, &NaiveCpu).unwrap();
        assert!(r.forward_secs > 0.0);
        assert!(r.backward_secs > 0.0);
        assert!(r.update_secs > 0.0);
        let sum = r.forward_secs + r.backward_secs + r.update_secs;
        assert!((sum - r.total_secs).abs() < 1e-9, "breakdown {sum} != total {}", r.total_secs);
        assert!(r.tflops_per_gpu > 1.0 && r.tflops_per_gpu < 1000.0);
        assert!(r.oom.is_none());
        assert!(r.update_utilization.cpu > 0.5, "{:?}", r.update_utilization);
    }

    #[test]
    fn traced_iteration_matches_untraced_and_validates() {
        let cfg = TrainConfig::baseline(
            ModelSpec::by_name("7B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        let plain = simulate_iteration(&cfg, &NaiveCpu).unwrap();
        let tracer = dos_telemetry::Tracer::new();
        let traced = simulate_iteration_traced(&cfg, &NaiveCpu, &tracer).unwrap();
        // Tracing only observes: the report is unchanged.
        assert_eq!(traced.total_secs, plain.total_secs);
        assert_eq!(traced.timeline, plain.timeline);
        // Every resource-backed interval became a tracer span; the tracer's
        // timeline view carries the same busy time per resource.
        assert!(!tracer.is_empty());
        let tl = tracer.to_timeline();
        for res in ["gpu", "cpu", "pcie.h2d"] {
            assert!(
                (tl.busy_time(res) - plain.timeline.busy_time(res)).abs() < 1e-9,
                "busy time diverged on {res}"
            );
        }
        // The analyzer's invariants hold on a real simulated schedule.
        let analysis = dos_telemetry::analyze(&plain.timeline);
        assert!(analysis.validate().is_empty(), "{:?}", analysis.validate());
        let phases: Vec<&str> = analysis.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(phases, ["forward", "backward", "update"]);
    }

    #[test]
    fn update_time_matches_model_for_naive_cpu() {
        let cfg = TrainConfig::baseline(
            ModelSpec::by_name("20B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        let r = simulate_iteration(&cfg, &NaiveCpu).unwrap();
        // Sequential CPU: P/N * (1/Uc + 1/Dc + 1/(2B)).
        let p = cfg.params_per_rank() as f64;
        let prof = &cfg.profile;
        let expected = p
            * (1.0 / prof.cpu_update_pps()
                + 1.0 / prof.cpu_downscale_pps()
                + 1.0 / (2.0 * prof.update_b_pps));
        assert!(
            (r.update_secs - expected).abs() / expected < 0.02,
            "update {} vs model {expected}",
            r.update_secs
        );
    }

    #[test]
    fn multi_iteration_run_is_stable() {
        let cfg = TrainConfig::baseline(
            ModelSpec::by_name("7B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        let r = simulate_training(&cfg, &NaiveCpu, 5).unwrap();
        assert_eq!(r.iterations, 5);
        assert_eq!(r.iteration_ends.len(), 5);
        assert!(r.is_stable(1, 0.05), "durations {:?}", r.iteration_durations());
        assert!(r.total_secs >= *r.iteration_ends.last().unwrap());
    }

    #[test]
    fn larger_models_take_longer() {
        let profiles = HardwareProfile::jlse_h100();
        let small = simulate_iteration(
            &TrainConfig::baseline(ModelSpec::by_name("7B").unwrap(), profiles.clone()),
            &NaiveCpu,
        )
        .unwrap();
        let large = simulate_iteration(
            &TrainConfig::baseline(ModelSpec::by_name("20B").unwrap(), profiles),
            &NaiveCpu,
        )
        .unwrap();
        assert!(large.total_secs > 2.0 * small.total_secs);
    }
}

#[cfg(test)]
mod fault_injection_tests {
    use super::*;
    use dos_hal::{FaultPlan, HardwareProfile, SimTime};
    use dos_nn::ModelSpec;

    struct NaiveCpu;
    impl UpdateScheduler for NaiveCpu {
        fn name(&self) -> &str {
            "naive-cpu"
        }
        fn schedule_update(
            &self,
            scn: &mut IterationScenario,
            grads_ready: OpId,
        ) -> Result<OpId, SimError> {
            let sgs = scn.subgroups().to_vec();
            let mut last = grads_ready;
            for sg in &sgs {
                let u = scn.cpu_update(sg, &[last])?;
                let d = scn.cpu_downscale(sg, &[u])?;
                last = scn.h2d_updated_params(sg, &[d])?;
            }
            Ok(last)
        }
    }

    fn cfg() -> TrainConfig {
        TrainConfig::baseline(ModelSpec::by_name("7B").unwrap(), HardwareProfile::jlse_h100())
    }

    #[test]
    fn no_faults_matches_traced_run_exactly() {
        let tracer = dos_telemetry::Tracer::new();
        let traced = simulate_iteration_traced(&cfg(), &NaiveCpu, &tracer).unwrap();
        let t2 = dos_telemetry::Tracer::new();
        let faulted = simulate_iteration_faulted(&cfg(), &NaiveCpu, None, &t2).unwrap();
        assert_eq!(faulted.total_secs, traced.total_secs);
        assert_eq!(faulted.timeline, traced.timeline);
    }

    #[test]
    fn traced_run_emits_phase_boundaries_for_the_analyzer() {
        let tracer = dos_telemetry::Tracer::new();
        let r = simulate_iteration_traced(&cfg(), &NaiveCpu, &tracer).unwrap();
        let bounds = tracer.phase_boundaries();
        let names: Vec<&str> = bounds.iter().map(|b| b.phase.as_str()).collect();
        assert_eq!(names, ["forward", "backward", "update"]);
        assert_eq!(bounds[0].start, 0.0);
        assert!((bounds[2].end - r.total_secs).abs() < 1e-9);
        // Windows chain: each phase begins where the previous one ends.
        assert_eq!(bounds[0].end, bounds[1].start);
        assert_eq!(bounds[1].end, bounds[2].start);
        let a = dos_telemetry::analyze_tracer(&tracer);
        assert!(a.validate().is_empty(), "{:?}", a.validate());
        let phases: Vec<&str> = a.phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(phases, ["forward", "backward", "update"]);
    }

    #[test]
    fn degradation_window_during_update_stretches_the_phase() {
        let baseline = simulate_iteration(&cfg(), &NaiveCpu).unwrap();
        // Quarter-speed H2D over the whole update phase.
        let plan = FaultPlan::seeded(7).degrade(
            "pcie.h2d",
            SimTime::from_secs(baseline.backward_secs + baseline.forward_secs),
            SimTime::from_secs(baseline.total_secs * 10.0),
            0.25,
        );
        let tracer = dos_telemetry::Tracer::new();
        let degraded =
            simulate_iteration_faulted(&cfg(), &NaiveCpu, Some(&plan), &tracer).unwrap();
        assert!(
            degraded.update_secs > baseline.update_secs * 1.5,
            "update {} should stretch past {} under 4x slower H2D",
            degraded.update_secs,
            baseline.update_secs
        );
        // Forward/backward (outside the window) are untouched.
        assert!((degraded.forward_secs - baseline.forward_secs).abs() < 1e-9);
    }

    #[test]
    fn transfer_failures_surface_as_fault_instants_in_the_trace() {
        let plan = FaultPlan::seeded(3).fail_nth("pcie.h2d", 0, 2);
        let tracer = dos_telemetry::Tracer::new();
        let clean = simulate_iteration(&cfg(), &NaiveCpu).unwrap();
        let faulted =
            simulate_iteration_faulted(&cfg(), &NaiveCpu, Some(&plan), &tracer).unwrap();
        assert!(faulted.total_secs >= clean.total_secs, "retries cannot speed things up");
        let fault_instants: Vec<_> = tracer
            .events()
            .into_iter()
            .filter(|e| {
                e.kind == dos_telemetry::EventKind::Instant && e.name.starts_with("fault:")
            })
            .collect();
        assert_eq!(fault_instants.len(), 2, "two failed attempts recorded");
        assert!(fault_instants.iter().all(|e| e.track == "faults"));
        assert!(fault_instants.iter().all(|e| e.name.contains("pcie.h2d")));
    }
}

#[cfg(test)]
mod grad_accumulation_tests {
    use super::*;
    use crate::config::GradientPath;
    use dos_hal::HardwareProfile;
    use dos_nn::ModelSpec;
    use dos_zero::ZeroStage;

    struct NoUpdate;
    impl UpdateScheduler for NoUpdate {
        fn name(&self) -> &str {
            "no-update"
        }
        fn schedule_update(
            &self,
            scn: &mut IterationScenario,
            grads_ready: OpId,
        ) -> Result<OpId, SimError> {
            let streams = scn.rank.streams;
            scn.rank.sim.join(streams.compute, [grads_ready])
        }
    }

    fn cfg(ga: usize) -> TrainConfig {
        let mut cfg = TrainConfig::baseline(
            ModelSpec::by_name("7B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        cfg.grad_accumulation = ga;
        cfg.stage = ZeroStage::Three;
        cfg.gradient_path = GradientPath::Fp32OnGpu;
        cfg.overlap_backward = true;
        cfg
    }

    #[test]
    fn accumulation_multiplies_compute_phases() {
        let one = simulate_iteration(&cfg(1), &NoUpdate).unwrap();
        let four = simulate_iteration(&cfg(4), &NoUpdate).unwrap();
        let ratio = four.total_secs / one.total_secs;
        assert!(
            (3.5..4.6).contains(&ratio),
            "4 micro-steps should cost ~4x the compute: {ratio:.2}"
        );
        // TFLOPs stay comparable: 4x the FLOPs in ~4x the time.
        assert!((four.tflops_per_gpu / one.tflops_per_gpu - 1.0).abs() < 0.2);
    }

    #[test]
    fn accumulation_generates_h2d_traffic_in_backward() {
        let r = simulate_iteration(&cfg(2), &NoUpdate).unwrap();
        let accum_spans = r
            .timeline
            .spans()
            .iter()
            .filter(|s| s.label.starts_with("h2d-accum-grads"))
            .count();
        // Second micro-step fetches the running sum for every layer (§3's
        // observed H2D traffic during backward).
        assert_eq!(accum_spans, 32, "one fetch per layer in micro-step 2");
        let first_step = simulate_iteration(&cfg(1), &NoUpdate).unwrap();
        assert!(first_step
            .timeline
            .spans()
            .iter()
            .all(|s| !s.label.starts_with("h2d-accum-grads")));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use dos_hal::HardwareProfile;
    use dos_nn::ModelSpec;

    struct NaiveCpu2;
    impl UpdateScheduler for NaiveCpu2 {
        fn name(&self) -> &str {
            "naive-cpu"
        }
        fn schedule_update(
            &self,
            scn: &mut IterationScenario,
            grads_ready: OpId,
        ) -> Result<OpId, SimError> {
            let sgs = scn.subgroups().to_vec();
            let mut last = grads_ready;
            for sg in &sgs {
                let u = scn.cpu_update(sg, &[last])?;
                let d = scn.cpu_downscale(sg, &[u])?;
                last = scn.h2d_updated_params(sg, &[d])?;
            }
            Ok(last)
        }
    }

    fn cfg() -> TrainConfig {
        TrainConfig::baseline(ModelSpec::by_name("7B").unwrap(), HardwareProfile::jlse_h100())
    }

    #[test]
    fn async_checkpointing_is_cheaper_than_blocking() {
        // Interval chosen so the NVMe write (≈6 s for 7B's per-rank state)
        // fits inside the training time between checkpoints (≈9 s).
        let policy_block = CheckpointPolicy { every: 3, asynchronous: false };
        let policy_async = CheckpointPolicy { every: 3, asynchronous: true };
        let plain = simulate_training(&cfg(), &NaiveCpu2, 6).unwrap();
        let blocking =
            simulate_training_with_checkpoints(&cfg(), &NaiveCpu2, 6, policy_block).unwrap();
        let asynchronous =
            simulate_training_with_checkpoints(&cfg(), &NaiveCpu2, 6, policy_async).unwrap();
        let end = |r: &TrainingReport| *r.iteration_ends.last().unwrap();
        assert!(end(&blocking) > end(&plain) * 1.1, "blocking checkpoints cost time");
        assert!(
            end(&asynchronous) < end(&blocking),
            "async {:.2}s !< blocking {:.2}s",
            end(&asynchronous),
            end(&blocking)
        );
        // The training-critical path barely notices asynchronous writes;
        // the trailing write only shows up in the final makespan.
        assert!(end(&asynchronous) < end(&plain) * 1.05);
        assert!(asynchronous.total_secs >= end(&asynchronous));
    }

    #[test]
    fn checkpoint_spans_are_recorded() {
        let policy = CheckpointPolicy { every: 3, asynchronous: true };
        let r = simulate_training_with_checkpoints(&cfg(), &NaiveCpu2, 6, policy).unwrap();
        assert_eq!(r.iterations, 6);
        // Two checkpoints (after iterations 3 and 6).
        assert!(r.total_secs > 0.0);
    }

    #[test]
    fn slowest_rank_dominates() {
        let slowest = simulate_iteration_slowest(&cfg(), &NaiveCpu2).unwrap();
        let rank0 = simulate_iteration(&cfg(), &NaiveCpu2).unwrap();
        // Rank 0 holds the largest shard under uneven partitioning, so the
        // slowest rank is rank 0 (within float noise).
        assert!(slowest.total_secs >= rank0.total_secs - 1e-9);
        assert!((slowest.total_secs - rank0.total_secs) / rank0.total_secs < 0.02);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_checkpoint_interval_rejected() {
        let policy = CheckpointPolicy { every: 0, asynchronous: false };
        let _ = simulate_training_with_checkpoints(&cfg(), &NaiveCpu2, 2, policy);
    }
}
