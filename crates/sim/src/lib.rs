//! # dos-sim — training-iteration simulator
//!
//! Simulates whole training iterations of the *Deep Optimizer States*
//! evaluation on the calibrated hardware of `dos-hal`:
//!
//! * [`TrainConfig`] — model (Table 2 zoo), machine profile, ZeRO stage,
//!   micro-batching, offload configuration, and gradient path (Figure 6's
//!   legacy FP16 flush vs. the paper's FP32-on-GPU conversion);
//! * [`IterationScenario`] — submits the forward pass (ZeRO-3 all-gathers +
//!   GEMMs + activation tracking) and backward pass (recompute, backward
//!   GEMMs, reduce-scatter, gradient flush) and exposes the update-phase
//!   primitives (CPU/GPU subgroup updates, downscale, prefetch/flush over
//!   dedicated streams) that `dos-core`'s schedulers compose;
//! * [`UpdateScheduler`] + [`simulate_iteration`]/[`simulate_training`] —
//!   the drivers producing [`IterationReport`]s with phase breakdowns,
//!   achieved TFLOP/s, update throughput, memory peaks/OOM, and utilization
//!   timelines — the raw material of Figures 2–4 and 7–17.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod report;
mod scenario;
mod runner;

pub use config::{GradientPath, TrainConfig};
pub use report::{IterationReport, ResourceUtilization, TrainingReport};
pub use runner::{
    simulate_iteration, simulate_iteration_faulted, simulate_iteration_slowest,
    simulate_iteration_traced, simulate_training, simulate_training_controlled,
    simulate_training_timeline, simulate_training_with_checkpoints, CheckpointPolicy,
    ControlledIteration, IterationController, UpdateScheduler,
};
pub use scenario::{FlushHandles, IterationScenario};
