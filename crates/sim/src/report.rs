//! Simulation results.

use serde::{Deserialize, Serialize};

use dos_telemetry::Timeline;

/// Busy fractions of the node's resources over a time window (the paper's
/// Figure 15 ablation view).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceUtilization {
    /// GPU execution units (compute kernels only).
    pub gpu: f64,
    /// GPU as NVML reports it: compute kernels *or* copy engines active
    /// (§5.4 notes NVML counts DMA transfers as GPU activity).
    pub gpu_nvml: f64,
    /// CPU cores.
    pub cpu: f64,
    /// PCIe host-to-device direction.
    pub pcie_h2d: f64,
    /// PCIe device-to-host direction.
    pub pcie_d2h: f64,
}

/// The outcome of one simulated training iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationReport {
    /// Update-scheduler name (e.g. `"zero3-offload"`).
    pub scheduler: String,
    /// Model name (Table 2 key).
    pub model: String,
    /// Forward-phase seconds.
    pub forward_secs: f64,
    /// Backward-phase seconds (including gradient flushes).
    pub backward_secs: f64,
    /// Update-phase seconds (until the next iteration may start).
    pub update_secs: f64,
    /// End-to-end iteration seconds (forward + backward + update).
    pub total_secs: f64,
    /// Extra seconds of trailing asynchronous transfers that spill past the
    /// update phase into the next iteration (Figure 5's dotted line).
    pub spill_secs: f64,
    /// Achieved model TFLOP/s per GPU (forward + backward model FLOPs,
    /// excluding recomputation, over the iteration time).
    pub tflops_per_gpu: f64,
    /// Update throughput in parameters/second *per rank* (this rank's shard
    /// over the update time). Multiply by the world size for the aggregate
    /// number plotted in Figure 8.
    pub update_pps_per_rank: f64,
    /// Peak GPU bytes observed.
    pub gpu_peak_bytes: u64,
    /// Out-of-memory diagnostic, if the configuration overflows HBM.
    pub oom: Option<String>,
    /// Out-of-memory diagnostic for the host DRAM tier (e.g., a 33B model's
    /// optimizer state without NVMe offloading).
    pub host_oom: Option<String>,
    /// Resource busy fractions during the update phase.
    pub update_utilization: ResourceUtilization,
    /// The full span timeline (for Gantt/figure rendering).
    pub timeline: Timeline,
}

impl IterationReport {
    /// Aggregate update throughput across `world` ranks, parameters/second.
    pub fn update_pps_aggregate(&self, world: usize) -> f64 {
        self.update_pps_per_rank * world as f64
    }
}

/// The outcome of a multi-iteration simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Update-scheduler name.
    pub scheduler: String,
    /// Model name.
    pub model: String,
    /// Number of iterations simulated.
    pub iterations: usize,
    /// End-to-end seconds (including trailing spill).
    pub total_secs: f64,
    /// Mean seconds per iteration.
    pub avg_iteration_secs: f64,
    /// Per-iteration end times, seconds from run start.
    pub iteration_ends: Vec<f64>,
    /// Out-of-memory diagnostic, if any.
    pub oom: Option<String>,
}

impl TrainingReport {
    /// Per-iteration durations.
    pub fn iteration_durations(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.iteration_ends.len());
        let mut prev = 0.0;
        for &e in &self.iteration_ends {
            out.push(e - prev);
            prev = e;
        }
        out
    }

    /// Whether iteration times stay stable (no gradual I/O stall build-up) —
    /// the property Figure 9 verifies: the max iteration is within `tol` of
    /// the mean, ignoring the first `warmup` iterations.
    pub fn is_stable(&self, warmup: usize, tol: f64) -> bool {
        let durs = self.iteration_durations();
        if durs.len() <= warmup + 1 {
            return true;
        }
        let steady = &durs[warmup..];
        let mean = steady.iter().sum::<f64>() / steady.len() as f64;
        steady.iter().all(|d| (d - mean).abs() <= tol * mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_durations_difference_ends() {
        let r = TrainingReport {
            scheduler: "x".into(),
            model: "7B".into(),
            iterations: 3,
            total_secs: 6.5,
            avg_iteration_secs: 2.0,
            iteration_ends: vec![2.0, 4.0, 6.0],
            oom: None,
        };
        assert_eq!(r.iteration_durations(), vec![2.0, 2.0, 2.0]);
        assert!(r.is_stable(1, 0.05));
    }

    #[test]
    fn instability_is_detected() {
        let r = TrainingReport {
            scheduler: "x".into(),
            model: "7B".into(),
            iterations: 4,
            total_secs: 14.0,
            avg_iteration_secs: 3.5,
            iteration_ends: vec![2.0, 4.0, 8.0, 14.0],
            oom: None,
        };
        assert!(!r.is_stable(1, 0.2));
    }

    #[test]
    fn aggregate_update_throughput() {
        let r = IterationReport {
            scheduler: "x".into(),
            model: "7B".into(),
            forward_secs: 1.0,
            backward_secs: 2.0,
            update_secs: 1.0,
            total_secs: 4.0,
            spill_secs: 0.0,
            tflops_per_gpu: 50.0,
            update_pps_per_rank: 2e9,
            gpu_peak_bytes: 0,
            oom: None,
            host_oom: None,
            update_utilization: ResourceUtilization::default(),
            timeline: Timeline::new(),
        };
        assert_eq!(r.update_pps_aggregate(4), 8e9);
    }
}
