//! Simulation configuration.

use serde::{Deserialize, Serialize};

use dos_hal::HardwareProfile;
use dos_nn::ModelSpec;
use dos_zero::{OffloadConfig, ZeroStage};

/// How FP16 gradients produced by the backward pass reach the host-resident
/// FP32 gradient buffer (§4.1 "PCIe Transfers with Higher Precision",
/// Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GradientPath {
    /// DeepSpeed's default: allocate an *unpinned* FP16 staging buffer on
    /// the host (~4 GB/s), D2H-copy into it (~10 GB/s unpinned), then
    /// upscale FP16→FP32 on the CPU (62 GB/s) — ~2.5 GB/s end to end, and
    /// blocking with respect to the backward compute stream.
    LegacyFp16Flush,
    /// Deep Optimizer States: chunk-wise FP16→FP32 conversion *on the GPU*
    /// (1.2 TB/s), then DMA the FP32 chunks straight into the pinned host
    /// gradient buffer at full PCIe rate, overlapped with backward compute.
    Fp32OnGpu,
}

/// Complete description of one simulated training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// The model being trained (Table 2 zoo or custom).
    pub spec: ModelSpec,
    /// The machine (calibrated profile).
    pub profile: HardwareProfile,
    /// ZeRO stage (the paper evaluates stage 3).
    pub stage: ZeroStage,
    /// Data-parallel degree. The paper's single-node runs use
    /// `profile.num_gpus`; the weak-scaling sweep (Fig. 17) raises it.
    pub world: usize,
    /// Micro-batch size per GPU (paper default 1, Fig. 13 sweeps it).
    pub micro_batch: usize,
    /// Gradient accumulation steps per iteration (1 unless noted).
    pub grad_accumulation: usize,
    /// Optimizer placement and activation handling.
    pub offload: OffloadConfig,
    /// Gradient flush path (baselines use the legacy path).
    pub gradient_path: GradientPath,
    /// Whether gradient flushes overlap backward compute (Deep Optimizer
    /// States) or block it (baselines) — with the legacy path this is the
    /// 1.9× backward component of the paper's 2.5× speedup.
    pub overlap_backward: bool,
}

impl TrainConfig {
    /// The paper's default configuration for a model on the H100 testbed:
    /// ZeRO-3, DP = 4, micro-batch 1, activation checkpointing, optimizer
    /// fully offloaded, legacy gradient path (i.e., the ZeRO-3 baseline).
    pub fn baseline(spec: ModelSpec, profile: HardwareProfile) -> TrainConfig {
        let world = profile.num_gpus;
        TrainConfig {
            spec,
            profile,
            stage: ZeroStage::Three,
            world,
            micro_batch: 1,
            grad_accumulation: 1,
            offload: OffloadConfig::default(),
            gradient_path: GradientPath::LegacyFp16Flush,
            overlap_backward: false,
        }
    }

    /// The same configuration with Deep Optimizer States' data paths
    /// enabled (FP32-on-GPU gradient flush, overlapped backward). The
    /// update-phase scheduling is chosen separately via the
    /// [`UpdateScheduler`](crate::UpdateScheduler) passed to the runner.
    pub fn deep_optimizer_states(spec: ModelSpec, profile: HardwareProfile) -> TrainConfig {
        TrainConfig {
            gradient_path: GradientPath::Fp32OnGpu,
            overlap_backward: true,
            ..Self::baseline(spec, profile)
        }
    }

    /// Parameters of this rank's optimizer shard.
    pub fn params_per_rank(&self) -> usize {
        (self.spec.param_count() as usize).div_ceil(self.world)
    }

    /// Tokens processed per rank per iteration.
    pub fn tokens_per_rank(&self) -> usize {
        self.micro_batch * self.grad_accumulation * self.spec.seq_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrainConfig {
        TrainConfig::baseline(ModelSpec::by_name("20B").unwrap(), HardwareProfile::jlse_h100())
    }

    #[test]
    fn baseline_matches_paper_defaults() {
        let c = cfg();
        assert_eq!(c.world, 4);
        assert_eq!(c.micro_batch, 1);
        assert!(c.offload.activation_checkpointing);
        assert_eq!(c.offload.gpu_resident_ratio, 0.0);
        assert_eq!(c.offload.subgroup_params, 100_000_000);
        assert_eq!(c.gradient_path, GradientPath::LegacyFp16Flush);
        assert!(!c.overlap_backward);
    }

    #[test]
    fn dos_config_flips_data_paths() {
        let c = TrainConfig::deep_optimizer_states(
            ModelSpec::by_name("20B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        assert_eq!(c.gradient_path, GradientPath::Fp32OnGpu);
        assert!(c.overlap_backward);
    }

    #[test]
    fn per_rank_accounting() {
        let c = cfg();
        assert_eq!(c.params_per_rank(), (c.spec.param_count() as usize).div_ceil(4));
        assert_eq!(c.tokens_per_rank(), 2048);
    }
}
