//! Simulator-wide invariants, swept across models, schedulers cannot be
//! referenced here (they live one layer up), so a local CPU scheduler
//! stands in; `dos-core`'s suites cover the real ones.

use dos_hal::{HardwareProfile, OpId, SimError};
use dos_nn::ModelSpec;
use dos_sim::{simulate_iteration, IterationScenario, TrainConfig, UpdateScheduler};
use proptest::prelude::*;

struct CpuChain;

impl UpdateScheduler for CpuChain {
    fn name(&self) -> &str {
        "cpu-chain"
    }

    fn schedule_update(
        &self,
        scn: &mut IterationScenario,
        grads_ready: OpId,
    ) -> Result<OpId, SimError> {
        let sgs = scn.subgroups().to_vec();
        let mut last = grads_ready;
        for sg in &sgs {
            let u = scn.cpu_update(sg, &[last])?;
            let d = scn.cpu_downscale(sg, &[u])?;
            last = scn.h2d_updated_params(sg, &[d])?;
        }
        Ok(last)
    }
}

fn zoo_model(idx: usize) -> ModelSpec {
    let zoo = ModelSpec::table2_zoo();
    zoo[idx % zoo.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The phase breakdown always sums to the total, utilizations stay in
    /// [0, 1], and throughputs are positive — for any model and micro-batch.
    #[test]
    fn report_consistency(model_idx in 0usize..5, micro_batch in 1usize..4) {
        let mut cfg = TrainConfig::baseline(zoo_model(model_idx), HardwareProfile::jlse_h100());
        cfg.micro_batch = micro_batch;
        let r = simulate_iteration(&cfg, &CpuChain).unwrap();
        let sum = r.forward_secs + r.backward_secs + r.update_secs;
        prop_assert!((sum - r.total_secs).abs() < 1e-6);
        for u in [
            r.update_utilization.gpu,
            r.update_utilization.gpu_nvml,
            r.update_utilization.cpu,
            r.update_utilization.pcie_h2d,
            r.update_utilization.pcie_d2h,
        ] {
            prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
        prop_assert!(r.tflops_per_gpu > 0.0);
        prop_assert!(r.update_pps_per_rank > 0.0);
        prop_assert!(r.spill_secs >= 0.0);
    }

    /// More CPU cores never slow the CPU-bound update chain down.
    #[test]
    fn more_cores_never_hurt(cores in 2usize..48) {
        let base = HardwareProfile::jlse_h100();
        let few = TrainConfig::baseline(zoo_model(0), base.with_cores_per_gpu(cores));
        let many = TrainConfig::baseline(zoo_model(0), base.with_cores_per_gpu(cores + 8));
        let t_few = simulate_iteration(&few, &CpuChain).unwrap().total_secs;
        let t_many = simulate_iteration(&many, &CpuChain).unwrap().total_secs;
        prop_assert!(t_many <= t_few + 1e-9, "{cores}+8 cores took {t_many} vs {t_few}");
    }

    /// Larger micro-batches never make an iteration faster.
    #[test]
    fn bigger_batches_cost_time(mb in 1usize..8) {
        let p = HardwareProfile::jlse_h100();
        let mut small = TrainConfig::baseline(zoo_model(4), p.clone());
        small.micro_batch = mb;
        let mut big = small.clone();
        big.micro_batch = mb + 1;
        let t_small = simulate_iteration(&small, &CpuChain).unwrap().total_secs;
        let t_big = simulate_iteration(&big, &CpuChain).unwrap().total_secs;
        prop_assert!(t_big >= t_small);
    }

    /// The same configuration always produces bit-identical reports
    /// (the engine is fully deterministic).
    #[test]
    fn simulation_is_deterministic(model_idx in 0usize..5) {
        let cfg = TrainConfig::deep_optimizer_states(
            zoo_model(model_idx),
            HardwareProfile::v100_node(),
        );
        let a = simulate_iteration(&cfg, &CpuChain).unwrap();
        let b = simulate_iteration(&cfg, &CpuChain).unwrap();
        prop_assert_eq!(a.total_secs, b.total_secs);
        prop_assert_eq!(a.timeline.spans().len(), b.timeline.spans().len());
    }

    /// Subgroup size never changes the CPU-chain update time by more than
    /// rounding effects (Eq. 1 and Figure 2's independence claim).
    #[test]
    fn subgroup_size_independence(sg_millions in 1usize..20) {
        let p = HardwareProfile::jlse_h100();
        let mut a = TrainConfig::baseline(zoo_model(2), p.clone());
        a.offload.subgroup_params = sg_millions * 50_000_000;
        let mut b = a.clone();
        b.offload.subgroup_params = 100_000_000;
        let ta = simulate_iteration(&a, &CpuChain).unwrap().update_secs;
        let tb = simulate_iteration(&b, &CpuChain).unwrap().update_secs;
        prop_assert!((ta / tb - 1.0).abs() < 0.02, "{ta} vs {tb}");
    }
}
