//! The autotune experiment driver: races the adaptive controller against
//! the paper's static `StridePolicy::Auto` under a pinned, reproducible,
//! iteration-indexed fault plan, and reports both arms side by side.

use crate::controller::{ControlDecision, Controller, ControllerConfig, DecisionKind, LadderRung};
use dos_core::{DeepOptimizerStates, PerfModel, StridePolicy};
use dos_hal::{FaultPlan, SimError, SimTime};
use dos_sim::{
    simulate_training_controlled, ControlledIteration, IterationController, IterationReport,
    TrainConfig,
};
use dos_telemetry::Tracer;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A pinned degradation window expressed in *iterations*: `resource` runs
/// at `scale` times its throughput for every iteration in
/// `[from_iter, until_iter)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationSpec {
    /// Engine resource to degrade (`"pcie.h2d"`, `"pcie.d2h"`, `"cpu"`,
    /// `"gpu"`).
    pub resource: String,
    /// First affected iteration (0-based, inclusive).
    pub from_iter: usize,
    /// First unaffected iteration (exclusive).
    pub until_iter: usize,
    /// Throughput multiplier in (0, 1].
    pub scale: f64,
}

impl DegradationSpec {
    /// Parses the CLI syntax `resource:FROM..UNTIL@SCALE`, e.g.
    /// `pcie.h2d:3..8@0.15`.
    pub fn parse(spec: &str) -> Result<DegradationSpec, String> {
        let err = || format!("bad fault spec {spec:?}: expected resource:FROM..UNTIL@SCALE");
        let (resource, rest) = spec.split_once(':').ok_or_else(err)?;
        let (range, scale) = rest.split_once('@').ok_or_else(err)?;
        let (from, until) = range.split_once("..").ok_or_else(err)?;
        let from_iter: usize = from.trim().parse().map_err(|_| err())?;
        let until_iter: usize = until.trim().parse().map_err(|_| err())?;
        let scale: f64 = scale.trim().parse().map_err(|_| err())?;
        if resource.is_empty() {
            return Err(err());
        }
        if until_iter <= from_iter {
            return Err(format!("bad fault spec {spec:?}: empty iteration range"));
        }
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(format!("bad fault spec {spec:?}: scale must be in (0, 1]"));
        }
        Ok(DegradationSpec { resource: resource.to_string(), from_iter, until_iter, scale })
    }

    /// Whether iteration `i` falls inside the window.
    pub fn covers(&self, i: usize) -> bool {
        (self.from_iter..self.until_iter).contains(&i)
    }
}

impl std::fmt::Display for DegradationSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}..{}@{}", self.resource, self.from_iter, self.until_iter, self.scale)
    }
}

/// Builds the engine fault plan for iteration `iteration`, or `None` when
/// no spec covers it. Each covering spec degrades its resource for the
/// whole iteration (each iteration runs on a fresh engine starting at
/// t = 0). The per-iteration seed is derived from `seed`, so the same
/// `(specs, seed)` pair always reproduces the same run.
pub fn fault_plan_for(
    specs: &[DegradationSpec],
    seed: u64,
    iteration: usize,
) -> Option<FaultPlan> {
    let covering: Vec<&DegradationSpec> = specs.iter().filter(|s| s.covers(iteration)).collect();
    if covering.is_empty() {
        return None;
    }
    let mut plan = FaultPlan::seeded(seed.wrapping_add(iteration as u64));
    for s in covering {
        plan = plan.degrade(
            s.resource.clone(),
            SimTime::ZERO,
            SimTime::from_secs(1.0e9),
            s.scale,
        );
    }
    Some(plan)
}

/// The paper's static arm: `StridePolicy::Auto` resolved once from the
/// calibration profile, blind to everything that happens at runtime. Runs
/// under the identical fault plan so the race is apples to apples.
struct StaticArm {
    specs: Vec<DegradationSpec>,
    seed: u64,
}

impl IterationController for StaticArm {
    fn plan_iteration(&mut self, iteration: usize, _cfg: &TrainConfig) -> ControlledIteration {
        ControlledIteration {
            scheduler: Box::new(DeepOptimizerStates {
                stride: StridePolicy::Auto,
                residents_at_tail: true,
            }),
            offload: None,
            faults: fault_plan_for(&self.specs, self.seed, iteration),
        }
    }

    fn observe_iteration(&mut self, _iteration: usize, _report: &IterationReport) {}
}

/// Result of racing the adaptive controller against the static arm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaceReport {
    /// Model name.
    pub model: String,
    /// Hardware profile name.
    pub profile: String,
    /// Iterations raced.
    pub iterations: usize,
    /// The fault plan both arms ran under.
    pub faults: Vec<DegradationSpec>,
    /// Seed the fault plan was pinned with.
    pub seed: u64,
    /// The static arm's once-solved Equation 1 stride.
    pub static_stride: Option<usize>,
    /// Ladder rung the controller finished on.
    pub final_rung: LadderRung,
    /// Stride policy of the last planned adaptive iteration, rendered
    /// (`"fixed(2)"` or `"cpu-only"`).
    pub final_stride: String,
    /// Per-iteration update-phase seconds, adaptive arm.
    pub adaptive_update_secs: Vec<f64>,
    /// Per-iteration update-phase seconds, static arm.
    pub static_update_secs: Vec<f64>,
    /// Summed update seconds, adaptive arm.
    pub adaptive_total: f64,
    /// Summed update seconds, static arm.
    pub static_total: f64,
    /// Hysteresis-approved stride changes the controller made.
    pub retunes: usize,
    /// Full adaptive decision log.
    pub decisions: Vec<ControlDecision>,
}

impl RaceReport {
    /// Static over adaptive total update time (> 1 means adaptive wins).
    pub fn speedup(&self) -> f64 {
        if self.adaptive_total > 0.0 {
            self.static_total / self.adaptive_total
        } else {
            f64::NAN
        }
    }

    /// The last iteration on which the controller changed the schedule
    /// (retune, ladder move, or recovery) — `None` if it never moved off
    /// its seed. A small value on a fault-free run is the convergence
    /// half of the headline invariant.
    pub fn last_stride_change(&self) -> Option<usize> {
        self.decisions
            .iter()
            .filter(|d| {
                matches!(d.kind, DecisionKind::Retune | DecisionKind::Ladder | DecisionKind::Recover)
            })
            .map(|d| d.iteration)
            .max()
    }

    /// An aligned per-iteration comparison table with decision
    /// annotations, for terminal output.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} on {} — adaptive vs static (k* = {}), {} iterations, seed {}",
            self.model,
            self.profile,
            self.static_stride.map_or_else(|| "cpu-only".to_string(), |k| k.to_string()),
            self.iterations,
            self.seed,
        );
        if self.faults.is_empty() {
            let _ = writeln!(out, "faults: none");
        } else {
            let specs: Vec<String> = self.faults.iter().map(|s| s.to_string()).collect();
            let _ = writeln!(out, "faults: {}", specs.join(", "));
        }
        let _ = writeln!(out, "{:>4}  {:>12}  {:>12}  decisions", "iter", "adaptive (s)", "static (s)");
        for i in 0..self.iterations {
            let a = self.adaptive_update_secs.get(i).copied().unwrap_or(f64::NAN);
            let s = self.static_update_secs.get(i).copied().unwrap_or(f64::NAN);
            let notes: Vec<&str> = self
                .decisions
                .iter()
                .filter(|d| d.iteration == i)
                .map(|d| d.detail.as_str())
                .collect();
            let _ = writeln!(out, "{i:>4}  {a:>12.3}  {s:>12.3}  {}", notes.join("; "));
        }
        let _ = writeln!(
            out,
            "{:>4}  {:>12.3}  {:>12.3}  speedup {:.2}x, {} retunes, final rung {}",
            "sum",
            self.adaptive_total,
            self.static_total,
            self.speedup(),
            self.retunes,
            self.final_rung.as_str(),
        );
        out
    }
}

/// Races the adaptive [`Controller`] against the static Equation 1 arm
/// for `iterations` iterations under the pinned fault plan `faults`
/// (seeded by `seed`). If `trace` is `(tracer, index)`, the adaptive
/// arm's iteration `index` is replayed into the tracer, control instants
/// included.
pub fn race_adaptive_vs_static(
    train: &TrainConfig,
    ctrl_cfg: ControllerConfig,
    faults: &[DegradationSpec],
    iterations: usize,
    seed: u64,
    trace: Option<(&Tracer, usize)>,
) -> Result<RaceReport, SimError> {
    let mut adaptive = Controller::new(ctrl_cfg, train).with_faults(faults.to_vec(), seed);
    if let Some((tracer, _)) = trace {
        adaptive = adaptive.with_tracer(tracer);
    }
    let adaptive_reports = simulate_training_controlled(train, &mut adaptive, iterations, trace)?;

    let mut static_arm = StaticArm { specs: faults.to_vec(), seed };
    let static_reports = simulate_training_controlled(train, &mut static_arm, iterations, None)?;

    let adaptive_update_secs: Vec<f64> = adaptive_reports.iter().map(|r| r.update_secs).collect();
    let static_update_secs: Vec<f64> = static_reports.iter().map(|r| r.update_secs).collect();
    let final_stride = match adaptive.stride_policy() {
        StridePolicy::Fixed(k) => format!("fixed({k})"),
        StridePolicy::CpuOnly => "cpu-only".to_string(),
        StridePolicy::Auto => "auto".to_string(),
        StridePolicy::Adaptive => "adaptive".to_string(),
    };
    Ok(RaceReport {
        model: train.spec.name.clone(),
        profile: train.profile.name.clone(),
        iterations,
        faults: faults.to_vec(),
        seed,
        static_stride: PerfModel::new(train.profile.perf_model_inputs()).optimal_stride(),
        final_rung: adaptive.rung(),
        final_stride,
        adaptive_total: adaptive_update_secs.iter().sum(),
        static_total: static_update_secs.iter().sum(),
        adaptive_update_secs,
        static_update_secs,
        retunes: adaptive.retunes(),
        decisions: adaptive.decisions().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_hal::{HardwareProfile, PerfModelInputs};
    use dos_nn::ModelSpec;

    fn train() -> TrainConfig {
        TrainConfig::deep_optimizer_states(
            ModelSpec::by_name("20B").expect("20B in the zoo"),
            HardwareProfile::jlse_h100(),
        )
    }

    #[test]
    fn spec_parses_the_cli_syntax() {
        let s = DegradationSpec::parse("pcie.h2d:3..8@0.15").expect("valid spec");
        assert_eq!(s.resource, "pcie.h2d");
        assert_eq!((s.from_iter, s.until_iter), (3, 8));
        assert!((s.scale - 0.15).abs() < 1e-12);
        assert!(!s.covers(2) && s.covers(3) && s.covers(7) && !s.covers(8));
        assert_eq!(s.to_string(), "pcie.h2d:3..8@0.15");

        for bad in ["", "pcie.h2d", "pcie.h2d:3..8", "pcie.h2d:8..3@0.5", "pcie.h2d:1..2@1.5", ":1..2@0.5", "pcie.h2d:x..2@0.5"] {
            assert!(DegradationSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn fault_plans_are_iteration_indexed_and_pinned() {
        let specs = vec![DegradationSpec::parse("pcie.h2d:3..8@0.15").expect("valid")];
        assert!(fault_plan_for(&specs, 7, 2).is_none());
        assert!(fault_plan_for(&specs, 7, 3).is_some());
        assert!(fault_plan_for(&specs, 7, 7).is_some());
        assert!(fault_plan_for(&specs, 7, 8).is_none());
        // Pinned: same (specs, seed, iteration) → same plan.
        assert_eq!(
            format!("{:?}", fault_plan_for(&specs, 7, 4)),
            format!("{:?}", fault_plan_for(&specs, 7, 4)),
        );
    }

    /// Headline invariant, half 1: fault-free, the controller converges to
    /// the static Equation 1 stride within a bounded number of iterations
    /// and matches static performance within tolerance.
    #[test]
    fn fault_free_adaptive_matches_static_within_tolerance() {
        let cfg = train();
        let report = race_adaptive_vs_static(&cfg, ControllerConfig::default(), &[], 6, 1, None)
            .expect("race runs");
        assert_eq!(report.final_rung, LadderRung::Dos);
        assert_eq!(report.final_stride, "fixed(2)", "converged to static k* = 2");
        assert!(
            report.last_stride_change().is_none_or(|i| i <= 5),
            "bounded convergence, last change at {:?}",
            report.last_stride_change()
        );
        let rel = (report.adaptive_total - report.static_total).abs() / report.static_total;
        assert!(rel <= 0.05, "fault-free parity: adaptive {} vs static {} ({:.1}% apart)",
            report.adaptive_total, report.static_total, rel * 100.0);
    }

    /// Fault-free convergence from a deliberately wrong calibration prior:
    /// the loop must pull the stride back to the true optimum.
    #[test]
    fn wrong_prior_converges_to_true_k_star() {
        let cfg = train();
        let wrong = PerfModelInputs { b: 1.5e9, ..cfg.profile.perf_model_inputs() };
        let mut ctl = Controller::new(ControllerConfig::default(), &cfg).with_initial_inputs(wrong);
        assert!(
            matches!(ctl.stride_policy(), StridePolicy::Fixed(k) if k > 2),
            "wrong prior seeds a too-large stride, got {:?}",
            ctl.stride_policy()
        );
        let _ = simulate_training_controlled(&cfg, &mut ctl, 8, None).expect("run");
        assert_eq!(ctl.stride_policy(), StridePolicy::Fixed(2), "converged to true k*");
        assert!(ctl.retunes() >= 1);
    }

    /// Headline invariant, half 2: under a pinned PCIe degradation window,
    /// adaptive strictly beats the static arm on total update time, and
    /// recovers full interleaving after the window ends.
    #[test]
    fn pinned_degradation_window_adaptive_strictly_beats_static() {
        let cfg = train();
        let faults = vec![DegradationSpec::parse("pcie.h2d:3..8@0.15").expect("valid")];
        let report =
            race_adaptive_vs_static(&cfg, ControllerConfig::default(), &faults, 12, 7, None)
                .expect("race runs");
        assert!(
            report.adaptive_total < report.static_total,
            "adaptive {} must strictly beat static {} under degradation",
            report.adaptive_total,
            report.static_total
        );
        assert!(
            report.retunes > 0
                || report.decisions.iter().any(|d| d.kind == DecisionKind::Ladder),
            "the win must come from explicit decisions: {:?}",
            report.decisions
        );
        assert_eq!(report.final_rung, LadderRung::Dos, "recovered after the window");
        let table = report.render_table();
        assert!(table.contains("speedup"));
    }

    #[test]
    fn traced_race_emits_control_instants() {
        let cfg = train();
        let faults = vec![DegradationSpec::parse("pcie.h2d:1..3@0.15").expect("valid")];
        let tracer = Tracer::new();
        let report = race_adaptive_vs_static(
            &cfg,
            ControllerConfig::default(),
            &faults,
            4,
            7,
            Some((&tracer, 1)),
        )
        .expect("race runs");
        let instants = tracer.control_instants();
        assert!(!instants.is_empty(), "decisions: {:?}", report.decisions);
        assert!(instants.iter().all(|ev| ev.name.starts_with("control:")));
        // The replayed iteration's engine spans are present alongside.
        assert!(tracer.events().iter().any(|ev| ev.phase == "update"));
    }
}
