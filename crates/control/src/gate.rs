//! The shared sweep + hysteresis gate.
//!
//! Both control-plane callers — the simulated-engine [`Controller`] and
//! the functional-trainer [`WallClockTuner`] — make stride decisions the
//! same way: sweep every candidate (CPU-only and `k = 1..=max_stride`)
//! through the Equation 1 perf model, then move only when the predicted
//! fractional gain clears a hysteresis band *and* the retune cooldown has
//! elapsed. This module is that logic, extracted once, so a threshold or
//! sweep change cannot silently apply to one caller and not the other.
//!
//! The callers differ only in what they feed in: the [`Controller`]
//! applies its calibrated DRAM-contention factor to the [`PerfModel`]
//! first, the [`WallClockTuner`] does not (its wall-clock samples already
//! measure the contended machine).
//!
//! [`Controller`]: crate::Controller
//! [`WallClockTuner`]: crate::WallClockTuner

use dos_core::PerfModel;

/// The sweep + hysteresis tunables shared by both callers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepGate {
    /// Hysteresis band: a move needs a predicted fractional gain strictly
    /// above this to be approved.
    pub hysteresis_gain: f64,
    /// Cooldown iterations between approved moves.
    pub min_iters_between_retunes: usize,
    /// Largest stride the candidate sweep considers.
    pub max_stride: usize,
}

/// Result of one candidate sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOutcome {
    /// Best interleaved stride, or `None` when CPU-only wins the sweep.
    pub best_k: Option<usize>,
    /// Predicted update seconds of the winning candidate.
    pub best_secs: f64,
    /// Predicted update seconds of the CPU-only candidate.
    pub cpu_secs: f64,
}

impl SweepGate {
    /// Sweeps {CPU-only, k = 1..=max_stride} through `pm` and returns the
    /// winner. Ties go to the earlier candidate (CPU-only first), exactly
    /// as both callers historically resolved them.
    pub fn sweep(&self, pm: &PerfModel, params: f64, subgroup: f64) -> SweepOutcome {
        let cpu = pm.predicted_update_secs(params, subgroup, None);
        let mut best = (None, cpu);
        for k in 1..=self.max_stride.max(1) {
            let t = pm.predicted_update_secs(params, subgroup, Some(k));
            if t < best.1 {
                best = (Some(k), t);
            }
        }
        SweepOutcome { best_k: best.0, best_secs: best.1, cpu_secs: cpu }
    }

    /// The fractional predicted gain of moving from `cur_secs` to
    /// `best_secs`.
    pub fn gain(cur_secs: f64, best_secs: f64) -> f64 {
        (cur_secs - best_secs) / cur_secs
    }

    /// Whether the retune cooldown has elapsed at `iteration`.
    pub fn cooled(&self, iteration: usize, last_retune: Option<usize>) -> bool {
        last_retune.is_none_or(|l| iteration.saturating_sub(l) >= self.min_iters_between_retunes)
    }

    /// The full gate: returns the predicted gain iff both the cooldown and
    /// the hysteresis band pass.
    pub fn approve(
        &self,
        iteration: usize,
        last_retune: Option<usize>,
        cur_secs: f64,
        best_secs: f64,
    ) -> Option<f64> {
        let gain = Self::gain(cur_secs, best_secs);
        (self.cooled(iteration, last_retune) && gain > self.hysteresis_gain).then_some(gain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> SweepGate {
        SweepGate { hysteresis_gain: 0.05, min_iters_between_retunes: 2, max_stride: 8 }
    }

    #[test]
    fn approves_only_past_both_bars() {
        let g = gate();
        // Gain below the band: rejected even when cooled.
        assert_eq!(g.approve(10, None, 1.0, 0.96), None);
        // Gain above the band but inside the cooldown: rejected.
        assert_eq!(g.approve(10, Some(9), 1.0, 0.5), None);
        // Both pass: the gain comes back.
        let gain = g.approve(10, Some(8), 1.0, 0.5);
        assert_eq!(gain, Some(0.5));
    }

    #[test]
    fn cooldown_is_inclusive_of_the_boundary() {
        let g = gate();
        assert!(!g.cooled(5, Some(4)));
        assert!(g.cooled(6, Some(4)));
        assert!(g.cooled(0, None));
    }

    #[test]
    fn gain_is_fractional_improvement() {
        assert_eq!(SweepGate::gain(2.0, 1.0), 0.5);
        assert!(SweepGate::gain(1.0, 1.2) < 0.0);
    }
}
