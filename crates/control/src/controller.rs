//! The feedback controller: hysteresis-gated stride retuning, headroom-based
//! resident sizing, and the degradation ladder with recovery edges.

use crate::driver::{fault_plan_for, DegradationSpec};
use crate::estimator::InputEstimators;
use crate::gate::SweepGate;
use dos_core::{DeepOptimizerStates, PerfModel, StridePolicy};
use dos_hal::PerfModelInputs;
use dos_sim::{ControlledIteration, IterationController, IterationReport, TrainConfig};
use dos_telemetry::{TraceEvent, Tracer};
use serde::{Deserialize, Serialize};

/// The degradation ladder of DESIGN.md §8, now with explicit recovery
/// edges. "Reduced interleaving" (the paper's middle rung) is expressed
/// inside [`LadderRung::Dos`] as a normal retune to a larger stride; the
/// ladder only changes rung when Equation 1 stops admitting a solution or
/// the GPU runs out of memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LadderRung {
    /// Full Deep Optimizer States interleaving at the controller's stride.
    Dos,
    /// Interleaving suspended: GPU residents still update in place, every
    /// dynamic subgroup updates on the CPU (`StridePolicy::CpuOnly` with
    /// the configured resident ratio).
    ResidentsOnly,
    /// Full retreat after an observed GPU OOM: resident ratio forced to 0,
    /// everything updates on the CPU.
    CpuOnly,
}

impl LadderRung {
    /// Stable lowercase name for reports and trace labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            LadderRung::Dos => "dos",
            LadderRung::ResidentsOnly => "residents-only",
            LadderRung::CpuOnly => "cpu-only",
        }
    }
}

/// What kind of decision the controller took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionKind {
    /// Initial stride solved from the calibration prior.
    Seed,
    /// Stride changed after the hysteresis gate passed.
    Retune,
    /// Ladder descent (Dos → ResidentsOnly, or any rung → CpuOnly on OOM).
    Ladder,
    /// GPU-resident tail resized against observed memory headroom.
    Residents,
    /// Ladder ascent back toward full interleaving.
    Recover,
    /// One-off Dos probe iteration while parked in ResidentsOnly, so the
    /// PCIe estimators get fresh samples (no flushes happen otherwise and
    /// the D2H estimate would stay stuck at its degraded value forever).
    Probe,
}

/// One recorded control decision. Also emitted as a `control:*` instant on
/// [`dos_telemetry::CONTROL_TRACK`] when a tracer is attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlDecision {
    /// Iteration the decision applies to (0-based).
    pub iteration: usize,
    /// Simulated seconds of training elapsed when the decision was taken
    /// (sum of finished iterations' totals); the wall-clock tuner stamps
    /// the iteration index instead.
    pub at_secs: f64,
    /// Decision category.
    pub kind: DecisionKind,
    /// Human-readable detail, e.g. `"k2->k4 (predicted gain 30.1%)"`.
    pub detail: String,
}

/// How the controller sizes the GPU-resident subgroup tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResidentPolicy {
    /// Keep the configured `gpu_resident_ratio` untouched (default — the
    /// adaptive arm then runs the exact same memory configuration as the
    /// static arm, so fault-free parity is trivial to verify).
    Fixed,
    /// Resize against signed HBM headroom each iteration: the ratio moves
    /// by `fraction * headroom / (12 * params_per_rank)` — the fraction of
    /// leftover (or overshot, when negative) HBM bytes converted into FP32
    /// optimizer-state residency — clamped to `[0, cap]`.
    Headroom {
        /// Fraction of the observed headroom to convert per step (gentle
        /// values like 0.5 avoid overshoot; the loop is self-correcting
        /// because negative headroom shrinks the ratio again).
        fraction: f64,
        /// Upper bound on the resident ratio.
        cap: f64,
    },
}

/// Tunables of the [`Controller`] loop. All fields have serde defaults so
/// partial JSON configs work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ControllerConfig {
    /// EWMA smoothing factor for the input estimators.
    pub alpha: f64,
    /// Minimum fractional predicted gain before a retune is allowed — the
    /// hysteresis band that keeps `k` from oscillating on noise.
    pub hysteresis_gain: f64,
    /// Cooldown: minimum iterations between consecutive retunes.
    pub min_iters_between_retunes: usize,
    /// Largest stride the candidate sweep considers.
    pub max_stride: usize,
    /// GPU-resident tail sizing policy.
    pub residents: ResidentPolicy,
    /// ResidentsOnly probes a Dos iteration every this many iterations;
    /// CpuOnly recovers after this many consecutive OOM-free iterations.
    pub recovery_patience: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            alpha: 0.5,
            hysteresis_gain: 0.05,
            min_iters_between_retunes: 1,
            max_stride: 8,
            residents: ResidentPolicy::Fixed,
            recovery_patience: 2,
        }
    }
}

/// The adaptive control plane: estimator → solver → hysteresis → actuator,
/// plugged into `dos-sim`'s per-iteration [`IterationController`] hook.
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControllerConfig,
    est: InputEstimators,
    contention: f64,
    params: f64,
    subgroup: f64,
    hbm_bytes: u64,
    base_ratio: f64,
    stride: usize,
    rung: LadderRung,
    pre_fault_stride: usize,
    resident_ratio: Option<f64>,
    decisions: Vec<ControlDecision>,
    retunes: usize,
    last_retune: Option<usize>,
    clean_streak: usize,
    iters_in_residents: usize,
    interleaved_last: bool,
    probe_active: bool,
    clock: f64,
    last_peak_bytes: Option<u64>,
    seeded: bool,
    faults: Vec<DegradationSpec>,
    fault_seed: u64,
    tracer: Option<Tracer>,
}

impl Controller {
    /// A controller for `train`, with estimators seeded from the profile's
    /// calibration and the initial stride solved exactly as the static
    /// `StridePolicy::Auto` arm solves it — fault-free, the two arms start
    /// (and stay) identical.
    pub fn new(cfg: ControllerConfig, train: &TrainConfig) -> Controller {
        let nominal = train.profile.perf_model_inputs();
        let contention = train.profile.dram_contention_cpu_factor.clamp(f64::MIN_POSITIVE, 1.0);
        let est = InputEstimators::seeded(nominal, contention, cfg.alpha);
        let mut c = Controller {
            cfg,
            est,
            contention,
            params: train.params_per_rank() as f64,
            subgroup: train.offload.subgroup_params as f64,
            hbm_bytes: train.profile.gpu_hbm_bytes,
            base_ratio: train.offload.gpu_resident_ratio,
            stride: 1,
            rung: LadderRung::Dos,
            pre_fault_stride: 1,
            resident_ratio: None,
            decisions: Vec::new(),
            retunes: 0,
            last_retune: None,
            clean_streak: 0,
            iters_in_residents: 0,
            interleaved_last: false,
            probe_active: false,
            clock: 0.0,
            last_peak_bytes: None,
            seeded: false,
            faults: Vec::new(),
            fault_seed: 0,
            tracer: None,
        };
        c.seed_from(nominal);
        c
    }

    /// Replaces the calibration prior with a deliberately different one —
    /// the convergence tests start from wrong inputs and watch the loop
    /// pull the stride back to the true optimum.
    pub fn with_initial_inputs(mut self, prior: PerfModelInputs) -> Controller {
        self.est.reseed(prior);
        self.seed_from(prior);
        self
    }

    /// Installs a pinned, iteration-indexed fault plan; the plan for
    /// iteration `i` is derived from `seed` so races are reproducible.
    pub fn with_faults(mut self, specs: Vec<DegradationSpec>, seed: u64) -> Controller {
        self.faults = specs;
        self.fault_seed = seed;
        self
    }

    /// Attaches a tracer; every decision is then also emitted as a
    /// `control:*` instant on the dedicated control track.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Controller {
        self.tracer = Some(tracer.clone());
        self
    }

    fn seed_from(&mut self, prior: PerfModelInputs) {
        match PerfModel::new(prior).optimal_stride() {
            Some(k) => {
                self.stride = k.clamp(1, self.cfg.max_stride.max(1));
                self.rung = LadderRung::Dos;
            }
            None => {
                self.rung = LadderRung::ResidentsOnly;
            }
        }
        self.pre_fault_stride = self.stride;
    }

    /// The full decision log, in order.
    pub fn decisions(&self) -> &[ControlDecision] {
        &self.decisions
    }

    /// The ladder rung the controller currently sits on.
    pub fn rung(&self) -> LadderRung {
        self.rung
    }

    /// The stride policy the *next* planned iteration would run under.
    pub fn stride_policy(&self) -> StridePolicy {
        match self.rung {
            LadderRung::Dos => StridePolicy::Fixed(self.stride.max(1)),
            LadderRung::ResidentsOnly if self.probe_active => {
                StridePolicy::Fixed(self.pre_fault_stride.max(1))
            }
            LadderRung::ResidentsOnly | LadderRung::CpuOnly => StridePolicy::CpuOnly,
        }
    }

    /// Number of hysteresis-approved stride changes so far (seed, ladder
    /// moves, and probes excluded).
    pub fn retunes(&self) -> usize {
        self.retunes
    }

    /// The current Equation 1 input estimates.
    pub fn estimated_inputs(&self) -> Option<PerfModelInputs> {
        self.est.inputs()
    }

    fn decide(&mut self, iteration: usize, kind: DecisionKind, detail: String) {
        if let Some(t) = &self.tracer {
            t.control_decision(&format!("it{iteration}:{detail}"), self.clock);
        }
        self.decisions.push(ControlDecision { iteration, at_secs: self.clock, kind, detail });
    }

    /// The shared sweep + hysteresis gate, parameterized by this
    /// controller's tunables.
    fn gate(&self) -> SweepGate {
        SweepGate {
            hysteresis_gain: self.cfg.hysteresis_gain,
            min_iters_between_retunes: self.cfg.min_iters_between_retunes,
            max_stride: self.cfg.max_stride,
        }
    }

    /// Candidate sweep: best of {CPU-only, k = 1..=max_stride} on the
    /// current estimates, with the calibrated DRAM-contention factor
    /// applied to interleaved candidates (mirrors the scheduler's engine
    /// behaviour). Returns `(best_k, best_secs, cpu_only_secs)`.
    fn sweep(&self, inputs: PerfModelInputs) -> (Option<usize>, f64, f64) {
        let pm = PerfModel::new(inputs).with_contention(self.contention);
        let out = self.gate().sweep(&pm, self.params, self.subgroup);
        (out.best_k, out.best_secs, out.cpu_secs)
    }

    /// One step of the rung/stride state machine, taken at plan time on
    /// the estimates the previous observe left behind.
    fn step(&mut self, i: usize) {
        let Some(inputs) = self.est.inputs() else { return };
        let raw = PerfModel::new(inputs).raw_stride();
        let (best_k, best_secs, cpu_secs) = self.sweep(inputs);
        match self.rung {
            LadderRung::Dos => {
                if raw.is_none() || best_k.is_none() {
                    // Equation 1 no longer admits a solution (the PCIe
                    // link is too degraded for interleaving to pay off):
                    // park on the residents and remember where we were.
                    self.pre_fault_stride = self.stride;
                    self.rung = LadderRung::ResidentsOnly;
                    self.iters_in_residents = 0;
                    self.decide(
                        i,
                        DecisionKind::Ladder,
                        format!("descend:residents-only (eq1 unsolvable, was k{})", self.stride),
                    );
                    return;
                }
                let Some(k) = best_k else { return };
                if k == self.stride {
                    return;
                }
                let pm = PerfModel::new(inputs).with_contention(self.contention);
                let cur = pm.predicted_update_secs(self.params, self.subgroup, Some(self.stride));
                if let Some(gain) = self.gate().approve(i, self.last_retune, cur, best_secs) {
                    let old = self.stride;
                    self.stride = k;
                    self.retunes += 1;
                    self.last_retune = Some(i);
                    self.decide(
                        i,
                        DecisionKind::Retune,
                        format!("k{old}->k{k} (predicted gain {:.1}%)", gain * 100.0),
                    );
                }
            }
            LadderRung::ResidentsOnly => {
                self.iters_in_residents += 1;
                // Recovery applies the hysteresis band but not the retune
                // cooldown: climbing out of a degraded rung should not wait
                // on the descent's own cooldown.
                let gain = SweepGate::gain(cpu_secs, best_secs);
                if raw.is_some() && best_k.is_some() && gain > self.cfg.hysteresis_gain {
                    // The estimates say interleaving pays again, by more
                    // than the hysteresis margin: climb back up to the
                    // stride we ran before the descent (the next retune
                    // refines it if the link settled somewhere new).
                    self.rung = LadderRung::Dos;
                    self.stride = self.pre_fault_stride.clamp(1, self.cfg.max_stride.max(1));
                    self.probe_active = false;
                    self.decide(
                        i,
                        DecisionKind::Recover,
                        format!("recover:dos k{} (predicted gain {:.1}%)", self.stride, gain * 100.0),
                    );
                } else if self.cfg.recovery_patience > 0
                    && self.iters_in_residents.is_multiple_of(self.cfg.recovery_patience)
                {
                    self.probe_active = true;
                    self.decide(
                        i,
                        DecisionKind::Probe,
                        format!("probe:k{}", self.pre_fault_stride.max(1)),
                    );
                }
            }
            LadderRung::CpuOnly => {
                if self.clean_streak >= self.cfg.recovery_patience.max(1) {
                    self.rung = LadderRung::ResidentsOnly;
                    self.iters_in_residents = 0;
                    self.clean_streak = 0;
                    self.decide(i, DecisionKind::Recover, "recover:residents-only".to_string());
                }
            }
        }
    }

    fn size_residents(&mut self, i: usize) {
        let ResidentPolicy::Headroom { fraction, cap } = self.cfg.residents else { return };
        let Some(peak) = self.last_peak_bytes else { return };
        // Signed headroom: a negative value (peak above HBM would have
        // OOMed; peak close to it leaves margin) shrinks the ratio again,
        // so the loop self-corrects instead of ratcheting up.
        let headroom = self.hbm_bytes as f64 - peak as f64;
        let cur = self.resident_ratio.unwrap_or(self.base_ratio);
        let delta = fraction.clamp(0.0, 1.0) * headroom / (12.0 * self.params);
        let next = (cur + delta).clamp(0.0, cap.clamp(0.0, 1.0));
        if (next - cur).abs() > 0.005 {
            self.resident_ratio = Some(next);
            self.decide(
                i,
                DecisionKind::Residents,
                format!("resident ratio {cur:.3}->{next:.3}"),
            );
        }
    }

    /// Effective resident ratio the next iteration runs with.
    fn effective_ratio(&self, cfg: &TrainConfig) -> f64 {
        match self.rung {
            LadderRung::CpuOnly => 0.0,
            _ => self.resident_ratio.unwrap_or(cfg.offload.gpu_resident_ratio),
        }
    }
}

impl IterationController for Controller {
    fn plan_iteration(&mut self, iteration: usize, cfg: &TrainConfig) -> ControlledIteration {
        self.probe_active = false;
        if !self.seeded {
            self.seeded = true;
            let detail = match self.rung {
                LadderRung::Dos => format!("seed:k{}", self.stride),
                _ => format!("seed:{}", self.rung.as_str()),
            };
            self.decide(iteration, DecisionKind::Seed, detail);
            // The seed is itself a stride decision: start the retune
            // cooldown from here, so the first retune isn't exempt.
            self.last_retune = Some(iteration);
        } else {
            self.step(iteration);
        }
        if self.rung == LadderRung::Dos {
            self.size_residents(iteration);
        }

        let policy = self.stride_policy();
        let ratio = self.effective_ratio(cfg);
        let offload = if self.rung == LadderRung::CpuOnly || self.resident_ratio.is_some() {
            let mut o = cfg.offload;
            o.gpu_resident_ratio = ratio;
            Some(o)
        } else {
            None
        };

        // Mirror the scheduler's interleaving condition so the estimator
        // knows whether this iteration's CPU spans ran under contention.
        let n = cfg.params_per_rank().div_ceil(cfg.offload.subgroup_params.max(1));
        let n_static = ((ratio * n as f64).ceil() as usize).min(n);
        let dynamic = n - n_static;
        self.interleaved_last = match policy {
            StridePolicy::Fixed(k) => dynamic > k.saturating_sub(1),
            _ => false,
        };

        ControlledIteration {
            scheduler: Box::new(DeepOptimizerStates { stride: policy, residents_at_tail: true }),
            offload,
            faults: fault_plan_for(&self.faults, self.fault_seed, iteration),
        }
    }

    fn observe_iteration(&mut self, iteration: usize, report: &IterationReport) {
        self.clock += report.total_secs;
        self.last_peak_bytes = Some(report.gpu_peak_bytes);
        self.est.observe_sim_timeline(&report.timeline, self.interleaved_last);
        if report.oom.is_some() {
            self.clean_streak = 0;
            if self.rung != LadderRung::CpuOnly {
                if self.rung == LadderRung::Dos {
                    self.pre_fault_stride = self.stride;
                }
                self.rung = LadderRung::CpuOnly;
                self.decide(iteration, DecisionKind::Ladder, "descend:cpu-only (gpu oom)".into());
            }
        } else if self.rung == LadderRung::CpuOnly {
            self.clean_streak += 1;
        }
    }
}

/// Tunables of the [`WallClockTuner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct WallClockTunerConfig {
    /// EWMA smoothing factor.
    pub alpha: f64,
    /// Hysteresis band on the fractional predicted gain.
    pub hysteresis_gain: f64,
    /// Cooldown iterations between retunes.
    pub min_iters_between_retunes: usize,
    /// Largest stride considered.
    pub max_stride: usize,
    /// Stride used until the first wall-clock samples arrive.
    pub seed_stride: usize,
    /// Static-resident sizing policy. `Headroom` resizes the resident tail
    /// against the arena pool's per-iteration high-water gauge (fed via
    /// [`WallClockTuner::observe_arena`]) toward `host_budget_bytes`.
    pub residents: ResidentPolicy,
    /// Host staging-memory budget (bytes) the `Headroom` policy steers the
    /// arena high-water toward. `0` disables resident resizing.
    pub host_budget_bytes: u64,
    /// Resident count the tuner starts from.
    pub base_residents: usize,
}

impl Default for WallClockTunerConfig {
    fn default() -> Self {
        WallClockTunerConfig {
            alpha: 0.5,
            hysteresis_gain: 0.05,
            min_iters_between_retunes: 1,
            max_stride: 8,
            seed_stride: 2,
            residents: ResidentPolicy::Fixed,
            host_budget_bytes: 0,
            base_residents: 0,
        }
    }
}

/// The functional-trainer tuner: the same sweep + hysteresis loop as
/// [`Controller`], fed purely from wall-clock spans recorded by the real
/// threaded pipeline (`hybrid_update_traced`) — `U_c` from `update:sg*`
/// spans, `D_c` from the pipeline's dedicated `downscale:sg*` spans, `B`
/// from the staging transfers. No contention compensation is applied —
/// wall spans already measure the contended machine. When configured with
/// [`ResidentPolicy::Headroom`], it additionally sizes the static-resident
/// tail against the arena pool's high-water gauge, the functional path's
/// observable memory signal.
#[derive(Debug, Clone)]
pub struct WallClockTuner {
    cfg: WallClockTunerConfig,
    est: InputEstimators,
    params: f64,
    subgroup: f64,
    n_subgroups: usize,
    stride: usize,
    residents: usize,
    cpu_only: bool,
    iter: usize,
    last_retune: Option<usize>,
    retunes: usize,
    decisions: Vec<ControlDecision>,
}

impl WallClockTuner {
    /// A tuner for a rank updating `params_per_rank` parameters in
    /// subgroups of `subgroup_params`.
    pub fn new(cfg: WallClockTunerConfig, params_per_rank: usize, subgroup_params: usize) -> Self {
        let n_subgroups = params_per_rank.div_ceil(subgroup_params.max(1));
        WallClockTuner {
            est: InputEstimators::wall(cfg.alpha),
            params: params_per_rank as f64,
            subgroup: subgroup_params.max(1) as f64,
            n_subgroups,
            stride: cfg.seed_stride.clamp(1, cfg.max_stride.max(1)),
            residents: cfg.base_residents.min(n_subgroups),
            cpu_only: false,
            iter: 0,
            last_retune: None,
            retunes: 0,
            decisions: Vec::new(),
            cfg,
        }
    }

    /// The stride policy the next iteration should run under.
    pub fn stride_policy(&self) -> StridePolicy {
        if self.cpu_only {
            StridePolicy::CpuOnly
        } else {
            StridePolicy::Fixed(self.stride.max(1))
        }
    }

    /// Number of hysteresis-approved changes so far.
    pub fn retunes(&self) -> usize {
        self.retunes
    }

    /// The decision log (`at_secs` carries the iteration index).
    pub fn decisions(&self) -> &[ControlDecision] {
        &self.decisions
    }

    /// The current wall-clock input estimates.
    pub fn estimated_inputs(&self) -> Option<PerfModelInputs> {
        self.est.inputs()
    }

    /// The static-resident count the next iteration should run with.
    pub fn static_residents(&self) -> usize {
        self.residents
    }

    /// Feeds the arena pool's per-iteration staging high-water mark (from
    /// `ArenaPool::take_high_water_bytes`) and, under
    /// [`ResidentPolicy::Headroom`], resizes the static-resident tail: the
    /// configured fraction of the signed headroom against
    /// `host_budget_bytes` is converted into whole subgroups at ~18
    /// bytes/param of staging footprint (p/m/v/g in FP32 plus the FP16
    /// copy). Overshoot shrinks the tail again, so the loop self-corrects.
    pub fn observe_arena(&mut self, high_water_bytes: usize) {
        let ResidentPolicy::Headroom { fraction, cap } = self.cfg.residents else { return };
        if self.cfg.host_budget_bytes == 0 {
            return;
        }
        let headroom = self.cfg.host_budget_bytes as f64 - high_water_bytes as f64;
        let bytes_per_subgroup = 18.0 * self.subgroup;
        let delta = fraction.clamp(0.0, 1.0) * headroom / bytes_per_subgroup;
        let max_residents =
            ((cap.clamp(0.0, 1.0) * self.n_subgroups as f64).floor() as usize).min(self.n_subgroups);
        let next = ((self.residents as f64 + delta).round().max(0.0) as usize).min(max_residents);
        if next != self.residents {
            let old = self.residents;
            self.residents = next;
            self.decide(DecisionKind::Residents, format!("residents {old}->{next}"));
        }
    }

    fn decide(&mut self, kind: DecisionKind, detail: String) {
        self.decisions.push(ControlDecision {
            iteration: self.iter,
            at_secs: self.iter as f64,
            kind,
            detail,
        });
    }

    /// The shared sweep + hysteresis gate, parameterized by this tuner's
    /// tunables (no contention factor: wall spans measure the contended
    /// machine directly).
    fn gate(&self) -> SweepGate {
        SweepGate {
            hysteresis_gain: self.cfg.hysteresis_gain,
            min_iters_between_retunes: self.cfg.min_iters_between_retunes,
            max_stride: self.cfg.max_stride,
        }
    }

    /// Feeds one finished iteration's wall-clock trace events and re-runs
    /// the sweep + hysteresis gate.
    pub fn observe(&mut self, events: &[TraceEvent]) {
        self.est.observe_wall_events(events);
        self.iter += 1;
        let Some(inputs) = self.est.inputs() else { return };
        let pm = PerfModel::new(inputs);
        let best = self.gate().sweep(&pm, self.params, self.subgroup);
        let i = self.iter;
        let cur_secs = if self.cpu_only {
            best.cpu_secs
        } else {
            pm.predicted_update_secs(self.params, self.subgroup, Some(self.stride))
        };
        // All three moves share the same hysteresis + cooldown gate.
        let Some(gain) = self.gate().approve(i, self.last_retune, cur_secs, best.best_secs) else {
            return;
        };
        match best.best_k {
            None if !self.cpu_only => {
                self.cpu_only = true;
                self.retunes += 1;
                self.last_retune = Some(i);
                self.decide(
                    DecisionKind::Ladder,
                    format!("k{}->cpu-only (predicted gain {:.1}%)", self.stride, gain * 100.0),
                );
            }
            Some(k) if self.cpu_only => {
                self.cpu_only = false;
                self.stride = k;
                self.retunes += 1;
                self.last_retune = Some(i);
                self.decide(
                    DecisionKind::Recover,
                    format!("cpu-only->k{k} (predicted gain {:.1}%)", gain * 100.0),
                );
            }
            Some(k) if k != self.stride => {
                let old = self.stride;
                self.stride = k;
                self.retunes += 1;
                self.last_retune = Some(i);
                self.decide(
                    DecisionKind::Retune,
                    format!("k{old}->k{k} (predicted gain {:.1}%)", gain * 100.0),
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_hal::HardwareProfile;
    use dos_nn::ModelSpec;
    use dos_sim::ResourceUtilization;
    use dos_telemetry::{EventKind, Timeline};
    use proptest::prelude::*;

    fn train() -> TrainConfig {
        TrainConfig::deep_optimizer_states(
            ModelSpec::by_name("20B").expect("20B in the zoo"),
            HardwareProfile::jlse_h100(),
        )
    }

    /// A synthetic report whose only informative spans are PCIe transfers
    /// at an effective rate of `b_eff` params/s per direction — the CPU and
    /// GPU estimators keep their calibration prior, so tests steer the
    /// controller through `B` alone.
    fn report_with_b(b_eff: f64, oom: bool) -> IterationReport {
        let s = 1.0e8_f64;
        let mut tl = Timeline::new();
        tl.record("pcie.h2d", "h2d-params16:sg0", "update", 0.0, 2.0 * s / (4.0 * b_eff), 2.0 * s);
        tl.record("pcie.d2h", "flush-momentum:sg0", "update", 0.0, 4.0 * s / (4.0 * b_eff), 4.0 * s);
        IterationReport {
            scheduler: "test".into(),
            model: "20B".into(),
            forward_secs: 0.0,
            backward_secs: 0.0,
            update_secs: 1.0,
            total_secs: 1.0,
            spill_secs: 0.0,
            tflops_per_gpu: 0.0,
            update_pps_per_rank: 0.0,
            gpu_peak_bytes: 0,
            oom: oom.then(|| "synthetic oom".to_string()),
            host_oom: None,
            update_utilization: ResourceUtilization::default(),
            timeline: tl,
        }
    }

    #[test]
    fn seeds_to_the_static_k_star() {
        let cfg = train();
        let mut ctl = Controller::new(ControllerConfig::default(), &cfg);
        let plan = ctl.plan_iteration(0, &cfg);
        assert_eq!(ctl.stride_policy(), StridePolicy::Fixed(2), "jlse_h100 k* = 2");
        assert_eq!(ctl.decisions()[0].kind, DecisionKind::Seed);
        assert!(plan.offload.is_none(), "Fixed resident policy leaves the config untouched");
        assert!(plan.faults.is_none());
    }

    #[test]
    fn healthy_observations_never_move_the_stride() {
        let cfg = train();
        let mut ctl = Controller::new(ControllerConfig::default(), &cfg);
        for i in 0..10 {
            let _ = ctl.plan_iteration(i, &cfg);
            ctl.observe_iteration(i, &report_with_b(4.0e9, false));
        }
        assert_eq!(ctl.retunes(), 0);
        assert_eq!(ctl.stride_policy(), StridePolicy::Fixed(2));
        assert_eq!(ctl.rung(), LadderRung::Dos);
    }

    #[test]
    fn recovery_restores_the_pre_fault_stride() {
        let cfg = train();
        // Huge cooldown: no intermediate retunes, so the stride parked at
        // descent time is exactly the seeded k* = 2.
        let ctl_cfg = ControllerConfig {
            min_iters_between_retunes: 1000,
            ..ControllerConfig::default()
        };
        let mut ctl = Controller::new(ctl_cfg, &cfg);
        let mut i = 0;
        while ctl.rung() != LadderRung::ResidentsOnly {
            let _ = ctl.plan_iteration(i, &cfg);
            ctl.observe_iteration(i, &report_with_b(0.5e9, false));
            i += 1;
            assert!(i < 50, "descent must happen within a bounded number of iterations");
        }
        assert!(ctl
            .decisions()
            .iter()
            .any(|d| d.kind == DecisionKind::Ladder && d.detail.contains("residents-only")));
        while ctl.rung() != LadderRung::Dos {
            let _ = ctl.plan_iteration(i, &cfg);
            ctl.observe_iteration(i, &report_with_b(4.0e9, false));
            i += 1;
            assert!(i < 100, "recovery must happen within a bounded number of iterations");
        }
        assert_eq!(ctl.stride_policy(), StridePolicy::Fixed(2), "pre-fault stride restored");
        assert!(ctl.decisions().iter().any(|d| d.kind == DecisionKind::Recover));
    }

    #[test]
    fn oom_descends_to_cpu_only_and_climbs_back() {
        let cfg = train();
        let mut ctl = Controller::new(ControllerConfig::default(), &cfg);
        let plan = ctl.plan_iteration(0, &cfg);
        drop(plan);
        ctl.observe_iteration(0, &report_with_b(4.0e9, true));
        assert_eq!(ctl.rung(), LadderRung::CpuOnly);
        let plan = ctl.plan_iteration(1, &cfg);
        assert_eq!(ctl.stride_policy(), StridePolicy::CpuOnly);
        let off = plan.offload.expect("cpu-only forces an offload override");
        assert_eq!(off.gpu_resident_ratio, 0.0);
        // Clean iterations: climb back to residents-only, then to Dos.
        let mut i = 1;
        ctl.observe_iteration(i, &report_with_b(4.0e9, false));
        while ctl.rung() != LadderRung::Dos {
            i += 1;
            let _ = ctl.plan_iteration(i, &cfg);
            ctl.observe_iteration(i, &report_with_b(4.0e9, false));
            assert!(i < 50, "full recovery must be bounded");
        }
        assert_eq!(ctl.stride_policy(), StridePolicy::Fixed(2));
    }

    #[test]
    fn residents_only_probes_periodically() {
        let cfg = train();
        let ctl_cfg = ControllerConfig {
            min_iters_between_retunes: 1000,
            recovery_patience: 2,
            ..ControllerConfig::default()
        };
        let mut ctl = Controller::new(ctl_cfg, &cfg);
        // Drive down and keep the link degraded: the controller must keep
        // probing rather than trusting a permanently stale estimate.
        for i in 0..20 {
            let _ = ctl.plan_iteration(i, &cfg);
            ctl.observe_iteration(i, &report_with_b(0.5e9, false));
        }
        assert_eq!(ctl.rung(), LadderRung::ResidentsOnly);
        let probes = ctl.decisions().iter().filter(|d| d.kind == DecisionKind::Probe).count();
        assert!(probes >= 2, "expected periodic probes, saw {probes}");
    }

    #[test]
    fn headroom_policy_resizes_and_stays_clamped() {
        let mut cfg = train();
        cfg.offload.gpu_resident_ratio = 0.1;
        let ctl_cfg = ControllerConfig {
            residents: ResidentPolicy::Headroom { fraction: 0.5, cap: 0.3 },
            ..ControllerConfig::default()
        };
        let mut ctl = Controller::new(ctl_cfg, &cfg);
        let mut ratios = Vec::new();
        for i in 0..8 {
            let plan = ctl.plan_iteration(i, &cfg);
            let r = plan.offload.map_or(cfg.offload.gpu_resident_ratio, |o| o.gpu_resident_ratio);
            ratios.push(r);
            // Huge free headroom: the ratio should grow toward the cap.
            let mut rep = report_with_b(4.0e9, false);
            rep.gpu_peak_bytes = 10 << 30;
            ctl.observe_iteration(i, &rep);
        }
        assert!(ratios.iter().all(|r| (0.0..=0.3).contains(r)), "ratios clamped: {ratios:?}");
        assert!(
            ratios.last().copied().unwrap_or(0.0) > 0.1,
            "free headroom grows the tail: {ratios:?}"
        );
        assert!(ctl.decisions().iter().any(|d| d.kind == DecisionKind::Residents));
        // Now report a peak above the HBM size: the ratio must shrink.
        let before = ratios.last().copied().unwrap_or(0.0);
        let mut rep = report_with_b(4.0e9, false);
        rep.gpu_peak_bytes = cfg.profile.gpu_hbm_bytes + (40 << 30);
        ctl.observe_iteration(7, &rep);
        let plan = ctl.plan_iteration(8, &cfg);
        let after = plan.offload.map_or(before, |o| o.gpu_resident_ratio);
        assert!(after < before, "negative headroom shrinks the tail: {before} -> {after}");
    }

    #[test]
    fn decisions_emit_control_instants_when_traced() {
        let cfg = train();
        let tracer = Tracer::new();
        let mut ctl = Controller::new(ControllerConfig::default(), &cfg).with_tracer(&tracer);
        let _ = ctl.plan_iteration(0, &cfg);
        ctl.observe_iteration(0, &report_with_b(0.5e9, false));
        let _ = ctl.plan_iteration(1, &cfg);
        let instants = tracer.control_instants();
        assert!(!instants.is_empty());
        assert!(instants.iter().all(|ev| ev.name.starts_with("control:")));
    }

    #[test]
    fn wall_tuner_degrades_and_recovers_on_pipeline_spans() {
        let mk = |resource: &str, name: &str, dur: f64, work: f64| TraceEvent {
            track: "cpu".into(),
            name: name.into(),
            phase: "update".into(),
            resource: resource.into(),
            start: 0.0,
            dur,
            work,
            depth: 0,
            kind: EventKind::Span,
        };
        let events_at = |b: f64| {
            vec![
                mk("cpu", "update:sg0", 0.5, 1.0e9),
                mk("cpu", "downscale:sg0", 0.1, 1.0e9),
                mk("gpu", "update:sg1", 0.1, 2.5e9),
                mk("pcie.h2d", "prefetch:sg1", 1.0e9 / b, 4.0 * 1.0e9),
                mk("pcie.d2h", "flush:sg1", 1.0e9 / b, 4.0 * 1.0e9),
            ]
        };
        let cfg = WallClockTunerConfig { alpha: 1.0, ..WallClockTunerConfig::default() };
        let mut tuner = WallClockTuner::new(cfg, 5_000_000_000, 100_000_000);
        assert_eq!(tuner.stride_policy(), StridePolicy::Fixed(2));
        // Severe degradation: Equation 1 stops paying, the tuner retreats.
        tuner.observe(&events_at(0.4e9));
        assert_eq!(tuner.stride_policy(), StridePolicy::CpuOnly, "{:?}", tuner.estimated_inputs());
        // Healthy again: it climbs back to an interleaved stride.
        tuner.observe(&events_at(4.0e9));
        assert!(
            matches!(tuner.stride_policy(), StridePolicy::Fixed(_)),
            "{:?}",
            tuner.stride_policy()
        );
        assert!(tuner.retunes() >= 2);
        let inputs = tuner.estimated_inputs().expect("all four inputs observed");
        assert!((inputs.dc - 1.0e10).abs() / 1.0e10 < 1e-6, "D_c is measured: {}", inputs.dc);
    }

    #[test]
    fn wall_tuner_headroom_shrinks_residents_and_recovers() {
        // 100 subgroups of 1M params; staging one costs 18 MB. Budget: the
        // footprint of ~10 staged subgroups.
        let budget = 10 * 18_000_000u64;
        let cfg = WallClockTunerConfig {
            residents: ResidentPolicy::Headroom { fraction: 0.5, cap: 0.2 },
            host_budget_bytes: budget,
            base_residents: 12,
            ..WallClockTunerConfig::default()
        };
        let mut tuner = WallClockTuner::new(cfg, 100_000_000, 1_000_000);
        assert_eq!(tuner.static_residents(), 12);

        // Constrained pool: high-water blows past the budget every
        // iteration; the tail must shrink monotonically toward zero.
        let mut seen = vec![tuner.static_residents()];
        for _ in 0..12 {
            tuner.observe_arena(2 * budget as usize);
            seen.push(tuner.static_residents());
        }
        assert!(
            seen.windows(2).all(|w| w[1] <= w[0]),
            "constrained pool must never grow the tail: {seen:?}"
        );
        let low = tuner.static_residents();
        assert!(low < 12, "constrained pool must shrink the tail: {seen:?}");

        // Relaxed pool: ample headroom grows the tail back, but never past
        // the cap (20% of 100 subgroups).
        for _ in 0..12 {
            tuner.observe_arena(budget as usize / 10);
        }
        let recovered = tuner.static_residents();
        assert!(recovered > low, "headroom must recover the tail: {low} -> {recovered}");
        assert!(recovered <= 20, "cap respected: {recovered}");
        assert!(tuner.decisions().iter().any(|d| d.kind == DecisionKind::Residents));
    }

    #[test]
    fn wall_tuner_fixed_policy_ignores_arena_pressure() {
        let cfg = WallClockTunerConfig {
            base_residents: 5,
            host_budget_bytes: 1,
            ..WallClockTunerConfig::default()
        };
        let mut tuner = WallClockTuner::new(cfg, 100_000_000, 1_000_000);
        tuner.observe_arena(usize::MAX / 2);
        assert_eq!(tuner.static_residents(), 5);
        assert!(tuner.decisions().is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Hysteresis + cooldown bound the number of retunes regardless of
        /// how wildly the observed bandwidth oscillates.
        #[test]
        fn retunes_are_bounded_by_the_cooldown(
            bs in proptest::collection::vec(0.3e9f64..8.0e9, 1..24),
            cooldown in 1usize..5,
        ) {
            let cfg = train();
            let ctl_cfg = ControllerConfig {
                min_iters_between_retunes: cooldown,
                ..ControllerConfig::default()
            };
            let mut ctl = Controller::new(ctl_cfg, &cfg);
            let n = bs.len();
            for (i, b) in bs.into_iter().enumerate() {
                let _ = ctl.plan_iteration(i, &cfg);
                ctl.observe_iteration(i, &report_with_b(b, false));
            }
            prop_assert!(ctl.retunes() <= 1 + (n.saturating_sub(1)) / cooldown);
        }

        /// Whatever the observations, the planned stride is always a
        /// finite positive integer within the configured bound (or the
        /// explicit CpuOnly policy — never zero, never unbounded).
        #[test]
        fn planned_stride_is_always_bounded(
            bs in proptest::collection::vec(0.1e9f64..16.0e9, 1..24),
            ooms in proptest::collection::vec(any::<bool>(), 24),
        ) {
            let cfg = train();
            let mut ctl = Controller::new(ControllerConfig::default(), &cfg);
            for (i, b) in bs.into_iter().enumerate() {
                let _ = ctl.plan_iteration(i, &cfg);
                match ctl.stride_policy() {
                    StridePolicy::Fixed(k) => prop_assert!((1..=8).contains(&k)),
                    StridePolicy::CpuOnly => {}
                    other => prop_assert!(false, "unexpected policy {other:?}"),
                }
                ctl.observe_iteration(i, &report_with_b(b, ooms[i % ooms.len()]));
            }
        }
    }
}
