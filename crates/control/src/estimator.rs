//! Online estimators of Equation 1's inputs.
//!
//! Both feeds reduce one iteration's spans to at most one sample per
//! input (work-weighted, so short subgroups don't dominate) and fold it
//! into an exponentially-weighted moving average. `B` is tracked per PCIe
//! direction and exposed as the minimum — Equation 1's `B` is the
//! effective rate of the slower direction, since prefetch (H2D) and flush
//! (D2H) both move `3S` of FP32 state per GPU subgroup.

use dos_hal::PerfModelInputs;
use dos_telemetry::{EventKind, Timeline, TraceEvent};

/// An exponentially-weighted moving average over positive samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an empty estimator with smoothing factor `alpha`
    /// (weight of the newest sample).
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is in `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Creates an estimator pre-seeded with `value` (a calibration prior).
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is in `(0, 1]`.
    pub fn seeded(alpha: f64, value: f64) -> Ewma {
        let mut e = Ewma::new(alpha);
        e.observe(value);
        e
    }

    /// Folds one sample in. Non-finite or non-positive samples are
    /// rejected (a zero-duration span must not poison the estimate).
    pub fn observe(&mut self, sample: f64) {
        if !sample.is_finite() || sample <= 0.0 {
            return;
        }
        self.value = Some(match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        });
    }

    /// The current estimate, if any sample has been accepted.
    pub fn get(&self) -> Option<f64> {
        self.value
    }
}

/// EWMA estimators for all four Equation 1 inputs, fed from either clock.
#[derive(Debug, Clone)]
pub struct InputEstimators {
    nominal: PerfModelInputs,
    contention: f64,
    uc: Ewma,
    dc: Ewma,
    ug: Ewma,
    b_h2d: Ewma,
    b_d2h: Ewma,
}

/// Per-iteration aggregates: (work, duration) per input category.
#[derive(Default)]
struct Aggregates {
    uc: (f64, f64),
    dc: (f64, f64),
    ug: (f64, f64),
    b_h2d: (f64, f64),
    b_d2h: (f64, f64),
}

impl InputEstimators {
    /// Estimators seeded from a calibrated profile (`nominal`), with the
    /// profile's DRAM-contention factor used to de-bias CPU samples taken
    /// while interleaving was active.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is in `(0, 1]` and `contention` in `(0, 1]`.
    pub fn seeded(nominal: PerfModelInputs, contention: f64, alpha: f64) -> InputEstimators {
        assert!(contention > 0.0 && contention <= 1.0, "contention must be in (0, 1]");
        InputEstimators {
            nominal,
            contention,
            uc: Ewma::seeded(alpha, nominal.uc),
            dc: Ewma::seeded(alpha, nominal.dc),
            ug: Ewma::seeded(alpha, nominal.ug),
            b_h2d: Ewma::seeded(alpha, nominal.b),
            b_d2h: Ewma::seeded(alpha, nominal.b),
        }
    }

    /// Unseeded estimators for wall-clock feeds with no calibrated prior.
    /// All four inputs — including `D_c`, which the threaded pipeline now
    /// traces as its own `downscale:sg*` span per CPU subgroup — start
    /// empty and converge on real samples.
    pub fn wall(alpha: f64) -> InputEstimators {
        InputEstimators {
            nominal: PerfModelInputs { b: 1.0, ug: 1.0, uc: 1.0, dc: 1.0 },
            contention: 1.0,
            uc: Ewma::new(alpha),
            dc: Ewma::new(alpha),
            ug: Ewma::new(alpha),
            b_h2d: Ewma::new(alpha),
            b_d2h: Ewma::new(alpha),
        }
    }

    /// Replaces every estimate with the given prior (used to start a run
    /// from deliberately wrong inputs and watch the loop converge).
    pub fn reseed(&mut self, prior: PerfModelInputs) {
        for (e, v) in [
            (&mut self.uc, prior.uc),
            (&mut self.dc, prior.dc),
            (&mut self.ug, prior.ug),
            (&mut self.b_h2d, prior.b),
            (&mut self.b_d2h, prior.b),
        ] {
            *e = Ewma::new(e.alpha);
            e.observe(v);
        }
    }

    /// The current input estimates, once every input has a value. `b` is
    /// the slower PCIe direction.
    pub fn inputs(&self) -> Option<PerfModelInputs> {
        let b = match (self.b_h2d.get(), self.b_d2h.get()) {
            (Some(h), Some(d)) => h.min(d),
            (Some(h), None) => h,
            (None, Some(d)) => d,
            (None, None) => return None,
        };
        Some(PerfModelInputs {
            b,
            ug: self.ug.get()?,
            uc: self.uc.get()?,
            dc: self.dc.get()?,
        })
    }

    fn fold(&mut self, agg: Aggregates, uc_scale: f64, dc_scale: f64, ug_scale: f64, comp: f64) {
        let throughput = |(work, dur): (f64, f64)| if dur > 0.0 { work / dur } else { 0.0 };
        self.uc.observe(throughput(agg.uc) * uc_scale / comp);
        self.dc.observe(throughput(agg.dc) * dc_scale / comp);
        self.ug.observe(throughput(agg.ug) * ug_scale);
        self.b_h2d.observe(throughput(agg.b_h2d) / 4.0);
        self.b_d2h.observe(throughput(agg.b_d2h) / 4.0);
    }

    /// Feeds one simulated iteration's update-phase spans.
    ///
    /// Simulated compute spans carry `work` in *seconds at the nominal
    /// rate* (the HAL convention), so `work/duration` is the achieved
    /// fraction of nominal and multiplying by the nominal throughput
    /// recovers the achieved params/s. Transfer spans carry bytes; Eq. 1's
    /// `B` counts FP32 params, hence the `/4`. When `interleaved` is set,
    /// observed CPU throughputs are divided by the contention factor so
    /// the estimate matches the paper's *uncontended* calibration inputs
    /// (Equation 1 is derived from those; the predictor re-applies the
    /// factor on its own).
    pub fn observe_sim_timeline(&mut self, tl: &Timeline, interleaved: bool) {
        let mut agg = Aggregates::default();
        for sp in tl.spans() {
            if sp.phase != "update" {
                continue;
            }
            let dur = sp.duration();
            let slot = if sp.label.starts_with("cpu-update:") {
                &mut agg.uc
            } else if sp.label.starts_with("downscale:") {
                &mut agg.dc
            } else if sp.label.starts_with("gpu-update:") {
                &mut agg.ug
            } else if sp.label.starts_with("prefetch-") || sp.label.starts_with("h2d-params16:")
            {
                &mut agg.b_h2d
            } else if sp.label.starts_with("flush-") {
                &mut agg.b_d2h
            } else {
                continue;
            };
            slot.0 += sp.work;
            slot.1 += dur;
        }
        let comp = if interleaved { self.contention } else { 1.0 };
        let (uc, dc, ug) = (self.nominal.uc, self.nominal.dc, self.nominal.ug);
        self.fold(agg, uc, dc, ug, comp);
    }

    /// Feeds one functional iteration's wall-clock spans (from
    /// `hybrid_update_traced`). Wall spans carry `work` directly in
    /// params (CPU/GPU updates) or bytes (staging transfers), so no
    /// nominal conversion is needed.
    pub fn observe_wall_events(&mut self, events: &[TraceEvent]) {
        let mut agg = Aggregates::default();
        for ev in events {
            if ev.kind != EventKind::Span || ev.phase != "update" || ev.dur <= 0.0 {
                continue;
            }
            let slot = match ev.resource.as_str() {
                "cpu" if ev.name.starts_with("update:sg") => &mut agg.uc,
                "cpu" if ev.name.starts_with("downscale:sg") => &mut agg.dc,
                "gpu" if ev.name.starts_with("update:sg") => &mut agg.ug,
                "pcie.h2d" if ev.name.starts_with("prefetch:sg") => &mut agg.b_h2d,
                "pcie.d2h" if ev.name.starts_with("flush:sg") => &mut agg.b_d2h,
                _ => continue,
            };
            slot.0 += ev.work;
            slot.1 += ev.dur;
        }
        self.fold(agg, 1.0, 1.0, 1.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_follows_samples_and_rejects_garbage() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        e.observe(4.0);
        assert_eq!(e.get(), Some(4.0));
        e.observe(2.0);
        assert_eq!(e.get(), Some(3.0));
        e.observe(f64::NAN);
        e.observe(-1.0);
        e.observe(0.0);
        assert_eq!(e.get(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_alpha_validated() {
        let _ = Ewma::new(0.0);
    }

    fn h100_nominal() -> PerfModelInputs {
        PerfModelInputs { b: 4.0e9, ug: 25.0e9, uc: 2.0e9, dc: 15.5e9 }
    }

    /// Record one subgroup's worth of simulated update-phase spans with a
    /// chosen effective slowdown on each category.
    fn sim_timeline(nominal: PerfModelInputs, b_eff: f64, uc_eff: f64) -> Timeline {
        let s = 1.0e8;
        let mut tl = Timeline::new();
        // compute spans: work = seconds at nominal rate.
        tl.record("cpu", "cpu-update:sg0", "update", 0.0, s / uc_eff, s / nominal.uc);
        tl.record("cpu", "downscale:sg0", "update", 0.0, s / nominal.dc, s / nominal.dc);
        tl.record("gpu", "gpu-update:sg1", "update", 0.0, s / nominal.ug, s / nominal.ug);
        // transfer spans: work = bytes; duration = bytes / (4 * B_eff).
        let pf_bytes = 4.0 * s;
        tl.record("pcie.h2d", "prefetch-momentum:sg1", "update", 0.0, pf_bytes / (4.0 * b_eff), pf_bytes);
        let p16_bytes = 2.0 * s;
        tl.record("pcie.h2d", "h2d-params16:sg0", "update", 0.0, p16_bytes / (4.0 * b_eff), p16_bytes);
        tl.record("pcie.d2h", "flush-param:sg1", "update", 0.0, pf_bytes / (4.0 * b_eff), pf_bytes);
        // Non-update-phase and unknown labels must be ignored.
        tl.record("pcie.h2d", "h2d-accum-grads:l0", "backward", 0.0, 1.0, 1e12);
        tl.record("gpu", "d2d-half:sg1", "update", 0.0, 1.0, 1e12);
        tl
    }

    #[test]
    fn sim_feed_recovers_nominal_inputs_when_healthy() {
        let nom = h100_nominal();
        let mut est = InputEstimators::seeded(nom, 0.75, 1.0);
        est.observe_sim_timeline(&sim_timeline(nom, nom.b, nom.uc), false);
        let got = est.inputs().unwrap();
        assert!((got.b - nom.b).abs() / nom.b < 1e-9, "b = {}", got.b);
        assert!((got.uc - nom.uc).abs() / nom.uc < 1e-9);
        assert!((got.dc - nom.dc).abs() / nom.dc < 1e-9);
        assert!((got.ug - nom.ug).abs() / nom.ug < 1e-9);
    }

    #[test]
    fn contention_compensation_removes_the_interleaving_bias() {
        let nom = h100_nominal();
        let mut est = InputEstimators::seeded(nom, 0.75, 1.0);
        // While interleaving, the engine runs the CPU at 0.75x; the
        // compensated estimate must still read the uncontended U_c.
        est.observe_sim_timeline(&sim_timeline(nom, nom.b, nom.uc * 0.75), true);
        let got = est.inputs().unwrap();
        assert!((got.uc - nom.uc).abs() / nom.uc < 1e-9, "uc = {}", got.uc);
    }

    #[test]
    fn degraded_link_shows_up_as_the_min_direction() {
        let nom = h100_nominal();
        let mut est = InputEstimators::seeded(nom, 0.75, 1.0);
        est.observe_sim_timeline(&sim_timeline(nom, 0.6e9, nom.uc), false);
        let got = est.inputs().unwrap();
        assert!((got.b - 0.6e9).abs() / 0.6e9 < 1e-9, "b = {}", got.b);
    }

    #[test]
    fn wall_feed_reads_pipeline_spans() {
        let mut est = InputEstimators::wall(1.0);
        let mk = |resource: &str, name: &str, dur: f64, work: f64| TraceEvent {
            track: "cpu".into(),
            name: name.into(),
            phase: "update".into(),
            resource: resource.into(),
            start: 0.0,
            dur,
            work,
            depth: 0,
            kind: EventKind::Span,
        };
        let events = vec![
            mk("cpu", "update:sg0", 0.5, 1.0e9),       // 2e9 params/s
            mk("cpu", "downscale:sg0", 0.1, 1.0e9),    // 10e9 params/s
            mk("gpu", "update:sg1", 0.1, 2.5e9),       // 25e9 params/s
            mk("pcie.h2d", "prefetch:sg1", 0.4, 6.4e9), // 6.4e9/(4*0.4) = 4e9
            mk("pcie.d2h", "flush:sg1", 0.2, 2.8e9),   // 3.5e9
            mk("cpu", "not-an-update", 1.0, 1e15),
        ];
        est.observe_wall_events(&events);
        let got = est.inputs().unwrap();
        assert!((got.uc - 2.0e9).abs() < 1.0);
        assert!((got.dc - 10.0e9).abs() < 1.0, "wall D_c reads its own span: {}", got.dc);
        assert!((got.ug - 25.0e9).abs() < 1.0);
        assert!((got.b - 3.5e9).abs() < 1.0, "min(h2d, d2h) = {}", got.b);
    }

    /// Satellite regression for the unpinned wall-clock `D_c`: replay a
    /// recorded stream of per-iteration pipeline spans whose downscale
    /// throughput settles at a steady rate, and require the EWMA to
    /// converge onto it (it used to stay pinned at 1e30 forever).
    #[test]
    fn wall_dc_converges_on_recorded_downscale_stream() {
        let mut est = InputEstimators::wall(0.3);
        let mk = |resource: &str, name: &str, dur: f64, work: f64| TraceEvent {
            track: "cpu".into(),
            name: name.into(),
            phase: "update".into(),
            resource: resource.into(),
            start: 0.0,
            dur,
            work,
            depth: 0,
            kind: EventKind::Span,
        };
        // Recorded per-iteration downscale throughputs (params/s): a cold
        // first iteration, then a steady 8.7e8 — the vectorized kernel's
        // measured rate.
        let warmup = [2.0e8, 8.0e8, 8.6e8, 8.8e8];
        let recorded: Vec<f64> =
            warmup.into_iter().chain(std::iter::repeat_n(8.7e8, 16)).collect();
        for dc_pps in recorded {
            let work = 1.0e6; // one subgroup of a million params
            let events = vec![
                mk("cpu", "update:sg0", work / 8.5e8, work),
                mk("cpu", "downscale:sg0", work / dc_pps, work),
                mk("gpu", "update:sg1", work / 2.5e10, work),
                mk("pcie.h2d", "prefetch:sg1", 1e-3, 1.6e7),
                mk("pcie.d2h", "flush:sg1", 1e-3, 1.4e7),
            ];
            est.observe_wall_events(&events);
        }
        let got = est.inputs().unwrap();
        let rel = (got.dc - 8.7e8).abs() / 8.7e8;
        assert!(rel < 0.02, "D_c must converge on the recorded rate, got {} ({rel})", got.dc);
        assert!(got.dc < 1e10, "D_c must be a real measurement, not a pin");
    }

    #[test]
    fn inputs_absent_until_every_estimator_has_a_sample() {
        let est = InputEstimators::wall(0.5);
        assert!(est.inputs().is_none());
    }
}
