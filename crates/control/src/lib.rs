//! # dos-control — adaptive feedback control plane
//!
//! The paper solves Equation 1 *once*, from standalone calibration runs,
//! and pins the update stride `k` for the whole training job. This crate
//! closes the loop instead: it watches the spans every iteration actually
//! produced, maintains online estimates of Equation 1's four inputs, and
//! retunes the schedule while training runs.
//!
//! The control loop is a classic estimator → solver → hysteresis →
//! actuator pipeline:
//!
//! * [`InputEstimators`] — per-input EWMA estimators of `U_c`, `U_g`, `B`
//!   (per PCIe direction), and `D_c`, fed from either clock: simulated
//!   interval logs ([`InputEstimators::observe_sim_timeline`]) or
//!   wall-clock spans from `hybrid_update_traced`
//!   ([`InputEstimators::observe_wall_events`]). Observed CPU throughputs
//!   are divided by the known DRAM-contention factor while interleaving is
//!   active, so the estimates stay comparable to the paper's standalone
//!   measurements.
//! * [`Controller`] — implements `dos-sim`'s `IterationController` hook:
//!   re-solves Equation 1 on the current estimates each iteration, retunes
//!   the stride only when the *predicted* gain clears a hysteresis
//!   threshold (so `k` never oscillates), sizes the GPU-resident tail
//!   against observed `MemoryPool` headroom ([`ResidentPolicy`]), and
//!   drives the degradation ladder ([`LadderRung`]: DOS → residents-only →
//!   CPU-only) as explicit state transitions *with recovery edges*.
//! * [`race_adaptive_vs_static`] — the experiment driver: races the
//!   adaptive controller against the paper's static `StridePolicy::Auto`
//!   under a pinned, iteration-indexed fault plan ([`DegradationSpec`])
//!   and reports both arms' update times plus the full decision log.
//! * [`WallClockTuner`] — the functional-trainer variant: the same
//!   hysteresis loop fed purely from wall-clock pipeline spans, used by
//!   `dos-runtime` when a config selects `"adaptive"` stride.
//!
//! Every decision is recorded as a [`ControlDecision`] and, when a tracer
//! is attached, as a `control:*` instant on the dedicated `control` track
//! (`dos_telemetry::CONTROL_TRACK`), so retunes and ladder transitions are
//! visible next to the schedule they changed in the exported Perfetto
//! trace.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The control plane sits on the training path: failures must surface as
// values, not panics; tests may assert freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod controller;
mod driver;
mod estimator;
mod gate;

pub use controller::{
    ControlDecision, Controller, ControllerConfig, DecisionKind, LadderRung, ResidentPolicy,
    WallClockTuner, WallClockTunerConfig,
};
pub use driver::{fault_plan_for, race_adaptive_vs_static, DegradationSpec, RaceReport};
pub use estimator::{Ewma, InputEstimators};
pub use gate::{SweepGate, SweepOutcome};
