//! Decision pins for the shared sweep + hysteresis gate.
//!
//! Both gate callers — the simulated-engine [`Controller`] and the
//! functional-trainer [`WallClockTuner`] — are driven over *recorded*
//! sample streams (a fixed sequence of effective PCIe rates), and their
//! full decision logs are pinned verbatim. The gate extraction must not
//! change a single decision, threshold crossing, or rendered gain.

use dos_control::{Controller, ControllerConfig, WallClockTuner, WallClockTunerConfig};
use dos_core::StridePolicy;
use dos_hal::HardwareProfile;
use dos_nn::ModelSpec;
use dos_sim::{IterationController, IterationReport, ResourceUtilization, TrainConfig};
use dos_telemetry::{EventKind, Timeline, TraceEvent};

fn train() -> TrainConfig {
    TrainConfig::deep_optimizer_states(
        ModelSpec::by_name("20B").expect("20B in the zoo"),
        HardwareProfile::jlse_h100(),
    )
}

/// A synthetic report whose only informative spans are PCIe transfers at
/// an effective rate of `b_eff` params/s per direction (same construction
/// as the controller's own unit tests).
fn report_with_b(b_eff: f64) -> IterationReport {
    let s = 1.0e8_f64;
    let mut tl = Timeline::new();
    tl.record("pcie.h2d", "h2d-params16:sg0", "update", 0.0, 2.0 * s / (4.0 * b_eff), 2.0 * s);
    tl.record("pcie.d2h", "flush-momentum:sg0", "update", 0.0, 4.0 * s / (4.0 * b_eff), 4.0 * s);
    IterationReport {
        scheduler: "test".into(),
        model: "20B".into(),
        forward_secs: 0.0,
        backward_secs: 0.0,
        update_secs: 1.0,
        total_secs: 1.0,
        spill_secs: 0.0,
        tflops_per_gpu: 0.0,
        update_pps_per_rank: 0.0,
        gpu_peak_bytes: 0,
        oom: None,
        host_oom: None,
        update_utilization: ResourceUtilization::default(),
        timeline: tl,
    }
}

/// The recorded degradation/recovery stream both pins replay: healthy,
/// slow decay, hard degradation, then full recovery.
const B_STREAM: [f64; 12] = [
    4.0e9, 4.0e9, 2.0e9, 1.2e9, 0.8e9, 0.5e9, 0.5e9, 0.5e9, 4.0e9, 4.0e9, 4.0e9, 4.0e9,
];

fn controller_decision_log() -> Vec<String> {
    let cfg = train();
    let mut ctl = Controller::new(ControllerConfig::default(), &cfg);
    for (i, &b) in B_STREAM.iter().enumerate() {
        let _ = ctl.plan_iteration(i, &cfg);
        ctl.observe_iteration(i, &report_with_b(b));
    }
    let _ = ctl.plan_iteration(B_STREAM.len(), &cfg);
    ctl.decisions().iter().map(|d| format!("{:?} {}", d.kind, d.detail)).collect()
}

fn tuner_decision_log() -> (Vec<String>, StridePolicy, usize) {
    let mk = |resource: &str, name: &str, dur: f64, work: f64| TraceEvent {
        track: "cpu".into(),
        name: name.into(),
        phase: "update".into(),
        resource: resource.into(),
        start: 0.0,
        dur,
        work,
        depth: 0,
        kind: EventKind::Span,
    };
    let events_at = |b: f64| {
        vec![
            mk("cpu", "update:sg0", 0.5, 1.0e9),
            mk("cpu", "downscale:sg0", 0.1, 1.0e9),
            mk("gpu", "update:sg1", 0.1, 2.5e9),
            mk("pcie.h2d", "prefetch:sg1", 1.0e9 / b, 4.0 * 1.0e9),
            mk("pcie.d2h", "flush:sg1", 1.0e9 / b, 4.0 * 1.0e9),
        ]
    };
    let cfg = WallClockTunerConfig { alpha: 1.0, ..WallClockTunerConfig::default() };
    let mut tuner = WallClockTuner::new(cfg, 5_000_000_000, 100_000_000);
    for &b in &B_STREAM {
        tuner.observe(&events_at(b));
    }
    let log = tuner.decisions().iter().map(|d| format!("{:?} {}", d.kind, d.detail)).collect();
    (log, tuner.stride_policy(), tuner.retunes())
}

#[test]
fn controller_decisions_on_recorded_stream_are_pinned() {
    let want = vec![
        "Seed seed:k2",
        "Retune k2->k3 (predicted gain 19.2%)",
        "Retune k3->k4 (predicted gain 15.4%)",
        "Retune k4->k7 (predicted gain 20.2%)",
        "Retune k7->k8 (predicted gain 5.3%)",
        "Ladder descend:residents-only (eq1 unsolvable, was k8)",
        "Recover recover:dos k8 (predicted gain 29.8%)",
        "Retune k8->k3 (predicted gain 23.8%)",
    ];
    assert_eq!(controller_decision_log(), want);
}

#[test]
fn tuner_decisions_on_recorded_stream_are_pinned() {
    // Re-pinned when wall-clock `D_c` was unpinned: the synthetic stream
    // now carries `downscale:sg*` spans (D_c = 1e10 params/s), which
    // shifts every predicted gain and keeps Equation 1's CPU-only retreat
    // out of reach on this particular stream (the deep-degradation ladder
    // is exercised by the tuner's unit tests instead).
    let want = vec![
        "Retune k2->k3 (predicted gain 12.6%)",
        "Retune k3->k6 (predicted gain 26.5%)",
        "Retune k6->k8 (predicted gain 11.5%)",
        "Retune k8->k3 (predicted gain 23.8%)",
    ];
    let (log, policy, retunes) = tuner_decision_log();
    assert_eq!(log, want);
    assert_eq!(policy, StridePolicy::Fixed(3));
    assert_eq!(retunes, 4);
}
