//! Subgroup partitioning of a flat parameter space.
//!
//! ZeRO-3 splits each rank's parameter shard into fixed-size *subgroups*
//! (§2, Figure 1(c)): the unit of optimizer-state movement and of update
//! scheduling. Deep Optimizer States schedules whole subgroups onto the CPU
//! or GPU; the paper uses 100 M parameters per subgroup and shows the choice
//! does not affect iteration time (Figure 2, and Eq. 1 is independent of the
//! subgroup size).

use serde::{Deserialize, Serialize};

/// One contiguous subgroup of the flat parameter space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubgroupSpec {
    /// Subgroup index within its rank (0-based, in parameter order).
    pub id: usize,
    /// First flat parameter index (inclusive).
    pub start: usize,
    /// One past the last flat parameter index.
    pub end: usize,
}

impl SubgroupSpec {
    /// Number of parameters in the subgroup.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the subgroup is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The subgroup as a range.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Bytes of FP32 optimizer state (parameters + momentum + variance).
    pub fn optimizer_bytes(&self) -> u64 {
        3 * 4 * self.len() as u64
    }

    /// Bytes of the FP16 parameter copy.
    pub fn fp16_param_bytes(&self) -> u64 {
        2 * self.len() as u64
    }
}

/// Splits `total` parameters into subgroups of at most `subgroup_size`.
///
/// The final subgroup absorbs the remainder (DeepSpeed's behaviour).
///
/// # Panics
///
/// Panics if `subgroup_size` is zero.
pub fn partition_into_subgroups(total: usize, subgroup_size: usize) -> Vec<SubgroupSpec> {
    assert!(subgroup_size > 0, "subgroup_size must be positive");
    let mut out = Vec::with_capacity(total.div_ceil(subgroup_size));
    let mut start = 0;
    let mut id = 0;
    while start < total {
        let end = (start + subgroup_size).min(total);
        out.push(SubgroupSpec { id, start, end });
        start = end;
        id += 1;
    }
    out
}

/// The contiguous slice of a flat space owned by `rank` out of `world`
/// ranks, with the remainder spread over the first ranks (sizes differ by at
/// most one).
///
/// # Panics
///
/// Panics if `world` is zero or `rank >= world`.
pub fn rank_range(total: usize, rank: usize, world: usize) -> std::ops::Range<usize> {
    assert!(world > 0, "world must be positive");
    assert!(rank < world, "rank {rank} out of range for world {world}");
    let base = total / world;
    let extra = total % world;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subgroups_tile_the_space_exactly() {
        let sgs = partition_into_subgroups(1050, 100);
        assert_eq!(sgs.len(), 11);
        assert_eq!(sgs[0].range(), 0..100);
        assert_eq!(sgs[10].range(), 1000..1050);
        assert_eq!(sgs.iter().map(SubgroupSpec::len).sum::<usize>(), 1050);
        for w in sgs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert_eq!(w[0].id + 1, w[1].id);
        }
    }

    #[test]
    fn exact_division_has_no_remainder_group() {
        let sgs = partition_into_subgroups(400, 100);
        assert_eq!(sgs.len(), 4);
        assert!(sgs.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn empty_space_has_no_subgroups() {
        assert!(partition_into_subgroups(0, 100).is_empty());
    }

    #[test]
    fn subgroup_byte_accounting() {
        let sg = SubgroupSpec { id: 0, start: 0, end: 100_000_000 };
        // 100M params: 1.2 GB of FP32 p+m+v, as §5.3 computes.
        assert_eq!(sg.optimizer_bytes(), 1_200_000_000);
        assert_eq!(sg.fp16_param_bytes(), 200_000_000);
        assert!(!sg.is_empty());
    }

    #[test]
    fn rank_ranges_partition_disjointly() {
        let total = 103;
        let world = 4;
        let mut covered = vec![false; total];
        for rank in 0..world {
            for i in rank_range(total, rank, world) {
                assert!(!covered[i], "index {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
        // Sizes differ by at most one.
        let sizes: Vec<usize> = (0..world).map(|r| rank_range(total, r, world).len()).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_bounds_checked() {
        let _ = rank_range(10, 4, 4);
    }
}
