//! Per-rank memory estimation (the Table 2 accounting and the OOM check of
//! Figure 13).
//!
//! For a model, a ZeRO stage, a world size, and an offload configuration,
//! [`MemoryEstimator`] computes where every byte lives: FP16 parameters and
//! gradients on the GPU, activations or activation checkpoints, statically
//! GPU-resident optimizer subgroups (the TwinFlow ratio), and the
//! host-resident remainder.

use serde::{Deserialize, Serialize};

use dos_nn::ModelSpec;

use crate::stage::{ZeroPartition, ZeroStage};

/// Where the optimizer state lives and how activations are handled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OffloadConfig {
    /// Fraction of optimizer subgroups statically resident on the GPU
    /// (TwinFlow's "user-defined ratio"; 0.0 = fully host-offloaded, which
    /// is DeepSpeed ZeRO-3 CPU offload).
    pub gpu_resident_ratio: f64,
    /// Whether activation checkpointing is enabled (§5.3 enables it for all
    /// experiments).
    pub activation_checkpointing: bool,
    /// Subgroup size in parameters (paper default: 100 M).
    pub subgroup_params: usize,
    /// Push the FP32 optimizer state one tier further, to NVMe
    /// (ZeRO-Infinity style; the paper's §6 future work). The host then
    /// holds only a small staging window of subgroups.
    pub optimizer_on_nvme: bool,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        OffloadConfig {
            gpu_resident_ratio: 0.0,
            activation_checkpointing: true,
            subgroup_params: 100_000_000,
            optimizer_on_nvme: false,
        }
    }
}

/// A per-rank memory breakdown, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RankMemory {
    /// FP16 model parameters on the GPU.
    pub gpu_params: u64,
    /// FP16 gradients on the GPU (peak, during backward).
    pub gpu_grads: u64,
    /// Activations or activation checkpoints on the GPU (peak, end of
    /// forward).
    pub gpu_activations: u64,
    /// Transient recompute workspace for one layer during backward (only
    /// with activation checkpointing).
    pub gpu_recompute_workspace: u64,
    /// Statically GPU-resident FP32 optimizer subgroups (TwinFlow).
    pub gpu_optimizer_static: u64,
    /// Transient FP32 buffer for one in-flight subgroup (p, m, v) used by
    /// dynamic GPU updates.
    pub gpu_subgroup_buffer: u64,
    /// Host-resident FP32 optimizer state (p, m, v).
    pub host_optimizer: u64,
    /// Host-resident FP32 gradient buffer.
    pub host_grads: u64,
    /// Pinned FP16 staging buffers (downscaled parameters awaiting H2D and
    /// the gradient-flush destination window).
    pub host_staging: u64,
}

impl RankMemory {
    /// Peak GPU bytes (activations and gradients overlap at the
    /// forward/backward boundary; we take the conservative sum).
    pub fn gpu_peak(&self) -> u64 {
        self.gpu_params
            + self.gpu_grads
            + self.gpu_activations
            + self.gpu_recompute_workspace
            + self.gpu_optimizer_static
            + self.gpu_subgroup_buffer
    }

    /// Total host bytes.
    pub fn host_total(&self) -> u64 {
        self.host_optimizer + self.host_grads + self.host_staging
    }
}

/// Computes per-rank memory for a model under a ZeRO + offload
/// configuration.
#[derive(Debug, Clone)]
pub struct MemoryEstimator {
    spec: ModelSpec,
    stage: ZeroStage,
    world: usize,
    offload: OffloadConfig,
}

// OffloadConfig is Copy-friendly for the ratio sweep below.

impl MemoryEstimator {
    /// Creates an estimator.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero or the ratio is outside `[0, 1]`.
    pub fn new(
        spec: ModelSpec,
        stage: ZeroStage,
        world: usize,
        offload: OffloadConfig,
    ) -> MemoryEstimator {
        assert!(world > 0, "world must be positive");
        assert!(
            (0.0..=1.0).contains(&offload.gpu_resident_ratio),
            "gpu_resident_ratio must be within [0, 1]"
        );
        MemoryEstimator { spec, stage, world, offload }
    }

    /// The model being estimated.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Per-rank memory at the given micro-batch size.
    pub fn per_rank(&self, micro_batch: usize) -> RankMemory {
        let part = ZeroPartition::new(self.stage, self.world, 0);
        let p = self.spec.param_count();
        let per_rank_params = p / self.world as u64;

        let gpu_activations = if self.offload.activation_checkpointing {
            self.spec.activation_checkpoint_bytes(micro_batch)
        } else {
            self.spec.activation_bytes(micro_batch)
        };
        let gpu_recompute_workspace = if self.offload.activation_checkpointing {
            // During backward one layer's activations are re-materialized
            // and their gradient buffers coexist with them: two full copies
            // of a single layer's activation footprint.
            2 * self.spec.activation_bytes(micro_batch) / self.spec.num_layers as u64
        } else {
            0
        };
        let optimizer_total = 12 * per_rank_params;
        let gpu_optimizer_static =
            (optimizer_total as f64 * self.offload.gpu_resident_ratio) as u64;
        let offloaded = optimizer_total - gpu_optimizer_static;
        // On NVMe, the host keeps a staging window of 4 subgroups instead
        // of the full state.
        let host_optimizer = if self.offload.optimizer_on_nvme {
            (12 * self.offload.subgroup_params as u64 * 4).min(offloaded)
        } else {
            offloaded
        };

        RankMemory {
            gpu_params: part.gpu_param_bytes(p),
            gpu_grads: part.gpu_grad_bytes(p),
            gpu_activations,
            gpu_recompute_workspace,
            gpu_optimizer_static,
            gpu_subgroup_buffer: 12 * self.offload.subgroup_params as u64,
            host_optimizer,
            host_grads: 4 * per_rank_params,
            host_staging: 2 * per_rank_params,
        }
    }

    /// Whether the configuration fits a GPU with `gpu_capacity` bytes at the
    /// given micro-batch (the Figure 13 OOM check).
    pub fn fits_gpu(&self, micro_batch: usize, gpu_capacity: u64) -> bool {
        self.per_rank(micro_batch).gpu_peak() <= gpu_capacity
    }

    /// The largest micro-batch (power of two, up to `max`) that fits, or
    /// `None` if even micro-batch 1 does not fit.
    pub fn max_micro_batch(&self, gpu_capacity: u64, max: usize) -> Option<usize> {
        let mut best = None;
        let mut mb = 1;
        while mb <= max {
            if self.fits_gpu(mb, gpu_capacity) {
                best = Some(mb);
            }
            mb *= 2;
        }
        best
    }

    /// The largest TwinFlow static-GPU residency ratio (in 1 % steps) that
    /// still fits `gpu_capacity` at `micro_batch` — the profiling chore §2
    /// says "the user is typically responsible" for, automated.
    pub fn max_gpu_resident_ratio(&self, micro_batch: usize, gpu_capacity: u64) -> f64 {
        let mut best = 0.0;
        for step in 0..=100 {
            let ratio = step as f64 / 100.0;
            let mut offload = self.offload;
            offload.gpu_resident_ratio = ratio;
            let est =
                MemoryEstimator::new(self.spec.clone(), self.stage, self.world, offload);
            if est.fits_gpu(micro_batch, gpu_capacity) {
                best = ratio;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    fn estimator(name: &str, ratio: f64) -> MemoryEstimator {
        MemoryEstimator::new(
            ModelSpec::by_name(name).unwrap(),
            ZeroStage::Three,
            4,
            OffloadConfig { gpu_resident_ratio: ratio, ..OffloadConfig::default() },
        )
    }

    #[test]
    fn fully_offloaded_20b_fits_80gb_at_small_batch() {
        // §5.3's premise: collective GPU memory holds fp16 params, act
        // checkpoints, fp16 grads, and one fp32 subgroup.
        let est = estimator("20B", 0.0);
        assert!(est.fits_gpu(1, 80 * GIB), "{:?}", est.per_rank(1));
    }

    #[test]
    fn figure13_ooms_past_microbatch_8() {
        let est = estimator("20B", 0.0);
        assert!(est.fits_gpu(8, 80 * GIB), "{:?}", est.per_rank(8));
        assert!(!est.fits_gpu(16, 80 * GIB), "{:?}", est.per_rank(16));
        assert_eq!(est.max_micro_batch(80 * GIB, 32), Some(8));
    }

    #[test]
    fn twinflow_ratio_moves_bytes_between_devices() {
        let zero = estimator("20B", 0.0).per_rank(1);
        let half = estimator("20B", 0.5).per_rank(1);
        assert_eq!(zero.gpu_optimizer_static, 0);
        assert!(half.gpu_optimizer_static > 0);
        assert!(half.host_optimizer < zero.host_optimizer);
        // Total optimizer bytes conserved.
        assert_eq!(
            zero.gpu_optimizer_static + zero.host_optimizer,
            half.gpu_optimizer_static + half.host_optimizer
        );
    }

    #[test]
    fn ratio_50_on_40gb_ooms_but_20_fits() {
        // §5.4's justification for the 20 % representative ratio: larger
        // ratios OOM on 40 GB A100s.
        let est20 = estimator("20B", 0.2);
        let est50 = estimator("20B", 0.5);
        assert!(est20.fits_gpu(1, 40 * GIB), "{:?}", est20.per_rank(1));
        assert!(!est50.fits_gpu(1, 40 * GIB), "{:?}", est50.per_rank(1));
    }

    #[test]
    fn checkpointing_reduces_gpu_peak() {
        let spec = ModelSpec::by_name("7B").unwrap();
        let with = MemoryEstimator::new(
            spec.clone(),
            ZeroStage::Three,
            4,
            OffloadConfig { activation_checkpointing: true, ..OffloadConfig::default() },
        );
        let without = MemoryEstimator::new(
            spec,
            ZeroStage::Three,
            4,
            OffloadConfig { activation_checkpointing: false, ..OffloadConfig::default() },
        );
        assert!(with.per_rank(4).gpu_peak() < without.per_rank(4).gpu_peak());
    }

    #[test]
    fn host_side_matches_table2_scale() {
        // 20B model: Table 2 lists 294 GB of FP32 optimizer state; per rank
        // (world 4) the host should hold roughly a quarter of p+m+v.
        let est = estimator("20B", 0.0);
        let host = est.per_rank(1).host_optimizer as f64 / 1e9;
        let expected = 12.0 * est.spec().param_count() as f64 / 4.0 / 1e9;
        assert!((host - expected).abs() < 1.0, "host {host} GB vs expected {expected} GB");
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn ratio_validation() {
        let _ = estimator("7B", 1.5);
    }

    #[test]
    fn auto_profiled_twinflow_ratio() {
        // Automates §2's "user profiles and fine-tunes a fixed ratio".
        let est = estimator("20B", 0.0);
        let ratio = est.max_gpu_resident_ratio(1, 80 * GIB);
        assert!((0.5..0.95).contains(&ratio), "20B ratio {ratio}");
        // The found ratio fits; one step more does not.
        let mut offload = OffloadConfig { gpu_resident_ratio: ratio, ..OffloadConfig::default() };
        let fits = MemoryEstimator::new(est.spec().clone(), ZeroStage::Three, 4, offload);
        assert!(fits.fits_gpu(1, 80 * GIB));
        offload.gpu_resident_ratio = (ratio + 0.02).min(1.0);
        let over = MemoryEstimator::new(est.spec().clone(), ZeroStage::Three, 4, offload);
        assert!(!over.fits_gpu(1, 80 * GIB));
        // A 40 GB card can pin almost nothing for 20B.
        assert!(est.max_gpu_resident_ratio(1, 40 * GIB) < 0.25);
    }
}
