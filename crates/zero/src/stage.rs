//! ZeRO redundancy-elimination stages.
//!
//! DeepSpeed's ZeRO partitions training state across data-parallel ranks in
//! three increments (§2): stage 1 shards the optimizer state, stage 2 adds
//! gradients, stage 3 adds the model parameters themselves (with per-layer
//! all-gathers on the forward/backward path). Deep Optimizer States targets
//! stage 3, whose subgroup sharding it schedules, but the scheduling is
//! stage-agnostic (§4.4).

use serde::{Deserialize, Serialize};

use crate::subgroup::{partition_into_subgroups, rank_range, SubgroupSpec};

/// A ZeRO stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZeroStage {
    /// Optimizer state partitioned across ranks.
    One,
    /// Optimizer state + gradients partitioned.
    Two,
    /// Optimizer state + gradients + parameters partitioned.
    Three,
}

impl ZeroStage {
    /// Whether gradients are sharded across ranks.
    pub fn shards_gradients(self) -> bool {
        matches!(self, ZeroStage::Two | ZeroStage::Three)
    }

    /// Whether model parameters are sharded across ranks (requiring
    /// all-gathers during forward/backward).
    pub fn shards_parameters(self) -> bool {
        matches!(self, ZeroStage::Three)
    }
}

/// A rank's view of a ZeRO-partitioned flat parameter space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZeroPartition {
    /// The ZeRO stage.
    pub stage: ZeroStage,
    /// Data-parallel world size.
    pub world: usize,
    /// This rank.
    pub rank: usize,
}

impl ZeroPartition {
    /// Creates a partition descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero or `rank >= world`.
    pub fn new(stage: ZeroStage, world: usize, rank: usize) -> ZeroPartition {
        assert!(world > 0, "world must be positive");
        assert!(rank < world, "rank {rank} out of range for world {world}");
        ZeroPartition { stage, world, rank }
    }

    /// The flat parameter range whose *optimizer state* this rank owns
    /// (sharded in every stage).
    pub fn optimizer_shard(&self, total_params: usize) -> std::ops::Range<usize> {
        rank_range(total_params, self.rank, self.world)
    }

    /// The subgroups of this rank's optimizer shard, re-indexed from zero
    /// (each is at most `subgroup_size` parameters).
    ///
    /// # Panics
    ///
    /// Panics if `subgroup_size` is zero.
    pub fn subgroups(&self, total_params: usize, subgroup_size: usize) -> Vec<SubgroupSpec> {
        let shard = self.optimizer_shard(total_params);
        partition_into_subgroups(shard.len(), subgroup_size)
            .into_iter()
            .map(|sg| SubgroupSpec {
                id: sg.id,
                start: shard.start + sg.start,
                end: shard.start + sg.end,
            })
            .collect()
    }

    /// Per-rank FP16 parameter bytes held on the GPU.
    pub fn gpu_param_bytes(&self, total_params: u64) -> u64 {
        if self.stage.shards_parameters() {
            2 * total_params / self.world as u64
        } else {
            2 * total_params
        }
    }

    /// Per-rank FP16 gradient bytes held on the GPU during backward.
    pub fn gpu_grad_bytes(&self, total_params: u64) -> u64 {
        if self.stage.shards_gradients() {
            2 * total_params / self.world as u64
        } else {
            2 * total_params
        }
    }

    /// Per-rank FP32 optimizer-state bytes (p, m, v), wherever they live.
    pub fn optimizer_bytes(&self, total_params: u64) -> u64 {
        12 * total_params / self.world as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_capabilities() {
        assert!(!ZeroStage::One.shards_gradients());
        assert!(ZeroStage::Two.shards_gradients());
        assert!(!ZeroStage::Two.shards_parameters());
        assert!(ZeroStage::Three.shards_parameters());
    }

    #[test]
    fn optimizer_shards_cover_space() {
        let total = 1001;
        let mut covered = 0;
        for rank in 0..4 {
            let p = ZeroPartition::new(ZeroStage::Three, 4, rank);
            covered += p.optimizer_shard(total).len();
        }
        assert_eq!(covered, total);
    }

    #[test]
    fn subgroups_are_rank_local_and_rebased() {
        let p = ZeroPartition::new(ZeroStage::Three, 4, 1);
        let sgs = p.subgroups(1000, 100);
        let shard = p.optimizer_shard(1000);
        assert_eq!(sgs.first().unwrap().start, shard.start);
        assert_eq!(sgs.last().unwrap().end, shard.end);
        assert_eq!(sgs[0].id, 0);
        assert!(sgs.iter().all(|sg| sg.len() <= 100));
    }

    #[test]
    fn memory_scales_with_stage() {
        let total = 1_000_000u64;
        let s1 = ZeroPartition::new(ZeroStage::One, 4, 0);
        let s3 = ZeroPartition::new(ZeroStage::Three, 4, 0);
        assert_eq!(s1.gpu_param_bytes(total), 2 * total);
        assert_eq!(s3.gpu_param_bytes(total), 2 * total / 4);
        assert_eq!(s1.gpu_grad_bytes(total), 2 * total);
        assert_eq!(s3.gpu_grad_bytes(total), 2 * total / 4);
        // Optimizer is sharded in every stage.
        assert_eq!(s1.optimizer_bytes(total), s3.optimizer_bytes(total));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_validation() {
        let _ = ZeroPartition::new(ZeroStage::Three, 2, 2);
    }
}
