//! # dos-zero — ZeRO-style partitioning and memory accounting
//!
//! The redundancy-elimination substrate of the *Deep Optimizer States*
//! reproduction, mirroring DeepSpeed ZeRO (§2):
//!
//! * [`ZeroStage`]/[`ZeroPartition`] — which of optimizer state, gradients,
//!   and parameters are sharded across data-parallel ranks, and which flat
//!   parameter range each rank owns;
//! * [`SubgroupSpec`]/[`partition_into_subgroups`] — ZeRO-3's fixed-size
//!   subgroup sharding (Figure 1(c)), the unit Deep Optimizer States
//!   schedules between CPU and GPU;
//! * [`MemoryEstimator`] — per-rank GPU/host byte accounting (Table 2 sizes,
//!   the Figure 13 OOM boundary, and TwinFlow's static-residency ratio).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod estimator;
mod stage;
mod subgroup;

pub use estimator::{MemoryEstimator, OffloadConfig, RankMemory};
pub use stage::{ZeroPartition, ZeroStage};
pub use subgroup::{partition_into_subgroups, rank_range, SubgroupSpec};
