//! Property tests of the control plane's safety invariants: admission
//! never over-commits a budget, deficit counters stay bounded, aging
//! guarantees no backlogged tenant waits forever, and checkpoint-based
//! preemption never resumes a torn file even while the store rotates.

use proptest::prelude::*;

use dos_hal::HardwareProfile;
use dos_serve::{
    grad_stream, init_stream, AdmissionController, ClusterCapacity, Coordinator, Demand,
    FairScheduler, JobSpec, SchedulerConfig, ServeOptions, MAX_PRIORITY,
};
use dos_train::checkpoint::CheckpointStore;

fn capacity() -> ClusterCapacity {
    ClusterCapacity {
        gpu_slots: 4,
        hbm_per_gpu: 1 << 30,
        dram_bytes: 8 << 30,
        pcie_bps: 64e9,
    }
}

fn preempt_spec(tenant: &str, seed: u64, iterations: usize) -> JobSpec {
    serde_json::from_str(&format!(
        r#"{{ "tenant": "{tenant}", "name": "j", "iterations": {iterations},
              "seed": {seed}, "trainer": {{
                  "params": 16, "subgroup_size": 8,
                  "deep_optimizer_states": {{ "update_stride": "cpu_only" }} }} }}"#,
    ))
    .expect("well-formed fixture spec")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Preemption racing checkpoint rotation: two tenants on one GPU with
    /// single-iteration leases preempt at every slice boundary, so each
    /// job's [`CheckpointStore`] saves more checkpoints than it retains
    /// (rotation prunes mid-run) while the coordinator keeps resuming
    /// from the same directory. The [`dos_serve::PreemptionProof`] must
    /// hold; and when the newest rotated file is then torn at an
    /// arbitrary byte (a crash mid-copy), `latest_valid()` must fall back
    /// to the older intact checkpoint — never the torn file — and that
    /// fallback must still resume to the bitwise state of an
    /// uninterrupted run.
    #[test]
    fn preemption_never_resumes_a_torn_rotated_checkpoint(
        iterations in 4usize..8,
        cut_pct in 5usize..95,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "dos-serve-preempt-rot-{}-{iterations}-{cut_pct}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let profile = HardwareProfile::jlse_h100().with_num_gpus(1);
        let mut coord = Coordinator::new(
            profile,
            ServeOptions {
                slice_iters: Some(1),
                checkpoint_dir: Some(dir.clone()),
                retain_final_states: true,
                prove_preemption: true,
                ..ServeOptions::default()
            },
        );
        let specs = vec![preempt_spec("alfa", 1, iterations), preempt_spec("beta", 2, iterations)];
        let spec0 = specs[0].clone();
        let report = coord.run(specs).expect("serve run");
        prop_assert_eq!(report.completed, 2);
        prop_assert_eq!(report.lease_violations, 0);
        let proof = report.proof.clone().expect("a preempted job completed");
        prop_assert!(proof.preemptions >= 1, "no preemption happened");
        prop_assert!(proof.bitwise_identical, "preempted numerics diverged: {proof:?}");

        // Rotation really pruned: the job saved more checkpoints than the
        // store retains.
        let store = CheckpointStore::open(dir.join("job-0000"), 2)
            .expect("job checkpoint store");
        let files = store.list();
        prop_assert!(!files.is_empty() && files.len() <= 2, "{files:?}");
        prop_assert!(
            proof.preemptions > files.len(),
            "store never rotated: {} saves, {} files",
            proof.preemptions,
            files.len()
        );

        // Tear the newest file at an arbitrary byte (crash mid-copy) …
        let newest = files[files.len() - 1].clone();
        let bytes = std::fs::read(&newest).expect("read newest checkpoint");
        let cut = (bytes.len() * cut_pct / 100).clamp(1, bytes.len() - 1);
        std::fs::write(&newest, &bytes[..cut]).expect("tear newest checkpoint");

        // … and recovery must skip it for the older intact checkpoint.
        let (ckpt, path) = store.latest_valid().expect("fallback checkpoint");
        prop_assert!(path != newest, "latest_valid resumed the torn file");
        prop_assert!(ckpt.iteration < iterations);

        // The fallback still resumes to the bitwise state of an
        // uninterrupted dedicated run.
        let n = spec0.trainer.params;
        let mut resumed = spec0.trainer.clone().resume(&ckpt).expect("resume");
        for iter in ckpt.iteration..iterations {
            resumed.step(&grad_stream(spec0.seed, iter, n)).expect("resumed step");
        }
        let mut dedicated =
            spec0.trainer.clone().build(init_stream(spec0.seed, n)).expect("build");
        for iter in 0..iterations {
            dedicated.step(&grad_stream(spec0.seed, iter, n)).expect("dedicated step");
        }
        prop_assert!(resumed.params() == dedicated.params(), "params diverged");
        prop_assert!(resumed.momentum() == dedicated.momentum(), "momentum diverged");
        prop_assert!(resumed.variance() == dedicated.variance(), "variance diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    /// No interleaving of reserves and releases ever commits more than
    /// the cluster has: slots, per-GPU HBM, node DRAM, aggregate PCIe.
    #[test]
    fn admission_never_overcommits(
        demands in proptest::collection::vec(
            (0u64..(2 << 30), 0u64..(3 << 30), 0.0f64..24e9, 0usize..8),
            1..60,
        ),
    ) {
        let cap = capacity();
        let mut ctl = AdmissionController::new(cap);
        let mut active: Vec<(usize, Demand)> = Vec::new();
        for (hbm, dram, pcie, release_pick) in demands {
            let d = Demand { hbm_bytes: hbm, dram_bytes: dram, pcie_bps: pcie };
            if let Some(gpu) = ctl.reserve(&d) {
                prop_assert!(active.iter().all(|(g, _)| *g != gpu), "slot double-granted");
                active.push((gpu, d));
            }
            // Sometimes release one of the running set.
            if !active.is_empty() && release_pick < 3 {
                let (gpu, d) = active.swap_remove(release_pick % active.len());
                ctl.release(gpu, &d);
            }
            // The committed totals never exceed capacity.
            prop_assert!(active.len() <= cap.gpu_slots);
            prop_assert_eq!(ctl.running(), active.len());
            let dram: u64 = active.iter().map(|(_, d)| d.dram_bytes).sum();
            prop_assert_eq!(ctl.committed_dram(), dram);
            prop_assert!(ctl.committed_dram() <= cap.dram_bytes);
            prop_assert!(ctl.committed_pcie() <= cap.pcie_bps + 1e-3);
            for slot in ctl.slot_hbm().iter().flatten() {
                prop_assert!(*slot <= cap.hbm_per_gpu);
            }
        }
    }

    /// Deficit counters stay inside [floor, per-tenant cap] under any
    /// interleaving of credit rounds and lease charges.
    #[test]
    fn deficit_counters_stay_bounded(
        weights in proptest::collection::vec(1.0f64..18.0, 1..6),
        ops in proptest::collection::vec((0usize..6, 0.0f64..5.0), 1..200),
    ) {
        let mut s = FairScheduler::new(SchedulerConfig::default());
        let names: Vec<String> = (0..weights.len()).map(|i| format!("t{i}")).collect();
        for (name, w) in names.iter().zip(&weights) {
            s.ensure_tenant(name, *w);
        }
        for (pick, secs) in ops {
            if pick % 2 == 0 {
                s.credit(names.iter().map(String::as_str));
            } else {
                s.charge(&names[pick % names.len()], secs);
            }
            prop_assert!(s.check_bounds().is_ok(), "{:?}", s.check_bounds());
        }
    }

    /// Aging invariant: a backlogged low-priority tenant overtakes a
    /// continuously granted max-priority tenant within a bounded number
    /// of credit rounds — no permanent starvation.
    #[test]
    fn low_priority_backlog_is_never_starved(
        light_weight in 1.0f64..4.0,
        heavy_charge in 0.0f64..2.0,
        floor_sink in 1e6f64..1e18,
    ) {
        let mut s = FairScheduler::new(SchedulerConfig::default());
        s.ensure_tenant("heavy", f64::from(MAX_PRIORITY) * 2.0);
        s.ensure_tenant("light", light_weight);
        // Worst case: heavy's deficit saturated, light pinned at the floor.
        for _ in 0..200 {
            s.credit(["heavy"]);
        }
        s.charge("light", floor_sink);
        let mut rounds = 0usize;
        while s.rank("light") <= s.rank("heavy") {
            s.credit(["heavy", "light"]);
            // Heavy keeps winning grants; each resets its aging clock.
            s.charge("heavy", heavy_charge);
            rounds += 1;
            prop_assert!(rounds < 10_000, "light tenant starved");
        }
        prop_assert!(s.check_bounds().is_ok());
    }
}
