//! Property tests of the control plane's safety invariants: admission
//! never over-commits a budget, deficit counters stay bounded, and aging
//! guarantees no backlogged tenant waits forever.

use proptest::prelude::*;

use dos_serve::{
    AdmissionController, ClusterCapacity, Demand, FairScheduler, SchedulerConfig, MAX_PRIORITY,
};

fn capacity() -> ClusterCapacity {
    ClusterCapacity {
        gpu_slots: 4,
        hbm_per_gpu: 1 << 30,
        dram_bytes: 8 << 30,
        pcie_bps: 64e9,
    }
}

proptest! {
    /// No interleaving of reserves and releases ever commits more than
    /// the cluster has: slots, per-GPU HBM, node DRAM, aggregate PCIe.
    #[test]
    fn admission_never_overcommits(
        demands in proptest::collection::vec(
            (0u64..(2 << 30), 0u64..(3 << 30), 0.0f64..24e9, 0usize..8),
            1..60,
        ),
    ) {
        let cap = capacity();
        let mut ctl = AdmissionController::new(cap);
        let mut active: Vec<(usize, Demand)> = Vec::new();
        for (hbm, dram, pcie, release_pick) in demands {
            let d = Demand { hbm_bytes: hbm, dram_bytes: dram, pcie_bps: pcie };
            if let Some(gpu) = ctl.reserve(&d) {
                prop_assert!(active.iter().all(|(g, _)| *g != gpu), "slot double-granted");
                active.push((gpu, d));
            }
            // Sometimes release one of the running set.
            if !active.is_empty() && release_pick < 3 {
                let (gpu, d) = active.swap_remove(release_pick % active.len());
                ctl.release(gpu, &d);
            }
            // The committed totals never exceed capacity.
            prop_assert!(active.len() <= cap.gpu_slots);
            prop_assert_eq!(ctl.running(), active.len());
            let dram: u64 = active.iter().map(|(_, d)| d.dram_bytes).sum();
            prop_assert_eq!(ctl.committed_dram(), dram);
            prop_assert!(ctl.committed_dram() <= cap.dram_bytes);
            prop_assert!(ctl.committed_pcie() <= cap.pcie_bps + 1e-3);
            for slot in ctl.slot_hbm().iter().flatten() {
                prop_assert!(*slot <= cap.hbm_per_gpu);
            }
        }
    }

    /// Deficit counters stay inside [floor, per-tenant cap] under any
    /// interleaving of credit rounds and lease charges.
    #[test]
    fn deficit_counters_stay_bounded(
        weights in proptest::collection::vec(1.0f64..18.0, 1..6),
        ops in proptest::collection::vec((0usize..6, 0.0f64..5.0), 1..200),
    ) {
        let mut s = FairScheduler::new(SchedulerConfig::default());
        let names: Vec<String> = (0..weights.len()).map(|i| format!("t{i}")).collect();
        for (name, w) in names.iter().zip(&weights) {
            s.ensure_tenant(name, *w);
        }
        for (pick, secs) in ops {
            if pick % 2 == 0 {
                s.credit(names.iter().map(String::as_str));
            } else {
                s.charge(&names[pick % names.len()], secs);
            }
            prop_assert!(s.check_bounds().is_ok(), "{:?}", s.check_bounds());
        }
    }

    /// Aging invariant: a backlogged low-priority tenant overtakes a
    /// continuously granted max-priority tenant within a bounded number
    /// of credit rounds — no permanent starvation.
    #[test]
    fn low_priority_backlog_is_never_starved(
        light_weight in 1.0f64..4.0,
        heavy_charge in 0.0f64..2.0,
        floor_sink in 1e6f64..1e18,
    ) {
        let mut s = FairScheduler::new(SchedulerConfig::default());
        s.ensure_tenant("heavy", f64::from(MAX_PRIORITY) * 2.0);
        s.ensure_tenant("light", light_weight);
        // Worst case: heavy's deficit saturated, light pinned at the floor.
        for _ in 0..200 {
            s.credit(["heavy"]);
        }
        s.charge("light", floor_sink);
        let mut rounds = 0usize;
        while s.rank("light") <= s.rank("heavy") {
            s.credit(["heavy", "light"]);
            // Heavy keeps winning grants; each resets its aging clock.
            s.charge("heavy", heavy_charge);
            rounds += 1;
            prop_assert!(rounds < 10_000, "light tenant starved");
        }
        prop_assert!(s.check_bounds().is_ok());
    }
}
