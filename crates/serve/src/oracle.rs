//! The Equation 1 packing oracle the serving throughput is judged by.
//!
//! Each job's virtual cost is its per-iteration update time under the
//! §4.2 performance model at the stride its configuration resolves to
//! (fixed `k`, the Equation 1 optimum for `auto`/`adaptive`, or CPU-only).
//! The oracle then lower-bounds the makespan of any non-preemptive
//! placement of those costs onto `num_gpus` identical slots:
//!
//! ```text
//! T* = max( Σᵢ cᵢ / num_gpus,  maxᵢ cᵢ )
//! ```
//!
//! — total work spread perfectly, but no job split across slots. The
//! coordinator's achieved makespan divides this bound to give the
//! `oracle_ratio` the CLI gates on (≥ 0.85): scheduling overheads,
//! checkpoint traffic, and link contention may cost at most 15%.

use dos_core::{PerfModel, StridePolicy};
use dos_hal::HardwareProfile;
use dos_train::TrainerConfig;

/// A job's virtual cost under the Equation 1 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobCost {
    /// Stride the cost was predicted at (`None` = CPU-only).
    pub stride: Option<usize>,
    /// Predicted seconds per optimizer step, uncontended.
    pub secs_per_iter: f64,
    /// `secs_per_iter × iterations`.
    pub total_secs: f64,
    /// Parameters updated per step.
    pub params: usize,
    /// Steps the job runs.
    pub iterations: usize,
}

/// Resolves the stride a trainer configuration runs at for costing:
/// fixed strides are taken verbatim, `auto`/`adaptive` resolve to the
/// Equation 1 optimum on `profile`, `cpu_only` (and disabled
/// deep-optimizer-states) to `None`.
pub fn resolve_stride(profile: &HardwareProfile, trainer: &TrainerConfig) -> Option<usize> {
    match trainer.pipeline().stride {
        StridePolicy::Fixed(k) => Some(k.max(1)),
        StridePolicy::CpuOnly => None,
        StridePolicy::Auto | StridePolicy::Adaptive => {
            PerfModel::new(profile.perf_model_inputs()).optimal_stride()
        }
    }
}

/// Prices one job on `profile`.
pub fn job_cost(profile: &HardwareProfile, trainer: &TrainerConfig, iterations: usize) -> JobCost {
    let stride = resolve_stride(profile, trainer);
    let pm = PerfModel::new(profile.perf_model_inputs());
    let secs_per_iter =
        pm.predicted_update_secs(trainer.params as f64, trainer.subgroup_size as f64, stride);
    JobCost {
        stride,
        secs_per_iter,
        total_secs: secs_per_iter * iterations as f64,
        params: trainer.params,
        iterations,
    }
}

/// The oracle's verdict over a whole job set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleReport {
    /// The packing lower bound on makespan, seconds.
    pub makespan_secs: f64,
    /// Parameter updates per second at the bound.
    pub aggregate_pps: f64,
    /// Total parameter updates across all jobs.
    pub total_updates: f64,
}

/// Lower-bounds the makespan of `costs` on `profile`'s GPUs.
pub fn packing_oracle(profile: &HardwareProfile, costs: &[JobCost]) -> OracleReport {
    let slots = profile.num_gpus.max(1) as f64;
    let total: f64 = costs.iter().map(|c| c.total_secs).sum();
    let longest = costs.iter().map(|c| c.total_secs).fold(0.0, f64::max);
    let makespan_secs = (total / slots).max(longest);
    let total_updates: f64 = costs.iter().map(|c| c.params as f64 * c.iterations as f64).sum();
    let aggregate_pps = if makespan_secs > 0.0 { total_updates / makespan_secs } else { 0.0 };
    OracleReport { makespan_secs, aggregate_pps, total_updates }
}

/// Lower-bounds the makespan when job `i` only becomes available at
/// `arrivals[i]` (an open-loop schedule). For every arrival instant `t`,
/// the work released at or after `t` must still fit on the slots
/// (`T* ≥ t + Σ_{rᵢ ≥ t} cᵢ / m`), and no job can finish before its own
/// release plus cost (`T* ≥ rᵢ + cᵢ`). The bound is the max over both
/// families.
///
/// # Panics
///
/// Panics if `costs` and `arrivals` differ in length.
pub fn packing_oracle_with_arrivals(
    profile: &HardwareProfile,
    costs: &[JobCost],
    arrivals: &[f64],
) -> OracleReport {
    assert_eq!(costs.len(), arrivals.len(), "one arrival per job cost");
    let slots = profile.num_gpus.max(1) as f64;
    let mut bound = costs
        .iter()
        .zip(arrivals)
        .map(|(c, r)| r + c.total_secs)
        .fold(0.0, f64::max);
    // Suffix sums over jobs sorted by release time.
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        arrivals[a].partial_cmp(&arrivals[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut suffix = 0.0;
    for &i in order.iter().rev() {
        suffix += costs[i].total_secs;
        bound = bound.max(arrivals[i] + suffix / slots);
    }
    let total_updates: f64 = costs.iter().map(|c| c.params as f64 * c.iterations as f64).sum();
    let aggregate_pps = if bound > 0.0 { total_updates / bound } else { 0.0 };
    OracleReport { makespan_secs: bound, aggregate_pps, total_updates }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trainer(params: usize, stride: &str) -> TrainerConfig {
        TrainerConfig::from_json(&format!(
            r#"{{ "params": {params}, "subgroup_size": 16,
                  "deep_optimizer_states": {{ "update_stride": {stride} }} }}"#
        ))
        .unwrap()
    }

    #[test]
    fn stride_resolution_matches_the_policy() {
        let p = HardwareProfile::jlse_h100();
        assert_eq!(resolve_stride(&p, &trainer(64, "3")), Some(3));
        assert_eq!(resolve_stride(&p, &trainer(64, "\"cpu_only\"")), None);
        let eq1 = PerfModel::new(p.perf_model_inputs()).optimal_stride();
        assert_eq!(resolve_stride(&p, &trainer(64, "\"auto\"")), eq1);
        assert_eq!(resolve_stride(&p, &trainer(64, "\"adaptive\"")), eq1);
    }

    #[test]
    fn cost_scales_linearly_in_iterations_and_params() {
        let p = HardwareProfile::jlse_h100();
        let c1 = job_cost(&p, &trainer(1 << 20, "2"), 4);
        let c2 = job_cost(&p, &trainer(1 << 20, "2"), 8);
        assert!((c2.total_secs - 2.0 * c1.total_secs).abs() < 1e-12);
        let big = job_cost(&p, &trainer(1 << 21, "2"), 4);
        assert!((big.secs_per_iter - 2.0 * c1.secs_per_iter).abs() / c1.secs_per_iter < 1e-9);
    }

    #[test]
    fn oracle_is_the_max_of_spread_and_longest() {
        let p = HardwareProfile::jlse_h100(); // 4 GPUs
        let short = job_cost(&p, &trainer(1 << 20, "2"), 1);
        // 8 equal short jobs: bound is total/4.
        let costs = vec![short; 8];
        let r = packing_oracle(&p, &costs);
        assert!((r.makespan_secs - 8.0 * short.total_secs / 4.0).abs() < 1e-12);
        // One dominant job: bound is that job.
        let long = job_cost(&p, &trainer(1 << 20, "2"), 100);
        let costs = vec![short, short, long];
        let r = packing_oracle(&p, &costs);
        assert!((r.makespan_secs - long.total_secs).abs() < 1e-12);
        assert!(r.aggregate_pps > 0.0);
        assert!(r.total_updates > 0.0);
    }

    #[test]
    fn arrival_aware_bound_dominates_the_static_one() {
        let p = HardwareProfile::jlse_h100();
        let c = job_cost(&p, &trainer(1 << 20, "2"), 4);
        let costs = vec![c; 6];
        // All released at zero: identical to the static bound.
        let zero = vec![0.0; 6];
        let a = packing_oracle_with_arrivals(&p, &costs, &zero);
        let s = packing_oracle(&p, &costs);
        assert!((a.makespan_secs - s.makespan_secs).abs() < 1e-12);
        // A late release pushes the bound to at least its release + cost.
        let late = 100.0 * c.total_secs;
        let mut arrivals = zero;
        arrivals[5] = late;
        let a = packing_oracle_with_arrivals(&p, &costs, &arrivals);
        assert!(a.makespan_secs >= late + c.total_secs - 1e-12);
    }

    #[test]
    fn empty_job_set_is_degenerate_but_finite() {
        let p = HardwareProfile::jlse_h100();
        let r = packing_oracle(&p, &[]);
        assert_eq!(r.makespan_secs, 0.0);
        assert_eq!(r.aggregate_pps, 0.0);
    }
}
