//! # dos-serve — a multi-tenant training control plane
//!
//! Admits, schedules, and supervises many concurrent deep-optimizer-states
//! training jobs over one node's simulated hardware (a `dos-hal`
//! [`HardwareProfile`](dos_hal::HardwareProfile)):
//!
//! * [`JobSpec`] / [`ServeSpec`] — the JSON submission surface: each job
//!   wraps a `dos-train` trainer document with tenant identity, priority,
//!   deadline class, and resource demands.
//! * [`AdmissionController`] — prices demands against the GPU-slot, HBM,
//!   DRAM, and PCIe budgets: reject what can never fit, queue what cannot
//!   fit *now*, reserve slots for the rest.
//! * [`FairScheduler`] — weighted deficit round-robin with aging across
//!   tenants; work-conserving and starvation-free.
//! * [`Coordinator`] — the virtual-time event loop granting time-sliced
//!   leases, preempting via the PR 3 crash-consistent checkpoint format,
//!   negotiating per-tenant strides through `dos-control`, and exporting
//!   tenant-labelled metrics plus `serve:*` trace instants.
//! * [`packing_oracle`] / [`packing_oracle_with_arrivals`] — the
//!   Equation 1 lower bound the achieved makespan is judged by
//!   ([`ServeReport::oracle_ratio`], gated at [`ORACLE_RATIO_FLOOR`]).
//!
//! All coordinator concurrency goes through the `dos_core::sync` facade,
//! so `dos-check` can explore admit/preempt/complete interleavings and
//! assert that no job is lost, no lease is double-granted, and every
//! job's final numerics are schedule-invariant ([`Coordinator::job_states`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod coordinator;
pub mod oracle;
pub mod scheduler;
pub mod spec;
pub mod workload;

pub use admission::{AdmissionController, AdmissionDecision, ClusterCapacity, Demand};
pub use coordinator::{
    grad_stream, init_stream, Coordinator, PreemptionProof, ServeError, ServeOptions, ServeReport,
    TenantReport, LINK_CONTENTION_PER_PEER, ORACLE_RATIO_FLOOR,
};
pub use oracle::{
    job_cost, packing_oracle, packing_oracle_with_arrivals, resolve_stride, JobCost, OracleReport,
};
pub use scheduler::{FairScheduler, SchedulerConfig, TenantShare};
pub use spec::{DeadlineClass, JobSpec, ServeSpec, MAX_PRIORITY};
pub use workload::{open_loop_schedule, OpenLoopOptions};

#[cfg(test)]
mod tests {
    use super::*;
    use dos_hal::HardwareProfile;

    fn job(tenant: &str, name: &str, iterations: usize, seed: u64) -> JobSpec {
        serde_json::from_str(&format!(
            r#"{{
                "tenant": "{tenant}", "name": "{name}", "iterations": {iterations},
                "seed": {seed},
                "trainer": {{ "params": 96, "subgroup_size": 16,
                              "deep_optimizer_states": {{ "update_stride": 2 }} }}
            }}"#
        ))
        .unwrap()
    }

    /// A 1-GPU profile so any two jobs contend and preemption must occur.
    fn tiny_profile() -> HardwareProfile {
        HardwareProfile::jlse_h100().with_num_gpus(1)
    }

    #[test]
    fn two_tenants_on_one_gpu_complete_with_preemptions() {
        let mut coord = Coordinator::new(tiny_profile(), ServeOptions {
            slice_iters: Some(2),
            retain_final_states: true,
            ..ServeOptions::default()
        });
        let report = coord
            .run(vec![job("acme", "a", 6, 1), job("zeta", "z", 6, 2)])
            .unwrap();
        assert_eq!(report.completed, 2, "{report:?}");
        assert_eq!(report.rejected + report.failed, 0);
        assert!(report.preemptions >= 1, "1 GPU + 2 jobs must preempt: {report:?}");
        assert_eq!(report.lease_violations, 0);
        let proof = report.proof.expect("a preempted job completed");
        assert!(proof.bitwise_identical, "{proof:?}");
        // Tenant-labelled metrics exist for both tenants.
        let metrics = coord.tracer().metrics();
        assert!(metrics.counter("serve.tenant.completed|tenant=acme") >= 1);
        assert!(metrics.counter("serve.tenant.completed|tenant=zeta") >= 1);
        // Preemption instants made it into the trace.
        let trace = dos_telemetry::chrome_trace(coord.tracer());
        assert!(
            trace.traceEvents.iter().any(|e| e.name.starts_with("serve:preempt:")),
            "no serve:preempt instant in trace"
        );
    }

    #[test]
    fn preempted_numerics_match_a_dedicated_run_bitwise() {
        // Serve the same spec twice: once contended (preempted), once
        // alone on an idle coordinator. Final states must match bitwise.
        let spec = job("acme", "a", 5, 42);
        let mut contended = Coordinator::new(tiny_profile(), ServeOptions {
            slice_iters: Some(2),
            retain_final_states: true,
            ..ServeOptions::default()
        });
        let report = contended
            .run(vec![spec.clone(), job("zeta", "z", 5, 7)])
            .unwrap();
        assert!(report.preemptions >= 1);
        let mut alone = Coordinator::new(tiny_profile(), ServeOptions {
            slice_iters: Some(2),
            retain_final_states: true,
            ..ServeOptions::default()
        });
        alone.run(vec![spec]).unwrap();
        let contended_states = contended.job_states();
        let alone_states = alone.job_states();
        let (_, _, contended_a) =
            contended_states.iter().find(|(t, n, _)| t == "acme" && n == "a").unwrap();
        let (_, _, alone_a) =
            alone_states.iter().find(|(t, n, _)| t == "acme" && n == "a").unwrap();
        assert_eq!(contended_a.params, alone_a.params);
        assert_eq!(
            contended_a.optimizer.momentum(),
            alone_a.optimizer.momentum()
        );
        assert_eq!(
            contended_a.optimizer.variance(),
            alone_a.optimizer.variance()
        );
    }

    #[test]
    fn infeasible_jobs_are_rejected_and_the_rest_complete() {
        let mut coord = Coordinator::new(tiny_profile(), ServeOptions::default());
        let mut monster = job("acme", "monster", 2, 3);
        monster.hbm_bytes = Some(u64::MAX);
        let report = coord.run(vec![monster, job("acme", "ok", 2, 4)]).unwrap();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 1);
        report.healthy().unwrap();
    }

    #[test]
    fn checkpoint_dir_mode_preempts_through_the_store() {
        let dir = std::env::temp_dir().join(format!("dos-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut coord = Coordinator::new(tiny_profile(), ServeOptions {
            slice_iters: Some(2),
            checkpoint_dir: Some(dir.clone()),
            retain_final_states: true,
            ..ServeOptions::default()
        });
        let report = coord
            .run(vec![job("acme", "a", 6, 11), job("zeta", "z", 6, 12)])
            .unwrap();
        assert!(report.preemptions >= 1);
        assert_eq!(report.completed, 2);
        assert_eq!(report.lease_violations, 0);
        assert!(report.proof.unwrap().bitwise_identical);
        // On-disk checkpoints were actually written.
        assert!(std::fs::read_dir(&dir).map(|d| d.count() > 0).unwrap_or(false));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn channel_submission_serves_until_the_channel_closes() {
        use dos_core::sync;
        let (tx, rx) = sync::unbounded();
        let report = sync::scope(|s| {
            s.spawn(move || {
                tx.send(job("acme", "a", 3, 1)).unwrap();
                tx.send(job("zeta", "z", 3, 2)).unwrap();
            });
            let mut coord = Coordinator::new(tiny_profile(), ServeOptions {
                slice_iters: Some(1),
                retain_final_states: true,
                ..ServeOptions::default()
            });
            coord.run_channel(rx).unwrap()
        });
        assert_eq!(report.completed, 2);
        assert_eq!(report.lease_violations, 0);
    }

    #[test]
    fn open_loop_schedule_beats_the_oracle_floor() {
        // 12 long jobs across 3 tenants on the 4-GPU profile, arriving
        // open-loop slightly faster than the cluster drains them: throughput
        // must stay within 15% of the packing bound and no tenant may
        // starve. Auto lease sizing keeps preemption amortized, and jobs
        // span several leases, so preemptions must still occur.
        let profile = HardwareProfile::jlse_h100();
        let proto = job("acme", "proto", 700, 0);
        let per_job = job_cost(&profile, &proto.trainer, 700).total_secs;
        // Slightly above the cluster's service rate so a backlog builds.
        let spacing = 0.9 * per_job / profile.num_gpus as f64;
        let mut jobs = Vec::new();
        for i in 0..12usize {
            let tenant = ["acme", "beta", "zeta"][i % 3];
            let mut j = job(tenant, &format!("j{i}"), 700, i as u64);
            // Pairs at double spacing: same average rate, but each burst
            // leaves one job backlogged so preemption gets exercised.
            j.arrival_secs = (i - i % 2) as f64 * spacing;
            j.priority = 1 + (i % 9) as u8;
            jobs.push(j);
        }
        let mut coord = Coordinator::new(profile, ServeOptions::default());
        let report = coord.run(jobs).unwrap();
        assert_eq!(report.completed, 12, "{report:?}");
        report.healthy().unwrap();
        assert!(
            report.oracle_ratio >= ORACLE_RATIO_FLOOR,
            "ratio {} under floor: {report:?}",
            report.oracle_ratio
        );
        assert!(report.preemptions >= 1, "backlog must trigger preemption");
        assert!(report.starved_tenants.is_empty());
    }

    #[test]
    fn runs_are_reproducible() {
        let jobs = || vec![job("acme", "a", 4, 5), job("zeta", "z", 5, 6), job("beta", "b", 3, 7)];
        let opts = || ServeOptions { slice_iters: Some(2), ..ServeOptions::default() };
        let r1 = Coordinator::new(tiny_profile(), opts()).run(jobs()).unwrap();
        let r2 = Coordinator::new(tiny_profile(), opts()).run(jobs()).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn streams_are_pure_functions() {
        assert_eq!(init_stream(9, 32), init_stream(9, 32));
        assert_ne!(init_stream(9, 32), init_stream(10, 32));
        assert_eq!(grad_stream(9, 3, 32), grad_stream(9, 3, 32));
        assert_ne!(grad_stream(9, 3, 32), grad_stream(9, 4, 32));
        assert!(init_stream(1, 64).iter().all(|v| v.abs() <= 0.1));
        assert!(grad_stream(1, 0, 64).iter().all(|v| v.abs() <= 0.05));
    }
}
