//! The global coordinator: a virtual-time event loop granting time-sliced
//! GPU leases to tenant jobs, preempting through the crash-consistent
//! checkpoint format, and proving resumed numerics bitwise identical.
//!
//! # Two clocks
//!
//! Job *numerics* run for real: every lease spawns a worker thread (via
//! the `dos_core::sync` facade, so `dos-check` can explore the
//! interleavings) that drives actual [`Trainer::step`] calls on the job's
//! deterministic gradient stream. Job *timing* is virtual: each lease's
//! duration is priced by the Equation 1 performance model at the stride
//! the tenant's control loop adopted, plus NVMe checkpoint/restore costs
//! and a small per-peer link-contention surcharge. The event loop always
//! advances to the earliest virtual event (tie-broken by job ordinal) and
//! blocks on *that specific* worker's channel, so the processing order —
//! and therefore every admission, grant, and preemption decision — is a
//! pure function of the submitted schedule, independent of how the OS or
//! the `dos-check` explorer schedules the worker threads.
//!
//! # Preemption
//!
//! When a lease expires and anyone else is waiting, the job is
//! checkpointed (the PR 3 `DOSCKPT1` format — to a [`CheckpointStore`]
//! when a directory is configured, through an in-memory
//! `to_bytes`/`from_bytes` round-trip otherwise), its budgets are
//! released, and it rejoins the queue. Because the checkpoint captures
//! the full mixed-precision state, a preempted-and-resumed job's final
//! numerics are bitwise identical to an uninterrupted run — the
//! coordinator re-derives one preempted job standalone after every run
//! and records the comparison in the report.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use dos_control::SweepGate;
use dos_core::{sync, PerfModel, StridePolicy};
use dos_hal::HardwareProfile;
use dos_telemetry::{SharedDoc, Tracer};
use dos_train::checkpoint::{CheckpointError, CheckpointStore, TrainingCheckpoint};
use dos_train::{Trainer, TrainerError};

use crate::admission::{AdmissionController, ClusterCapacity, Demand};
use crate::oracle::{job_cost, packing_oracle_with_arrivals, JobCost};
use crate::scheduler::{FairScheduler, SchedulerConfig};
use crate::spec::JobSpec;

/// Virtual slowdown per concurrently running peer (shared PCIe/DRAM).
pub const LINK_CONTENTION_PER_PEER: f64 = 0.02;

/// Minimum acceptable achieved-vs-oracle makespan ratio.
pub const ORACLE_RATIO_FLOOR: f64 = 0.85;

/// Bytes of checkpoint state per parameter priced against the NVMe
/// links: FP32 master + momentum + variance (12) plus the FP16 working
/// copy (2), rounded up for headers. The virtual cost models the binary
/// state a production store writes, not the in-tree debug serialization.
pub const STATE_BYTES_PER_PARAM: f64 = 16.0;

/// Auto-sized leases are long enough that one preempt/resume cycle costs
/// at most `1/PREEMPT_AMORTIZATION` of the lease's own compute.
pub const PREEMPT_AMORTIZATION: f64 = 20.0;

/// Checkpoints retained per preempted job.
const CKPT_KEEP: usize = 2;

/// Admission-wait histogram bucket bounds, seconds.
pub const WAIT_BOUNDS: [f64; 5] = [0.01, 0.1, 1.0, 10.0, 100.0];

/// Coordinator tunables.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Optimizer steps per granted lease. `None` sizes each lease
    /// automatically so a preempt/resume cycle stays amortized (see
    /// [`PREEMPT_AMORTIZATION`]); fixed values are for tests and
    /// `dos-check` scenarios, where tiny slices maximize interleavings.
    pub slice_iters: Option<usize>,
    /// Fair-share scheduler knobs.
    pub scheduler: SchedulerConfig,
    /// Directory for preemption checkpoints; `None` round-trips the
    /// serialized bytes in memory instead.
    pub checkpoint_dir: Option<PathBuf>,
    /// Retain every job's final state (the check scenario compares them);
    /// preempted jobs always retain theirs for the bitwise proof.
    pub retain_final_states: bool,
    /// A tenant counts as starved when it sits backlogged without any
    /// lease for longer than this fraction of the final makespan (or
    /// still has waiting jobs at the end); the p99 admission-to-start
    /// gate compares against the same bound.
    pub starvation_wait_fraction: f64,
    /// Re-derive one preempted job standalone and record the bitwise
    /// comparison.
    pub prove_preemption: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            slice_iters: None,
            scheduler: SchedulerConfig::default(),
            checkpoint_dir: None,
            retain_final_states: false,
            starvation_wait_fraction: 0.5,
            prove_preemption: true,
        }
    }
}

/// Errors that abort a whole serve run (per-job failures do not; they
/// mark the job failed and show up in the report).
#[derive(Debug)]
pub enum ServeError {
    /// A malformed submission document or option.
    Spec(String),
    /// A trainer error outside any job's own run.
    Train(TrainerError),
    /// A checkpoint-store error outside any job's own run.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Spec(s) => write!(f, "spec: {s}"),
            ServeError::Train(e) => write!(f, "trainer: {e}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TrainerError> for ServeError {
    fn from(e: TrainerError) -> ServeError {
        ServeError::Train(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> ServeError {
        ServeError::Checkpoint(e)
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Admitted, waiting for a lease (fresh or preempted).
    Waiting,
    /// Holds a lease; a worker thread is stepping it.
    Running,
    /// All iterations done.
    Completed,
    /// Turned away at admission (can never fit).
    Rejected,
    /// Died mid-run (build/step/checkpoint failure).
    Failed,
}

struct Job {
    id: usize,
    spec: JobSpec,
    demand: Demand,
    cost: JobCost,
    phase: Phase,
    reason: Option<String>,
    ckpt_bytes: Option<Vec<u8>>,
    ckpt_len: usize,
    iters_done: usize,
    submitted: f64,
    first_start: Option<f64>,
    finished: Option<f64>,
    preemptions: usize,
    migrations: usize,
    last_gpu: Option<usize>,
    final_state: Option<TrainingCheckpoint>,
}

/// One granted lease with a live worker behind it.
struct RunningSlice {
    job: usize,
    gpu: usize,
    iters: usize,
    virt_end: f64,
    rx: sync::Receiver<Result<Trainer, String>>,
    handle: sync::JoinHandle<()>,
}

/// Per-tenant control-plane state: a `dos-control` sweep gate negotiating
/// the stride its auto/adaptive jobs are costed at.
struct TenantControl {
    gate: SweepGate,
    stride: Option<Option<usize>>,
    last_retune: Option<usize>,
    grants: usize,
    retunes: usize,
    /// Virtual instant since when the tenant has had backlog but no
    /// running lease (`None` while served or idle).
    wait_since: Option<f64>,
    /// Longest completed backlogged-but-unserved stretch so far.
    max_service_gap: f64,
}

impl TenantControl {
    fn new() -> TenantControl {
        TenantControl {
            gate: SweepGate { hysteresis_gain: 0.05, min_iters_between_retunes: 2, max_stride: 8 },
            stride: None,
            last_retune: None,
            grants: 0,
            retunes: 0,
            wait_since: None,
            max_service_gap: 0.0,
        }
    }
}

/// Per-tenant slice of the final report (also served live at `/tenants`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs rejected at admission.
    pub rejected: usize,
    /// Jobs failed mid-run.
    pub failed: usize,
    /// Optimizer steps executed.
    pub iterations: usize,
    /// Checkpoint-based preemptions suffered.
    pub preemptions: usize,
    /// Resumes that landed on a different GPU.
    pub migrations: usize,
    /// Stride retunes its control loop approved.
    pub retunes: usize,
    /// Leases granted.
    pub grants: u64,
    /// Fair-share weight.
    pub weight: f64,
    /// Mean admission-to-start wait, seconds.
    pub mean_wait_secs: f64,
    /// Worst admission-to-start wait, seconds.
    pub max_wait_secs: f64,
    /// Longest stretch the tenant sat backlogged without holding any
    /// lease, seconds — the quantity the starvation gate inspects.
    pub max_service_gap_secs: f64,
    /// Parameters updated (params × iterations).
    pub updated_params: f64,
}

/// The bitwise preemption-identity proof.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreemptionProof {
    /// Ordinal of the proven job.
    pub job_id: usize,
    /// Its tenant.
    pub tenant: String,
    /// Its name.
    pub name: String,
    /// Times it was preempted and resumed.
    pub preemptions: usize,
    /// Iterations compared.
    pub iterations: usize,
    /// Whether params/momentum/variance match an uninterrupted run bit
    /// for bit.
    pub bitwise_identical: bool,
}

/// The outcome of a whole serve run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs rejected at admission.
    pub rejected: usize,
    /// Jobs failed mid-run.
    pub failed: usize,
    /// Checkpoint-based preemptions.
    pub preemptions: usize,
    /// Resumes on a different GPU.
    pub migrations: usize,
    /// Double-granted-lease violations observed (must be zero).
    pub lease_violations: usize,
    /// Virtual makespan, seconds.
    pub makespan_secs: f64,
    /// Packing-oracle lower bound, seconds.
    pub oracle_secs: f64,
    /// `oracle_secs / makespan_secs` (1.0 when nothing ran).
    pub oracle_ratio: f64,
    /// Achieved parameter updates per virtual second.
    pub aggregate_pps: f64,
    /// The oracle's parameter updates per second.
    pub oracle_pps: f64,
    /// Mean admission-to-start wait, seconds.
    pub mean_wait_secs: f64,
    /// 99th-percentile admission-to-start wait, seconds.
    pub p99_wait_secs: f64,
    /// Worst admission-to-start wait, seconds.
    pub max_wait_secs: f64,
    /// The wait bound the p99/starvation gates compare against.
    pub wait_bound_secs: f64,
    /// Tenants whose worst wait exceeded the bound (or never started).
    pub starved_tenants: Vec<String>,
    /// Per-tenant breakdown, name order.
    pub tenants: Vec<TenantReport>,
    /// The bitwise preemption proof, when a preempted job completed.
    pub proof: Option<PreemptionProof>,
}

impl ServeReport {
    /// The control plane's own acceptance gates.
    ///
    /// # Errors
    ///
    /// Returns the first violated gate: lost or failed jobs, lease
    /// violations, starved tenants, unbounded p99 admission latency, a
    /// throughput ratio below [`ORACLE_RATIO_FLOOR`], or a preemption
    /// proof that failed bitwise comparison.
    pub fn healthy(&self) -> Result<(), String> {
        if self.completed + self.rejected + self.failed != self.jobs {
            return Err(format!(
                "lost jobs: {} completed + {} rejected + {} failed != {} submitted",
                self.completed, self.rejected, self.failed, self.jobs
            ));
        }
        if self.failed > 0 {
            return Err(format!("{} job(s) failed mid-run", self.failed));
        }
        if self.lease_violations > 0 {
            return Err(format!("{} double-granted lease(s)", self.lease_violations));
        }
        if !self.starved_tenants.is_empty() {
            return Err(format!("starved tenants: {}", self.starved_tenants.join(", ")));
        }
        if self.p99_wait_secs > self.wait_bound_secs {
            return Err(format!(
                "p99 admission-to-start {}s exceeds bound {}s",
                self.p99_wait_secs, self.wait_bound_secs
            ));
        }
        if self.completed > 0 && self.oracle_ratio < ORACLE_RATIO_FLOOR {
            return Err(format!(
                "throughput {:.3} of packing oracle < {ORACLE_RATIO_FLOOR}",
                self.oracle_ratio
            ));
        }
        if let Some(proof) = &self.proof {
            if !proof.bitwise_identical {
                return Err(format!(
                    "preempted job {}/{} diverged from its uninterrupted run",
                    proof.tenant, proof.name
                ));
            }
        }
        Ok(())
    }
}

enum Intake {
    Fixed(VecDeque<(f64, JobSpec)>),
    Channel(sync::Receiver<JobSpec>),
}

/// The multi-tenant coordinator. See the module docs for the model.
pub struct Coordinator {
    profile: HardwareProfile,
    opts: ServeOptions,
    admission: AdmissionController,
    scheduler: FairScheduler,
    tracer: Tracer,
    doc: SharedDoc,
    jobs: Vec<Job>,
    tenants: BTreeMap<String, TenantControl>,
    running: Vec<RunningSlice>,
    slot_free_at: Vec<f64>,
    now: f64,
    lease_violations: usize,
}

impl Coordinator {
    /// A coordinator over `profile` with the given options.
    pub fn new(profile: HardwareProfile, opts: ServeOptions) -> Coordinator {
        let cap = ClusterCapacity::from_profile(&profile);
        Coordinator {
            admission: AdmissionController::new(cap),
            scheduler: FairScheduler::new(opts.scheduler),
            tracer: Tracer::new(),
            doc: SharedDoc::new(),
            jobs: Vec::new(),
            tenants: BTreeMap::new(),
            running: Vec::new(),
            slot_free_at: vec![0.0; cap.gpu_slots],
            now: 0.0,
            lease_violations: 0,
            profile,
            opts,
        }
    }

    /// The tracer carrying `serve:*` instants (virtual clock) and the
    /// serving metrics registry.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The live tenant-table document (mount its `.route()` at
    /// `/tenants`).
    pub fn tenants_doc(&self) -> SharedDoc {
        self.doc.clone()
    }

    /// Runs a fixed open-loop schedule: each job arrives at its
    /// `arrival_secs`. Returns when every job has completed, failed, or
    /// been rejected.
    ///
    /// # Errors
    ///
    /// Returns a [`ServeError`] only for coordinator-level failures;
    /// per-job errors are absorbed into the report.
    pub fn run(&mut self, specs: Vec<JobSpec>) -> Result<ServeReport, ServeError> {
        let mut indexed: Vec<(f64, JobSpec)> =
            specs.into_iter().map(|s| (s.arrival_secs, s)).collect();
        // Stable by arrival; submission order breaks ties.
        indexed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        self.run_loop(Intake::Fixed(indexed.into_iter().collect()))
    }

    /// Runs until the submission channel closes and every received job
    /// has completed, failed, or been rejected. Jobs arrive "now" in
    /// virtual time as they are received. This is the entry point the
    /// `dos-check` coordinator scenario explores.
    ///
    /// # Errors
    ///
    /// As [`Coordinator::run`].
    pub fn run_channel(
        &mut self,
        rx: sync::Receiver<JobSpec>,
    ) -> Result<ServeReport, ServeError> {
        self.run_loop(Intake::Channel(rx))
    }

    fn run_loop(&mut self, mut intake: Intake) -> Result<ServeReport, ServeError> {
        loop {
            match &mut intake {
                Intake::Fixed(queue) => {
                    while queue.front().is_some_and(|(t, _)| *t <= self.now + 1e-12) {
                        let (t, spec) = queue.pop_front().unwrap_or_else(|| unreachable!());
                        self.admit(spec, t);
                    }
                }
                Intake::Channel(rx) => {
                    while let Ok(spec) = rx.try_recv() {
                        let now = self.now;
                        self.admit(spec, now);
                    }
                }
            }
            self.grant();
            let next_arrival = match &intake {
                Intake::Fixed(queue) => queue.front().map(|(t, _)| *t),
                Intake::Channel(_) => None,
            };
            let next_end = self
                .running
                .iter()
                .map(|r| r.virt_end)
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            match (next_arrival, next_end) {
                (Some(a), None) => self.now = self.now.max(a),
                (Some(a), Some(e)) if a <= e => self.now = self.now.max(a),
                (_, Some(_)) => self.process_slice_end(),
                (None, None) => match &mut intake {
                    Intake::Fixed(_) => break,
                    // Idle with the channel still open: block for the next
                    // submission (a facade yield point, so checked runs
                    // explore it).
                    Intake::Channel(rx) => match rx.recv() {
                        Ok(spec) => {
                            let now = self.now;
                            self.admit(spec, now);
                        }
                        Err(_) => break,
                    },
                },
            }
        }
        Ok(self.finalize())
    }

    fn admit(&mut self, spec: JobSpec, arrival: f64) {
        let id = self.jobs.len();
        let tenant = spec.tenant.clone();
        let metrics = self.tracer.metrics();
        metrics.inc_counter("serve.jobs", 1);
        metrics.inc_counter(&format!("serve.tenant.jobs|tenant={tenant}"), 1);
        let demand = spec.demand(&self.profile);
        let cost = job_cost(&self.profile, &spec.trainer, spec.iterations);
        let rejected = spec
            .validate()
            .and_then(|()| self.admission.feasible(&demand))
            .err();
        let phase = if rejected.is_some() { Phase::Rejected } else { Phase::Waiting };
        if let Some(reason) = &rejected {
            metrics.inc_counter("serve.rejected", 1);
            metrics.inc_counter(&format!("serve.tenant.rejected|tenant={tenant}"), 1);
            self.tracer.instant_at("serve", &format!("serve:reject:{tenant}"), "serve", arrival);
            let _ = reason;
        } else {
            self.scheduler.ensure_tenant(&tenant, spec.weight());
            self.tenants.entry(tenant.clone()).or_insert_with(TenantControl::new);
            self.tracer.instant_at("serve", &format!("serve:admit:{tenant}"), "serve", arrival);
        }
        self.jobs.push(Job {
            id,
            spec,
            demand,
            cost,
            phase,
            reason: rejected,
            ckpt_bytes: None,
            ckpt_len: 0,
            iters_done: 0,
            submitted: arrival,
            first_start: None,
            finished: None,
            preemptions: 0,
            migrations: 0,
            last_gpu: None,
            final_state: None,
        });
        if phase == Phase::Waiting {
            self.mark_waiting(&tenant, arrival);
        }
        self.publish();
    }

    /// Service began for `tenant` at `at`: close any open backlogged-
    /// but-unserved stretch and fold it into the tenant's max gap.
    fn mark_service(&mut self, tenant: &str, at: f64) {
        if let Some(ctl) = self.tenants.get_mut(tenant) {
            if let Some(since) = ctl.wait_since.take() {
                ctl.max_service_gap = ctl.max_service_gap.max(at - since);
            }
        }
    }

    /// Re-evaluates whether `tenant` just entered the backlogged-but-
    /// unserved state at `at` (has waiting jobs, holds no lease).
    fn mark_waiting(&mut self, tenant: &str, at: f64) {
        let waiting = self
            .jobs
            .iter()
            .any(|j| j.phase == Phase::Waiting && j.spec.tenant == tenant);
        let running = self.running.iter().any(|r| self.jobs[r.job].spec.tenant == tenant);
        if waiting && !running {
            if let Some(ctl) = self.tenants.get_mut(tenant) {
                ctl.wait_since.get_or_insert(at);
            }
        }
    }

    /// Work-conserving grant loop: while a slot is free and someone
    /// waits, credit a round and grant the best-ranked tenant whose
    /// candidate job fits.
    fn grant(&mut self) {
        loop {
            if self.admission.free_slots() == 0 {
                break;
            }
            // Lowest-ordinal waiting job per tenant.
            let mut per_tenant: BTreeMap<String, usize> = BTreeMap::new();
            for job in &self.jobs {
                if job.phase == Phase::Waiting {
                    per_tenant.entry(job.spec.tenant.clone()).or_insert(job.id);
                }
            }
            if per_tenant.is_empty() {
                break;
            }
            let names: Vec<String> = per_tenant.keys().cloned().collect();
            self.scheduler.credit(names.iter().map(String::as_str));
            debug_assert!(self.scheduler.check_bounds().is_ok());
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let ordered: Vec<String> =
                self.scheduler.order(&name_refs).into_iter().map(str::to_string).collect();
            let mut granted = false;
            for tenant in ordered {
                let job_id = per_tenant[&tenant];
                let demand = self.jobs[job_id].demand;
                if let Some(gpu) = self.admission.reserve(&demand) {
                    self.start_slice(job_id, gpu, self.now, None);
                    granted = true;
                    break;
                }
            }
            if !granted {
                break;
            }
        }
    }

    /// The stride a tenant's control loop adopts under the current
    /// contention, gated by sweep + hysteresis (`dos-control`).
    fn tenant_stride(&mut self, tenant: &str, params: f64, subgroup: f64, peers: usize) -> Option<usize> {
        let now = self.now;
        let contention = if peers > 0 {
            self.profile.dram_contention_cpu_factor.clamp(0.05, 1.0)
        } else {
            1.0
        };
        let pm = PerfModel::new(self.profile.perf_model_inputs()).with_contention(contention);
        let ctl = self.tenants.get_mut(tenant)?;
        ctl.grants += 1;
        let outcome = ctl.gate.sweep(&pm, params, subgroup);
        match ctl.stride {
            None => {
                ctl.stride = Some(outcome.best_k);
                ctl.retunes += 1;
                ctl.last_retune = Some(ctl.grants);
                self.tracer.control_decision(
                    &format!("serve:{tenant}:adopt k={:?}", outcome.best_k),
                    now,
                );
                outcome.best_k
            }
            Some(current) if current != outcome.best_k => {
                let cur_secs = pm.predicted_update_secs(params, subgroup, current);
                if ctl
                    .gate
                    .approve(ctl.grants, ctl.last_retune, cur_secs, outcome.best_secs)
                    .is_some()
                {
                    ctl.stride = Some(outcome.best_k);
                    ctl.retunes += 1;
                    ctl.last_retune = Some(ctl.grants);
                    self.tracer.control_decision(
                        &format!("serve:{tenant}:retune k={:?}", outcome.best_k),
                        now,
                    );
                    outcome.best_k
                } else {
                    current
                }
            }
            Some(current) => current,
        }
    }

    /// Virtual seconds per optimizer step under `peers` concurrent
    /// leases.
    fn secs_per_iter(&self, params: f64, subgroup: f64, stride: Option<usize>, peers: usize) -> f64 {
        let pm = PerfModel::new(self.profile.perf_model_inputs());
        pm.predicted_update_secs(params, subgroup, stride)
            * (1.0 + LINK_CONTENTION_PER_PEER * peers as f64)
    }

    /// Virtual NVMe seconds to write (`write`) or read back one job's
    /// checkpoint state.
    fn ckpt_secs(&self, params: usize, write: bool) -> f64 {
        let bytes = params as f64 * STATE_BYTES_PER_PARAM;
        bytes / if write { self.profile.nvme_write_bw } else { self.profile.nvme_read_bw }
    }

    /// Lease length in iterations: the configured fixed slice, or an
    /// auto slice long enough that one preempt/resume cycle costs at most
    /// `1/PREEMPT_AMORTIZATION` of the slice's own compute.
    fn slice_iters_for(&self, job: &Job) -> usize {
        let remaining = job.spec.iterations.saturating_sub(job.iters_done);
        let base = match self.opts.slice_iters {
            Some(n) => n.max(1),
            None => {
                let overhead = self.ckpt_secs(job.spec.trainer.params, true)
                    + self.ckpt_secs(job.spec.trainer.params, false);
                let spi = job.cost.secs_per_iter;
                if spi > 0.0 {
                    ((PREEMPT_AMORTIZATION * overhead / spi).ceil() as usize).max(1)
                } else {
                    1
                }
            }
        };
        base.min(remaining).max(1)
    }

    /// Rebuilds or resumes the job's trainer. Returns the trainer, the
    /// virtual restore cost, and whether it was a checkpoint resume.
    fn materialize(&mut self, job_id: usize) -> (Result<Trainer, String>, f64, bool) {
        let job = &self.jobs[job_id];
        let params = job.spec.trainer.params;
        if job.iters_done == 0 && job.ckpt_len == 0 {
            let init = init_stream(job.spec.seed, params);
            let trainer = job.spec.trainer.clone().build(init).map_err(|e| e.to_string());
            return (trainer, 0.0, false);
        }
        let restore_secs = self.ckpt_secs(params, false);
        let checkpoint = match &self.opts.checkpoint_dir {
            Some(dir) => CheckpointStore::open(dir.join(format!("job-{:04}", job.id)), CKPT_KEEP)
                .and_then(|store| store.latest_valid())
                .map(|(ckpt, _path)| ckpt)
                .map_err(|e| e.to_string()),
            None => job
                .ckpt_bytes
                .as_deref()
                .ok_or_else(|| "missing in-memory checkpoint".to_string())
                .and_then(|bytes| TrainingCheckpoint::from_bytes(bytes).map_err(|e| e.to_string())),
        };
        let trainer = checkpoint
            .and_then(|ckpt| job.spec.trainer.clone().resume(&ckpt).map_err(|e| e.to_string()));
        (trainer, restore_secs, true)
    }

    /// Starts one lease for `job_id` on `gpu` at virtual time `at`.
    /// `live` carries the trainer across an in-place lease renewal;
    /// otherwise the job is built fresh or resumed from its checkpoint.
    fn start_slice(&mut self, job_id: usize, gpu: usize, at: f64, live: Option<Trainer>) {
        if self.running.iter().any(|r| r.gpu == gpu) {
            // A second lease on an occupied slot would be a scheduler bug;
            // record it and refuse rather than corrupt the slot state.
            self.lease_violations += 1;
            self.tracer.metrics().inc_counter("serve.lease_violations", 1);
            return;
        }
        let params = self.jobs[job_id].spec.trainer.params;
        let subgroup = self.jobs[job_id].spec.trainer.subgroup_size;
        let tenant = self.jobs[job_id].spec.tenant.clone();
        let policy = self.jobs[job_id].spec.trainer.pipeline().stride;
        let peers = self.running.len();
        let stride = match policy {
            StridePolicy::Fixed(k) => Some(k.max(1)),
            StridePolicy::CpuOnly => None,
            StridePolicy::Auto | StridePolicy::Adaptive => {
                self.tenant_stride(&tenant, params as f64, subgroup as f64, peers)
            }
        };
        let renewal = live.is_some();
        let (trainer, restore_secs, restored) = match live {
            Some(t) => (Ok(t), 0.0, false),
            None => self.materialize(job_id),
        };
        let trainer = match trainer {
            Ok(t) => t,
            Err(e) => {
                self.fail_job(job_id, Some(gpu), at, e);
                return;
            }
        };
        let secs_per_iter = self.secs_per_iter(params as f64, subgroup as f64, stride, peers);
        let iters = self.slice_iters_for(&self.jobs[job_id]);
        let job = &mut self.jobs[job_id];
        let virt_start = at.max(self.slot_free_at[gpu]);
        let virt_end = virt_start + restore_secs + iters as f64 * secs_per_iter;
        if job.first_start.is_none() {
            job.first_start = Some(virt_start);
            let wait = virt_start - job.submitted;
            self.tracer.metrics().observe("serve.wait_secs", &WAIT_BOUNDS, wait);
        }
        if restored && job.last_gpu.is_some_and(|g| g != gpu) {
            job.migrations += 1;
            self.tracer.metrics().inc_counter(
                &format!("serve.tenant.migrations|tenant={tenant}"),
                1,
            );
        }
        job.last_gpu = Some(gpu);
        job.phase = Phase::Running;

        let (tx, rx) = sync::unbounded();
        let seed = job.spec.seed;
        let start_iter = job.iters_done;
        let handle = sync::spawn(move || {
            let mut trainer = trainer;
            let mut failure = None;
            for iter in start_iter..start_iter + iters {
                let grads = grad_stream(seed, iter, params);
                if let Err(e) = trainer.step(&grads) {
                    failure = Some(e.to_string());
                    break;
                }
            }
            let _ = tx.send(match failure {
                None => Ok(trainer),
                Some(e) => Err(e),
            });
        });
        self.running.push(RunningSlice { job: job_id, gpu, iters, virt_end, rx, handle });
        self.mark_service(&tenant, virt_start);
        self.scheduler.charge(&tenant, virt_end - virt_start);
        debug_assert!(self.scheduler.check_bounds().is_ok());
        let metrics = self.tracer.metrics();
        metrics.inc_counter("serve.grants", 1);
        metrics.inc_counter(&format!("serve.tenant.grants|tenant={tenant}"), 1);
        metrics.set_gauge("serve.running", self.running.len() as f64);
        if !renewal {
            self.tracer.instant_at("serve", &format!("serve:grant:{tenant}"), "serve", virt_start);
        }
    }

    fn fail_job(&mut self, job_id: usize, gpu: Option<usize>, at: f64, reason: String) {
        let job = &mut self.jobs[job_id];
        job.phase = Phase::Failed;
        job.reason = Some(reason);
        job.finished = Some(at);
        let tenant = job.spec.tenant.clone();
        let demand = job.demand;
        if let Some(gpu) = gpu {
            self.admission.release(gpu, &demand);
            self.slot_free_at[gpu] = self.slot_free_at[gpu].max(at);
        }
        let metrics = self.tracer.metrics();
        metrics.inc_counter("serve.failed", 1);
        metrics.inc_counter(&format!("serve.tenant.failed|tenant={tenant}"), 1);
        self.tracer.instant_at("serve", &format!("serve:fail:{tenant}"), "serve", at);
        self.mark_waiting(&tenant, at);
        self.publish();
    }

    /// Retires the earliest-ending slice (ties broken by job ordinal):
    /// completes, preempts, or renews its job.
    fn process_slice_end(&mut self) {
        let Some(idx) = self
            .running
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.virt_end
                    .partial_cmp(&b.virt_end)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.job.cmp(&b.job))
            })
            .map(|(i, _)| i)
        else {
            return;
        };
        let slice = self.running.remove(idx);
        // Block on this specific worker: processing order follows virtual
        // time regardless of how the threads were actually scheduled.
        let outcome = slice.rx.recv();
        let _ = slice.handle.join();
        self.now = self.now.max(slice.virt_end);
        self.tracer.metrics().set_gauge("serve.running", self.running.len() as f64);
        let mut trainer = match outcome {
            Ok(Ok(trainer)) => trainer,
            Ok(Err(e)) => {
                self.fail_job(slice.job, Some(slice.gpu), slice.virt_end, e);
                return;
            }
            Err(_) => {
                self.fail_job(
                    slice.job,
                    Some(slice.gpu),
                    slice.virt_end,
                    "worker thread disappeared".to_string(),
                );
                return;
            }
        };
        let job = &mut self.jobs[slice.job];
        job.iters_done += slice.iters;
        let tenant = job.spec.tenant.clone();
        let params = job.spec.trainer.params;
        let metrics = self.tracer.metrics();
        metrics.inc_counter(&format!("serve.tenant.iters|tenant={tenant}"), slice.iters as u64);
        metrics.inc_counter(
            &format!("serve.tenant.updated_params|tenant={tenant}"),
            (slice.iters * params) as u64,
        );
        if job.iters_done >= job.spec.iterations {
            job.phase = Phase::Completed;
            job.finished = Some(slice.virt_end);
            if job.preemptions > 0 || self.opts.retain_final_states {
                job.final_state = Some(trainer.checkpoint());
            }
            let demand = job.demand;
            self.admission.release(slice.gpu, &demand);
            self.slot_free_at[slice.gpu] = self.slot_free_at[slice.gpu].max(slice.virt_end);
            metrics.inc_counter("serve.completed", 1);
            metrics.inc_counter(&format!("serve.tenant.completed|tenant={tenant}"), 1);
            self.tracer.instant_at(
                "serve",
                &format!("serve:complete:{tenant}"),
                "serve",
                slice.virt_end,
            );
            self.mark_waiting(&tenant, slice.virt_end);
            self.publish();
            return;
        }
        let backlog = self.jobs.iter().any(|j| j.phase == Phase::Waiting);
        if !backlog {
            // Nobody waiting: renew the lease in place.
            self.start_slice(slice.job, slice.gpu, slice.virt_end, Some(trainer));
            return;
        }
        // Preempt: checkpoint, release the lease, rejoin the queue.
        let checkpoint = trainer.checkpoint();
        drop(trainer);
        let bytes = match checkpoint.to_bytes() {
            Ok(b) => b,
            Err(e) => {
                self.fail_job(slice.job, Some(slice.gpu), slice.virt_end, e.to_string());
                return;
            }
        };
        let write_secs = self.ckpt_secs(params, true);
        if let Some(dir) = &self.opts.checkpoint_dir {
            let saved = CheckpointStore::open(dir.join(format!("job-{:04}", slice.job)), CKPT_KEEP)
                .and_then(|store| store.save(&checkpoint));
            if let Err(e) = saved {
                self.fail_job(slice.job, Some(slice.gpu), slice.virt_end, e.to_string());
                return;
            }
        }
        let job = &mut self.jobs[slice.job];
        job.ckpt_len = bytes.len();
        if self.opts.checkpoint_dir.is_none() {
            job.ckpt_bytes = Some(bytes);
        }
        job.phase = Phase::Waiting;
        job.preemptions += 1;
        let demand = job.demand;
        self.admission.release(slice.gpu, &demand);
        // The slot drains the checkpoint write before its next lease.
        self.slot_free_at[slice.gpu] = slice.virt_end + write_secs;
        let metrics = self.tracer.metrics();
        metrics.inc_counter("serve.preemptions", 1);
        metrics.inc_counter(&format!("serve.tenant.preemptions|tenant={tenant}"), 1);
        self.tracer.instant_at(
            "serve",
            &format!("serve:preempt:{tenant}"),
            "serve",
            slice.virt_end,
        );
        self.mark_waiting(&tenant, slice.virt_end);
        self.publish();
    }

    /// Per-tenant reports over the current job table, name order.
    pub fn tenant_reports(&self) -> Vec<TenantReport> {
        let mut by_tenant: BTreeMap<&str, TenantReport> = BTreeMap::new();
        for job in &self.jobs {
            let tenant = job.spec.tenant.as_str();
            let entry = by_tenant.entry(tenant).or_insert_with(|| TenantReport {
                tenant: tenant.to_string(),
                jobs: 0,
                completed: 0,
                rejected: 0,
                failed: 0,
                iterations: 0,
                preemptions: 0,
                migrations: 0,
                retunes: self.tenants.get(tenant).map_or(0, |c| c.retunes),
                grants: self.scheduler.share(tenant).map_or(0, |s| s.granted),
                weight: self.scheduler.share(tenant).map_or(0.0, |s| s.weight),
                mean_wait_secs: 0.0,
                max_wait_secs: 0.0,
                max_service_gap_secs: self.tenants.get(tenant).map_or(0.0, |c| c.max_service_gap),
                updated_params: 0.0,
            });
            entry.jobs += 1;
            match job.phase {
                Phase::Completed => entry.completed += 1,
                Phase::Rejected => entry.rejected += 1,
                Phase::Failed => entry.failed += 1,
                Phase::Waiting | Phase::Running => {}
            }
            entry.iterations += job.iters_done;
            entry.preemptions += job.preemptions;
            entry.migrations += job.migrations;
            entry.updated_params += (job.iters_done * job.spec.trainer.params) as f64;
            if let Some(start) = job.first_start {
                let wait = start - job.submitted;
                entry.max_wait_secs = entry.max_wait_secs.max(wait);
                // Accumulate; normalized below.
                entry.mean_wait_secs += wait;
            }
        }
        let mut reports: Vec<TenantReport> = by_tenant.into_values().collect();
        for report in &mut reports {
            let started = report.completed + report.failed;
            if started > 0 {
                report.mean_wait_secs /= report.jobs.max(1) as f64;
            }
        }
        reports
    }

    fn publish(&self) {
        let reports = self.tenant_reports();
        let body = serde_json::to_string_pretty(&reports)
            .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
        self.doc.publish(body);
        for report in &reports {
            self.tracer.metrics().set_gauge(
                &format!("serve.tenant.updated_params_total|tenant={}", report.tenant),
                report.updated_params,
            );
        }
    }

    /// Re-derives the lowest-ordinal preempted-and-completed job
    /// standalone and compares its final state bit for bit.
    fn prove_preemption(&self) -> Option<PreemptionProof> {
        let job = self
            .jobs
            .iter()
            .find(|j| j.phase == Phase::Completed && j.preemptions > 0 && j.final_state.is_some())?;
        let served = job.final_state.as_ref()?;
        let params = job.spec.trainer.params;
        let mut proof = PreemptionProof {
            job_id: job.id,
            tenant: job.spec.tenant.clone(),
            name: job.spec.name.clone(),
            preemptions: job.preemptions,
            iterations: job.spec.iterations,
            bitwise_identical: false,
        };
        let Ok(mut trainer) = job.spec.trainer.clone().build(init_stream(job.spec.seed, params))
        else {
            return Some(proof);
        };
        for iter in 0..job.spec.iterations {
            if trainer.step(&grad_stream(job.spec.seed, iter, params)).is_err() {
                return Some(proof);
            }
        }
        proof.bitwise_identical = bits_eq(trainer.params(), served.optimizer.params())
            && bits_eq(trainer.params(), &served.params)
            && bits_eq(trainer.momentum(), served.optimizer.momentum())
            && bits_eq(trainer.variance(), served.optimizer.variance());
        Some(proof)
    }

    fn finalize(&mut self) -> ServeReport {
        let jobs = self.jobs.len();
        let completed = self.jobs.iter().filter(|j| j.phase == Phase::Completed).count();
        let rejected = self.jobs.iter().filter(|j| j.phase == Phase::Rejected).count();
        let failed = self.jobs.iter().filter(|j| j.phase == Phase::Failed).count();
        let preemptions: usize = self.jobs.iter().map(|j| j.preemptions).sum();
        let migrations: usize = self.jobs.iter().map(|j| j.migrations).sum();
        let makespan_secs = self
            .jobs
            .iter()
            .filter_map(|j| j.finished)
            .fold(0.0, f64::max);

        // The oracle prices the served set only (rejected jobs never ran).
        let served: Vec<&Job> =
            self.jobs.iter().filter(|j| j.phase != Phase::Rejected).collect();
        let costs: Vec<JobCost> = served.iter().map(|j| j.cost).collect();
        let arrivals: Vec<f64> = served.iter().map(|j| j.submitted).collect();
        let oracle = packing_oracle_with_arrivals(&self.profile, &costs, &arrivals);
        let oracle_ratio = if makespan_secs > 0.0 && oracle.makespan_secs > 0.0 {
            oracle.makespan_secs / makespan_secs
        } else {
            1.0
        };
        let aggregate_pps = if makespan_secs > 0.0 {
            served
                .iter()
                .map(|j| (j.iters_done * j.spec.trainer.params) as f64)
                .sum::<f64>()
                / makespan_secs
        } else {
            0.0
        };

        let mut waits: Vec<f64> = self
            .jobs
            .iter()
            .filter_map(|j| j.first_start.map(|s| s - j.submitted))
            .collect();
        waits.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean_wait_secs =
            if waits.is_empty() { 0.0 } else { waits.iter().sum::<f64>() / waits.len() as f64 };
        let p99_wait_secs = if waits.is_empty() {
            0.0
        } else {
            waits[((waits.len() - 1) as f64 * 0.99).ceil() as usize]
        };
        let max_wait_secs = waits.last().copied().unwrap_or(0.0);
        let wait_bound_secs = self.opts.starvation_wait_fraction * makespan_secs;

        let tenants = self.tenant_reports();
        let mut starved: Vec<String> = Vec::new();
        for report in &tenants {
            // Backlog left behind means the tenant never got served out.
            let unserved = self
                .jobs
                .iter()
                .any(|j| j.spec.tenant == report.tenant && j.phase == Phase::Waiting);
            // Longest backlogged-but-unserved stretch, including one
            // still open at the end of the run.
            let mut gap = report.max_service_gap_secs;
            if let Some(since) = self.tenants.get(&report.tenant).and_then(|c| c.wait_since) {
                gap = gap.max(makespan_secs - since);
            }
            if unserved || gap > wait_bound_secs {
                starved.push(report.tenant.clone());
            }
        }

        let proof = if self.opts.prove_preemption { self.prove_preemption() } else { None };
        let metrics = self.tracer.metrics();
        metrics.set_gauge("serve.makespan_secs", makespan_secs);
        metrics.set_gauge("serve.oracle_ratio", oracle_ratio);
        metrics.set_gauge("serve.aggregate_pps", aggregate_pps);
        self.publish();

        ServeReport {
            jobs,
            completed,
            rejected,
            failed,
            preemptions,
            migrations,
            lease_violations: self.lease_violations,
            makespan_secs,
            oracle_secs: oracle.makespan_secs,
            oracle_ratio,
            aggregate_pps,
            oracle_pps: oracle.aggregate_pps,
            mean_wait_secs,
            p99_wait_secs,
            max_wait_secs,
            wait_bound_secs,
            starved_tenants: starved,
            tenants,
            proof,
        }
    }

    /// Final optimizer states of all non-rejected jobs, sorted by
    /// `(tenant, name)` — the schedule-invariant observation the
    /// `dos-check` coordinator scenario compares across interleavings.
    /// Requires [`ServeOptions::retain_final_states`].
    pub fn job_states(&self) -> Vec<(String, String, TrainingCheckpoint)> {
        let mut out: Vec<(String, String, TrainingCheckpoint)> = self
            .jobs
            .iter()
            .filter_map(|j| {
                j.final_state
                    .as_ref()
                    .map(|s| (j.spec.tenant.clone(), j.spec.name.clone(), s.clone()))
            })
            .collect();
        out.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        out
    }
}

/// Bitwise slice equality (exact, including signed zeros; NaN-safe).
fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn hash64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to `[-1, 1)` exactly (53-bit mantissa path).
fn unit(h: u64) -> f32 {
    (((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0) as f32
}

/// Domain tags keeping the init and gradient streams disjoint.
const INIT_TAG: u64 = 0x1A17_5EED_0000_0001;
const GRAD_TAG: u64 = 0x6EAD_5EED_0000_0002;

/// The deterministic parameter-initialization stream of a job: a pure
/// function of `(seed, index)`, so admission order, placement, and
/// preemption cannot perturb it.
pub fn init_stream(seed: u64, n: usize) -> Vec<f32> {
    let base = hash64(seed ^ INIT_TAG);
    (0..n).map(|i| unit(hash64(base ^ i as u64)) * 0.1).collect()
}

/// The deterministic gradient stream of a job at `iter`: a pure function
/// of `(seed, iter, index)`.
pub fn grad_stream(seed: u64, iter: usize, n: usize) -> Vec<f32> {
    let base = hash64(hash64(seed ^ GRAD_TAG) ^ iter as u64);
    (0..n).map(|i| unit(hash64(base ^ i as u64)) * 0.05).collect()
}
