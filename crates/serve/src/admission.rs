//! Admission control: pricing job demands against the cluster's capacity.
//!
//! The controller tracks what the running set has committed of each
//! budget — GPU slots, per-GPU HBM, node DRAM, aggregate PCIe — and
//! answers three questions about a candidate job: *can it ever fit*
//! (reject when not), *does it fit right now* (queue when not), and
//! *which GPU slot does it get* (reservation). Releases return the
//! committed budgets, so preemption frees real capacity.
//!
//! All arithmetic is integer/IEEE-deterministic and the slot picker is
//! lowest-index-first, so admission decisions are a pure function of the
//! submission history — a requirement for `dos-check` exploration and
//! the bitwise preemption proof.

use serde::{Deserialize, Serialize};

use dos_hal::HardwareProfile;

/// A job's resource demand, as priced by the admission controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// HBM on the granted GPU, bytes.
    pub hbm_bytes: u64,
    /// Host DRAM while running (FP32 shards + staging), bytes.
    pub dram_bytes: u64,
    /// Update-phase interconnect share, bytes/second.
    pub pcie_bps: f64,
}

/// The cluster-wide budgets admission prices against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCapacity {
    /// Concurrent job slots (one GPU each).
    pub gpu_slots: usize,
    /// HBM per GPU, bytes.
    pub hbm_per_gpu: u64,
    /// Host DRAM shared by all running jobs, bytes.
    pub dram_bytes: u64,
    /// Aggregate interconnect bandwidth, bytes/second.
    pub pcie_bps: f64,
}

impl ClusterCapacity {
    /// Derives the capacity from a `dos-hal` hardware profile: one slot
    /// per GPU, the profile's HBM/DRAM budgets, and the update-phase
    /// link bandwidth aggregated over GPUs.
    pub fn from_profile(profile: &HardwareProfile) -> ClusterCapacity {
        ClusterCapacity {
            gpu_slots: profile.num_gpus,
            hbm_per_gpu: profile.gpu_hbm_bytes,
            dram_bytes: profile.host_dram_bytes,
            pcie_bps: profile.update_link_bw() * profile.num_gpus as f64,
        }
    }
}

/// The outcome of evaluating one job against current headroom.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionDecision {
    /// Fits now; a reservation will succeed.
    Admit,
    /// Feasible but not now — wait for running jobs to release budgets.
    Queue {
        /// The budget that is currently exhausted.
        reason: String,
    },
    /// Can never fit, even on an idle cluster.
    Reject {
        /// The budget the demand exceeds outright.
        reason: String,
    },
}

/// Tracks committed budgets and hands out GPU slot reservations.
#[derive(Debug)]
pub struct AdmissionController {
    cap: ClusterCapacity,
    /// Per-slot committed HBM; `None` means the slot is free.
    slots: Vec<Option<u64>>,
    committed_dram: u64,
    committed_pcie: f64,
}

impl AdmissionController {
    /// A controller over `cap` with everything free.
    pub fn new(cap: ClusterCapacity) -> AdmissionController {
        AdmissionController {
            slots: vec![None; cap.gpu_slots],
            committed_dram: 0,
            committed_pcie: 0.0,
            cap,
        }
    }

    /// The capacity this controller prices against.
    pub fn capacity(&self) -> &ClusterCapacity {
        &self.cap
    }

    /// Number of currently free GPU slots.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// Number of currently running (reserved) jobs.
    pub fn running(&self) -> usize {
        self.cap.gpu_slots - self.free_slots()
    }

    /// DRAM committed to the running set, bytes.
    pub fn committed_dram(&self) -> u64 {
        self.committed_dram
    }

    /// PCIe bandwidth committed to the running set, bytes/second.
    pub fn committed_pcie(&self) -> f64 {
        self.committed_pcie
    }

    /// Per-slot committed HBM (`None` = free slot), for invariant checks.
    pub fn slot_hbm(&self) -> &[Option<u64>] {
        &self.slots
    }

    /// Whether `demand` could ever be admitted on an idle cluster.
    ///
    /// # Errors
    ///
    /// Names the budget the demand exceeds outright.
    pub fn feasible(&self, demand: &Demand) -> Result<(), String> {
        if self.cap.gpu_slots == 0 {
            return Err("cluster has zero GPU slots".to_string());
        }
        if demand.hbm_bytes > self.cap.hbm_per_gpu {
            return Err(format!(
                "HBM demand {} exceeds per-GPU capacity {}",
                demand.hbm_bytes, self.cap.hbm_per_gpu
            ));
        }
        if demand.dram_bytes > self.cap.dram_bytes {
            return Err(format!(
                "DRAM demand {} exceeds node capacity {}",
                demand.dram_bytes, self.cap.dram_bytes
            ));
        }
        if demand.pcie_bps.is_nan() || demand.pcie_bps < 0.0 || demand.pcie_bps > self.cap.pcie_bps {
            return Err(format!(
                "PCIe demand {:.3e} B/s exceeds aggregate capacity {:.3e} B/s",
                demand.pcie_bps, self.cap.pcie_bps
            ));
        }
        Ok(())
    }

    /// Evaluates `demand` against current headroom.
    pub fn evaluate(&self, demand: &Demand) -> AdmissionDecision {
        if let Err(reason) = self.feasible(demand) {
            return AdmissionDecision::Reject { reason };
        }
        if self.free_slots() == 0 {
            return AdmissionDecision::Queue { reason: "no free GPU slot".to_string() };
        }
        if self.committed_dram + demand.dram_bytes > self.cap.dram_bytes {
            return AdmissionDecision::Queue {
                reason: format!(
                    "DRAM headroom {} < demand {}",
                    self.cap.dram_bytes - self.committed_dram,
                    demand.dram_bytes
                ),
            };
        }
        if self.committed_pcie + demand.pcie_bps > self.cap.pcie_bps {
            return AdmissionDecision::Queue {
                reason: format!(
                    "PCIe headroom {:.3e} < demand {:.3e}",
                    self.cap.pcie_bps - self.committed_pcie,
                    demand.pcie_bps
                ),
            };
        }
        AdmissionDecision::Admit
    }

    /// Reserves the lowest free GPU slot for `demand`, committing its
    /// budgets. Returns the slot index, or `None` if the demand does not
    /// fit right now (callers should have seen [`AdmissionDecision::Admit`]).
    pub fn reserve(&mut self, demand: &Demand) -> Option<usize> {
        if self.evaluate(demand) != AdmissionDecision::Admit {
            return None;
        }
        let gpu = self.slots.iter().position(|s| s.is_none())?;
        self.slots[gpu] = Some(demand.hbm_bytes);
        self.committed_dram += demand.dram_bytes;
        self.committed_pcie += demand.pcie_bps;
        Some(gpu)
    }

    /// Releases the reservation on `gpu`, returning its budgets.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range or not currently reserved — a
    /// double release is a lease-accounting bug the caller must surface,
    /// not absorb.
    pub fn release(&mut self, gpu: usize, demand: &Demand) {
        assert!(
            self.slots[gpu].take().is_some(),
            "release of unreserved GPU slot {gpu}"
        );
        self.committed_dram = self.committed_dram.saturating_sub(demand.dram_bytes);
        self.committed_pcie = (self.committed_pcie - demand.pcie_bps).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> ClusterCapacity {
        ClusterCapacity { gpu_slots: 2, hbm_per_gpu: 1000, dram_bytes: 3000, pcie_bps: 100.0 }
    }

    fn demand(hbm: u64, dram: u64, pcie: f64) -> Demand {
        Demand { hbm_bytes: hbm, dram_bytes: dram, pcie_bps: pcie }
    }

    #[test]
    fn from_profile_aggregates_the_link() {
        let p = HardwareProfile::jlse_h100();
        let c = ClusterCapacity::from_profile(&p);
        assert_eq!(c.gpu_slots, p.num_gpus);
        assert_eq!(c.hbm_per_gpu, p.gpu_hbm_bytes);
        assert_eq!(c.dram_bytes, p.host_dram_bytes);
        assert!((c.pcie_bps - p.update_link_bw() * p.num_gpus as f64).abs() < 1e-6);
    }

    #[test]
    fn infeasible_demands_are_rejected_not_queued() {
        let ctl = AdmissionController::new(cap());
        for d in [demand(1001, 0, 0.0), demand(0, 3001, 0.0), demand(0, 0, 100.1)] {
            assert!(matches!(ctl.evaluate(&d), AdmissionDecision::Reject { .. }), "{d:?}");
        }
        assert!(matches!(ctl.evaluate(&demand(1000, 3000, 100.0)), AdmissionDecision::Admit));
    }

    #[test]
    fn exhausted_budgets_queue_and_release_restores_them() {
        let mut ctl = AdmissionController::new(cap());
        let d = demand(500, 1600, 40.0);
        let g0 = ctl.reserve(&d).unwrap();
        assert_eq!(g0, 0);
        // Second copy exceeds DRAM headroom (1600 + 1600 > 3000): queue.
        assert!(matches!(ctl.evaluate(&d), AdmissionDecision::Queue { .. }));
        // A DRAM-light job still fits on the second slot.
        let light = demand(500, 100, 40.0);
        let g1 = ctl.reserve(&light).unwrap();
        assert_eq!(g1, 1);
        // Slots exhausted now.
        assert!(matches!(ctl.evaluate(&light), AdmissionDecision::Queue { .. }));
        ctl.release(g0, &d);
        assert_eq!(ctl.free_slots(), 1);
        assert_eq!(ctl.committed_dram(), 100);
        // The freed slot is the lowest index again.
        assert_eq!(ctl.reserve(&d).unwrap(), 0);
    }

    #[test]
    fn pcie_headroom_binds() {
        let mut ctl = AdmissionController::new(cap());
        assert!(ctl.reserve(&demand(10, 10, 70.0)).is_some());
        match ctl.evaluate(&demand(10, 10, 40.0)) {
            AdmissionDecision::Queue { reason } => assert!(reason.contains("PCIe"), "{reason}"),
            other => panic!("expected PCIe queue, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unreserved")]
    fn double_release_panics() {
        let mut ctl = AdmissionController::new(cap());
        let d = demand(1, 1, 1.0);
        let g = ctl.reserve(&d).unwrap();
        ctl.release(g, &d);
        ctl.release(g, &d);
    }
}
