//! Fair-share scheduling: weighted deficit round-robin with aging.
//!
//! Each tenant carries a *deficit* — virtual seconds of service it is
//! owed. Every credit round adds `weight × quantum` to each backlogged
//! tenant (clamped above by a per-tenant burst cap so an idle tenant
//! cannot hoard unbounded credit); granting a lease charges its virtual
//! duration (clamped below by a global floor so one long slice cannot
//! bury a tenant forever). The scheduler is *work-conserving*: when a
//! GPU slot is free and any tenant has backlog, something is granted —
//! the deficit only decides **who**.
//!
//! Starvation freedom comes from aging: a backlogged tenant's rank gains
//! `waited_rounds × aging_step` on top of its deficit, and the step is
//! sized so that any tenant that keeps waiting eventually outranks every
//! possible deficit gap. Ties break on tenant name (then job ordinal at
//! the caller), keeping grant order a pure function of history.

use std::collections::BTreeMap;

use crate::spec::MAX_PRIORITY;

/// Tuning knobs of the deficit round-robin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Virtual seconds of service credited per weight unit per round.
    pub quantum_secs: f64,
    /// Burst cap in rounds: a tenant's deficit saturates at
    /// `weight × quantum × burst_rounds`.
    pub burst_rounds: f64,
    /// Rank bonus per round spent waiting while backlogged.
    pub aging_step: f64,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        let quantum_secs = 0.05;
        SchedulerConfig {
            quantum_secs,
            burst_rounds: 8.0,
            // One waited round outweighs a full quantum at max weight, so
            // ranks of perpetual waiters grow without bound while deficit
            // gaps stay bounded by the burst cap and charge floor.
            aging_step: quantum_secs * f64::from(MAX_PRIORITY) * 2.0,
        }
    }
}

impl SchedulerConfig {
    /// The saturation deficit for a tenant of `weight`.
    pub fn deficit_cap(&self, weight: f64) -> f64 {
        weight * self.quantum_secs * self.burst_rounds
    }

    /// The global floor no deficit may sink below.
    pub fn deficit_floor(&self) -> f64 {
        -self.deficit_cap(f64::from(MAX_PRIORITY) * 2.0)
    }
}

/// Per-tenant fair-share account.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantShare {
    /// Fair-share weight (priority × deadline-class factor).
    pub weight: f64,
    /// Virtual seconds of service owed (bounded both ways).
    pub deficit: f64,
    /// Credit rounds spent backlogged since the last grant.
    pub waited_rounds: usize,
    /// Leases granted to this tenant so far.
    pub granted: u64,
}

/// The weighted deficit round-robin scheduler.
#[derive(Debug)]
pub struct FairScheduler {
    cfg: SchedulerConfig,
    tenants: BTreeMap<String, TenantShare>,
}

impl FairScheduler {
    /// An empty scheduler with the given knobs.
    pub fn new(cfg: SchedulerConfig) -> FairScheduler {
        FairScheduler { cfg, tenants: BTreeMap::new() }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Registers `tenant` with `weight` (idempotent; the maximum weight
    /// across its jobs wins, so one high-priority job lifts the tenant).
    pub fn ensure_tenant(&mut self, tenant: &str, weight: f64) {
        let share = self.tenants.entry(tenant.to_string()).or_insert(TenantShare {
            weight,
            deficit: 0.0,
            waited_rounds: 0,
            granted: 0,
        });
        share.weight = share.weight.max(weight);
    }

    /// The share record of `tenant`, if registered.
    pub fn share(&self, tenant: &str) -> Option<&TenantShare> {
        self.tenants.get(tenant)
    }

    /// All registered tenants in name order.
    pub fn shares(&self) -> impl Iterator<Item = (&str, &TenantShare)> {
        self.tenants.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// One credit round over `backlogged` tenants: each gains
    /// `weight × quantum` of deficit (saturating at its burst cap) and
    /// one waited round.
    pub fn credit<'a, I: IntoIterator<Item = &'a str>>(&mut self, backlogged: I) {
        for name in backlogged {
            if let Some(share) = self.tenants.get_mut(name) {
                let cap = self.cfg.deficit_cap(share.weight);
                share.deficit = (share.deficit + share.weight * self.cfg.quantum_secs).min(cap);
                share.waited_rounds += 1;
            }
        }
    }

    /// The grant rank of `tenant`: deficit plus its aging bonus.
    /// Unregistered tenants rank at the floor.
    pub fn rank(&self, tenant: &str) -> f64 {
        match self.tenants.get(tenant) {
            Some(s) => s.deficit + s.waited_rounds as f64 * self.cfg.aging_step,
            None => self.cfg.deficit_floor(),
        }
    }

    /// Orders candidate tenants best-first: descending rank, ties broken
    /// by ascending name. `candidates` must be free of duplicates.
    pub fn order<'a>(&self, candidates: &[&'a str]) -> Vec<&'a str> {
        let mut ranked: Vec<(&str, f64)> =
            candidates.iter().map(|t| (*t, self.rank(t))).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(b.0)));
        ranked.into_iter().map(|(t, _)| t).collect()
    }

    /// Records a granted lease of virtual duration `secs` to `tenant`:
    /// charges the deficit (clamped at the global floor) and resets its
    /// aging clock.
    pub fn charge(&mut self, tenant: &str, secs: f64) {
        let floor = self.cfg.deficit_floor();
        if let Some(share) = self.tenants.get_mut(tenant) {
            share.deficit = (share.deficit - secs).max(floor);
            share.waited_rounds = 0;
            share.granted += 1;
        }
    }

    /// Asserts the deficit-bound invariant for every tenant; returns the
    /// first violation. Exercised by proptests and `debug_assert`s.
    pub fn check_bounds(&self) -> Result<(), String> {
        let floor = self.cfg.deficit_floor();
        for (name, share) in &self.tenants {
            let cap = self.cfg.deficit_cap(share.weight);
            if !(share.deficit >= floor - 1e-9 && share.deficit <= cap + 1e-9) {
                return Err(format!(
                    "tenant {name}: deficit {} outside [{floor}, {cap}]",
                    share.deficit
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> FairScheduler {
        let mut s = FairScheduler::new(SchedulerConfig::default());
        s.ensure_tenant("heavy", 8.0);
        s.ensure_tenant("light", 1.0);
        s
    }

    #[test]
    fn credit_favors_weight_and_charge_resets_aging() {
        let mut s = sched();
        s.credit(["heavy", "light"]);
        assert!(s.rank("heavy") > s.rank("light"));
        assert_eq!(s.order(&["light", "heavy"]), vec!["heavy", "light"]);
        s.charge("heavy", 1.0);
        assert_eq!(s.share("heavy").unwrap().waited_rounds, 0);
        assert_eq!(s.share("heavy").unwrap().granted, 1);
        // After a big charge the light tenant outranks the heavy one.
        assert_eq!(s.order(&["heavy", "light"]), vec!["light", "heavy"]);
    }

    #[test]
    fn deficits_stay_bounded_both_ways() {
        let mut s = sched();
        for _ in 0..10_000 {
            s.credit(["heavy", "light"]);
        }
        s.check_bounds().unwrap();
        let cfg = *s.config();
        assert!(s.share("heavy").unwrap().deficit <= cfg.deficit_cap(8.0) + 1e-9);
        for _ in 0..10_000 {
            s.charge("light", 5.0);
        }
        s.check_bounds().unwrap();
        assert!(s.share("light").unwrap().deficit >= cfg.deficit_floor() - 1e-9);
    }

    #[test]
    fn aging_eventually_outranks_any_deficit_gap() {
        let mut s = sched();
        // Saturate heavy's deficit and pin light at the floor.
        for _ in 0..100 {
            s.credit(["heavy"]);
        }
        s.charge("light", 1e18);
        // Heavy keeps being granted (each grant resets its aging clock)
        // while light only waits: light's rank must still overtake within
        // a bounded number of rounds — the starvation-freedom invariant.
        let mut rounds = 0usize;
        while s.rank("light") <= s.rank("heavy") {
            s.credit(["heavy", "light"]);
            s.charge("heavy", 0.0);
            rounds += 1;
            assert!(rounds < 10_000, "light tenant starved");
        }
        assert!(rounds > 0);
        s.check_bounds().unwrap();
    }

    #[test]
    fn ties_break_on_tenant_name() {
        let mut s = FairScheduler::new(SchedulerConfig::default());
        s.ensure_tenant("beta", 2.0);
        s.ensure_tenant("alfa", 2.0);
        assert_eq!(s.order(&["beta", "alfa"]), vec!["alfa", "beta"]);
    }

    #[test]
    fn max_weight_across_jobs_wins() {
        let mut s = FairScheduler::new(SchedulerConfig::default());
        s.ensure_tenant("t", 2.0);
        s.ensure_tenant("t", 5.0);
        s.ensure_tenant("t", 1.0);
        assert_eq!(s.share("t").unwrap().weight, 5.0);
    }
}
