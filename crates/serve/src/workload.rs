//! Seeded open-loop workload expansion: turning a handful of prototype
//! jobs into a schedule of hundreds.
//!
//! `dos-cli serve --jobs N`, the `serve_bench` harness, and the CI smoke
//! test all need the same pinned schedule: N jobs cycled over the
//! submission file's prototypes, arriving open-loop at a rate the cluster
//! can *almost* keep up with. The default rate (1/0.9 of the Equation 1
//! service rate) plus paired-burst arrivals keeps a backlog alive — so
//! the run exercises preemption — while staying close enough to capacity
//! that the fair scheduler keeps every tenant's service gap and the p99
//! admission-to-start latency bounded.

use dos_hal::HardwareProfile;

use crate::oracle::job_cost;
use crate::spec::JobSpec;

/// Arrival spacing as a fraction of the mean per-job service time per
/// slot: below 1.0 means jobs arrive slightly faster than they drain.
const DEFAULT_LOAD_SPACING: f64 = 0.9;

/// Consecutive arrivals that share one instant (burst size). Bursts leave
/// at least one job backlogged per burst, exercising preemption even when
/// the long-run rate is sustainable.
const BURST: usize = 2;

/// Options for [`open_loop_schedule`].
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopOptions {
    /// Total jobs to generate (prototypes are cycled).
    pub jobs: usize,
    /// Seed for per-job data streams and arrival jitter.
    pub seed: u64,
    /// Arrival rate, jobs/second of virtual time; derived from the
    /// Equation 1 cost of the prototypes when `None`.
    pub rate_jobs_per_sec: Option<f64>,
}

impl Default for OpenLoopOptions {
    fn default() -> OpenLoopOptions {
        OpenLoopOptions { jobs: 200, seed: 0, rate_jobs_per_sec: None }
    }
}

/// SplitMix64: the repo-wide cheap seed mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Expands `prototypes` into a seeded open-loop schedule of
/// `opts.jobs` jobs against `profile`.
///
/// Job `i` clones prototype `i % len`, renamed `{name}-{i}` (so
/// tenant/name pairs stay unique), reseeded from `opts.seed`, and
/// assigned a paired-burst arrival with a small deterministic jitter.
/// The whole schedule is a pure function of `(prototypes, profile,
/// opts)` — the property the bench baseline and the CI smoke pin.
///
/// # Errors
///
/// Returns a description when there are no prototypes, a prototype is
/// invalid, or the requested rate is not positive.
pub fn open_loop_schedule(
    profile: &HardwareProfile,
    prototypes: &[JobSpec],
    opts: &OpenLoopOptions,
) -> Result<Vec<JobSpec>, String> {
    if prototypes.is_empty() {
        return Err("open-loop expansion needs at least one prototype job".to_string());
    }
    if opts.jobs == 0 {
        return Err("open-loop expansion needs a positive job count".to_string());
    }
    for proto in prototypes {
        proto.validate()?;
    }
    let mean_cost = prototypes
        .iter()
        .map(|p| job_cost(profile, &p.trainer, p.iterations).total_secs)
        .sum::<f64>()
        / prototypes.len() as f64;
    let spacing = match opts.rate_jobs_per_sec {
        Some(rate) if rate > 0.0 && rate.is_finite() => 1.0 / rate,
        Some(rate) => return Err(format!("open-loop rate {rate} must be a positive number")),
        None => DEFAULT_LOAD_SPACING * mean_cost / profile.num_gpus as f64,
    };
    let mut jobs = Vec::with_capacity(opts.jobs);
    for i in 0..opts.jobs {
        let proto = &prototypes[i % prototypes.len()];
        let mut job = proto.clone();
        job.name = format!("{}-{i}", proto.name);
        job.seed = mix64(opts.seed ^ (i as u64).wrapping_mul(0x6a09_e667_f3bc_c909));
        // Paired bursts at double spacing (same long-run rate), plus up to
        // 10% forward jitter so distinct seeds give distinct schedules.
        let jitter = (job.seed % 1024) as f64 / 1024.0 * 0.1 * spacing;
        job.arrival_secs = (i - i % BURST) as f64 * spacing + jitter;
        jobs.push(job);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto(tenant: &str, priority: u8) -> JobSpec {
        serde_json::from_str(&format!(
            r#"{{
                "tenant": "{tenant}", "name": "job", "iterations": 700,
                "priority": {priority},
                "trainer": {{ "params": 96, "subgroup_size": 16,
                              "deep_optimizer_states": {{ "update_stride": 2 }} }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn expansion_is_a_pure_function_of_the_seed() {
        let profile = HardwareProfile::jlse_h100();
        let protos = [proto("acme", 6), proto("beta", 2), proto("zeta", 4)];
        let opts = OpenLoopOptions { jobs: 50, seed: 7, rate_jobs_per_sec: None };
        let a = open_loop_schedule(&profile, &protos, &opts).unwrap();
        let b = open_loop_schedule(&profile, &protos, &opts).unwrap();
        assert_eq!(a, b);
        let c = open_loop_schedule(
            &profile,
            &protos,
            &OpenLoopOptions { seed: 8, ..opts },
        )
        .unwrap();
        assert_ne!(a, c, "seed must perturb the schedule");
        // Unique tenant/name pairs, cycled tenants, sorted-compatible arrivals.
        assert_eq!(a.len(), 50);
        let mut names: Vec<(&str, &str)> =
            a.iter().map(|j| (j.tenant.as_str(), j.name.as_str())).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 50);
        assert!(a.iter().all(|j| j.arrival_secs.is_finite() && j.arrival_secs >= 0.0));
    }

    #[test]
    fn explicit_rate_overrides_the_derived_spacing() {
        let profile = HardwareProfile::jlse_h100();
        let protos = [proto("acme", 4)];
        let fast = open_loop_schedule(
            &profile,
            &protos,
            &OpenLoopOptions { jobs: 10, seed: 0, rate_jobs_per_sec: Some(100.0) },
        )
        .unwrap();
        assert!(fast.last().unwrap().arrival_secs < 0.1 * 10.0);
        assert!(open_loop_schedule(
            &profile,
            &protos,
            &OpenLoopOptions { jobs: 10, seed: 0, rate_jobs_per_sec: Some(-1.0) },
        )
        .is_err());
        assert!(open_loop_schedule(&profile, &[], &OpenLoopOptions::default()).is_err());
    }
}
