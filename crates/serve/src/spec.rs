//! Job specifications: the JSON surface a tenant submits.
//!
//! A [`JobSpec`] wraps the `dos-train` [`TrainerConfig`] document with the
//! multi-tenant envelope — tenant identity, priority, deadline class, and
//! explicit (or derived) HBM/DRAM/PCIe demands the admission controller
//! prices against the `dos-hal` capacity budgets. A [`ServeSpec`] is a
//! whole submission file: a hardware profile name plus a list of jobs.

use serde::{Deserialize, Serialize};

use dos_hal::HardwareProfile;
use dos_train::TrainerConfig;

use crate::admission::Demand;

/// Highest admissible priority (inclusive); weights scale linearly in it.
pub const MAX_PRIORITY: u8 = 9;

/// Derived DRAM demand per parameter, bytes: FP32 master + momentum +
/// variance (12) plus one FP32 staging copy in flight (4).
pub const DRAM_BYTES_PER_PARAM: u64 = 16;

/// Derived HBM demand per parameter, bytes: the FP16 working copy.
pub const HBM_BYTES_PER_PARAM: u64 = 2;

/// Derived HBM staging overhead per subgroup parameter, bytes: FP32
/// params/momentum/variance/gradients windows (4 × 4).
pub const HBM_STAGING_BYTES_PER_SUBGROUP_PARAM: u64 = 16;

/// How latency-sensitive a job is; feeds the fair-share weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum DeadlineClass {
    /// Latency-critical fine-tune; doubled share weight.
    Interactive,
    /// The default service class.
    #[default]
    Standard,
    /// Throughput-oriented background job; halved share weight.
    Batch,
}

impl DeadlineClass {
    /// The weight multiplier of the class.
    pub fn weight_factor(self) -> f64 {
        match self {
            DeadlineClass::Interactive => 2.0,
            DeadlineClass::Standard => 1.0,
            DeadlineClass::Batch => 0.5,
        }
    }
}

/// One tenant job: identity + service envelope + the wrapped trainer
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct JobSpec {
    /// Tenant the job bills to (fair-share accounting key). Non-empty.
    pub tenant: String,
    /// Job name, unique per tenant in one submission.
    pub name: String,
    /// Priority `1..=9`; the fair-share weight scales linearly in it.
    #[serde(default = "default_priority")]
    pub priority: u8,
    /// Service class (weight multiplier).
    #[serde(default)]
    pub deadline: DeadlineClass,
    /// Optimizer steps the job runs before completing.
    pub iterations: usize,
    /// Virtual arrival time, seconds (open-loop schedules pin this).
    #[serde(default)]
    pub arrival_secs: f64,
    /// Seed of the job's deterministic init/gradient streams.
    #[serde(default)]
    pub seed: u64,
    /// Explicit HBM demand, bytes; derived from the trainer shape when
    /// absent.
    #[serde(default)]
    pub hbm_bytes: Option<u64>,
    /// Explicit DRAM demand, bytes; derived when absent.
    #[serde(default)]
    pub dram_bytes: Option<u64>,
    /// Explicit PCIe demand, bytes/s; one GPU's update-phase link share
    /// when absent.
    #[serde(default)]
    pub pcie_bps: Option<f64>,
    /// The wrapped `dos-train` configuration.
    pub trainer: TrainerConfig,
}

fn default_priority() -> u8 {
    4
}

impl JobSpec {
    /// Validates the envelope and the wrapped trainer configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenant.trim().is_empty() {
            return Err("tenant must be non-empty".to_string());
        }
        if self.name.trim().is_empty() {
            return Err(format!("tenant {:?}: job name must be non-empty", self.tenant));
        }
        if self.priority == 0 || self.priority > MAX_PRIORITY {
            return Err(format!(
                "job {}/{}: priority {} outside 1..={MAX_PRIORITY}",
                self.tenant, self.name, self.priority
            ));
        }
        if self.iterations == 0 {
            return Err(format!("job {}/{}: iterations must be positive", self.tenant, self.name));
        }
        if !self.arrival_secs.is_finite() || self.arrival_secs < 0.0 {
            return Err(format!(
                "job {}/{}: arrival_secs must be finite and non-negative",
                self.tenant, self.name
            ));
        }
        self.trainer
            .validate()
            .map_err(|e| format!("job {}/{}: trainer: {e}", self.tenant, self.name))?;
        self.trainer
            .resolve_rule()
            .map_err(|e| format!("job {}/{}: trainer: {e}", self.tenant, self.name))?;
        Ok(())
    }

    /// The fair-share weight: priority × deadline-class factor.
    pub fn weight(&self) -> f64 {
        f64::from(self.priority) * self.deadline.weight_factor()
    }

    /// The job's resource demand against `profile`, deriving any budget
    /// the spec leaves implicit from the trainer shape.
    pub fn demand(&self, profile: &HardwareProfile) -> Demand {
        let params = self.trainer.params as u64;
        let subgroup = self.trainer.subgroup_size as u64;
        Demand {
            hbm_bytes: self.hbm_bytes.unwrap_or(
                params * HBM_BYTES_PER_PARAM + subgroup * HBM_STAGING_BYTES_PER_SUBGROUP_PARAM,
            ),
            dram_bytes: self.dram_bytes.unwrap_or(params * DRAM_BYTES_PER_PARAM),
            pcie_bps: self.pcie_bps.unwrap_or_else(|| profile.update_link_bw()),
        }
    }
}

/// A whole submission document: hardware profile + jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ServeSpec {
    /// Hardware profile name (a `dos-hal` preset); the JLSE 4×H100 testbed
    /// when absent.
    #[serde(default)]
    pub profile: Option<String>,
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
}

impl ServeSpec {
    /// Parses a submission document.
    ///
    /// # Errors
    ///
    /// Returns a description on malformed JSON.
    pub fn from_json(json: &str) -> Result<ServeSpec, String> {
        serde_json::from_str(json).map_err(|e| format!("serve spec: {e}"))
    }

    /// Resolves the named hardware profile against the `dos-hal` presets.
    ///
    /// # Errors
    ///
    /// Returns the unknown name and the known ones.
    pub fn resolve_profile(&self) -> Result<HardwareProfile, String> {
        let Some(name) = &self.profile else {
            return Ok(HardwareProfile::jlse_h100());
        };
        HardwareProfile::presets()
            .into_iter()
            .find(|p| &p.name == name)
            .ok_or_else(|| {
                let known: Vec<String> =
                    HardwareProfile::presets().into_iter().map(|p| p.name).collect();
                format!("unknown profile {name:?} (known: {})", known.join(", "))
            })
    }

    /// Validates every job plus cross-job constraints (unique
    /// tenant/name pairs).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.jobs.is_empty() {
            return Err("serve spec has no jobs".to_string());
        }
        let mut seen: Vec<(&str, &str)> = Vec::new();
        for job in &self.jobs {
            job.validate()?;
            let key = (job.tenant.as_str(), job.name.as_str());
            if seen.contains(&key) {
                return Err(format!("duplicate job {}/{}", job.tenant, job.name));
            }
            seen.push(key);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_json() -> &'static str {
        r#"{
            "tenant": "acme", "name": "ft-1", "priority": 6,
            "deadline": "interactive", "iterations": 4, "seed": 7,
            "trainer": { "params": 64, "subgroup_size": 8,
                         "deep_optimizer_states": { "update_stride": 2 } }
        }"#
    }

    #[test]
    fn job_spec_parses_and_validates() {
        let job: JobSpec = serde_json::from_str(job_json()).unwrap();
        assert_eq!(job.tenant, "acme");
        assert_eq!(job.deadline, DeadlineClass::Interactive);
        assert_eq!(job.weight(), 12.0);
        job.validate().unwrap();
    }

    #[test]
    fn derived_demand_follows_the_trainer_shape() {
        let job: JobSpec = serde_json::from_str(job_json()).unwrap();
        let profile = HardwareProfile::jlse_h100();
        let d = job.demand(&profile);
        assert_eq!(d.dram_bytes, 64 * DRAM_BYTES_PER_PARAM);
        assert_eq!(d.hbm_bytes, 64 * 2 + 8 * 16);
        assert_eq!(d.pcie_bps, profile.update_link_bw());
        // Explicit budgets win over derivation.
        let mut job = job;
        job.hbm_bytes = Some(1 << 30);
        assert_eq!(job.demand(&profile).hbm_bytes, 1 << 30);
    }

    #[test]
    fn envelope_violations_are_rejected() {
        let mut job: JobSpec = serde_json::from_str(job_json()).unwrap();
        job.priority = 0;
        assert!(job.validate().is_err());
        job.priority = 10;
        assert!(job.validate().is_err());
        let mut job: JobSpec = serde_json::from_str(job_json()).unwrap();
        job.tenant = " ".to_string();
        assert!(job.validate().is_err());
        let mut job: JobSpec = serde_json::from_str(job_json()).unwrap();
        job.iterations = 0;
        assert!(job.validate().is_err());
        let mut job: JobSpec = serde_json::from_str(job_json()).unwrap();
        job.arrival_secs = f64::NAN;
        assert!(job.validate().is_err());
    }

    #[test]
    fn serve_spec_resolves_profiles_and_rejects_duplicates() {
        let json = format!(
            r#"{{ "profile": "4xV100-32GB", "jobs": [{j}, {j}] }}"#,
            j = job_json()
        );
        let spec = ServeSpec::from_json(&json).unwrap();
        assert_eq!(spec.resolve_profile().unwrap().name, "4xV100-32GB");
        assert!(spec.validate().unwrap_err().contains("duplicate"));

        let spec = ServeSpec { profile: Some("nope".into()), jobs: vec![] };
        assert!(spec.resolve_profile().is_err());
        assert!(spec.validate().is_err());

        let spec = ServeSpec::from_json(&format!(r#"{{ "jobs": [{}] }}"#, job_json())).unwrap();
        assert_eq!(spec.resolve_profile().unwrap().name, "jlse-4xH100");
        spec.validate().unwrap();
    }

    #[test]
    fn unknown_fields_fail_fast() {
        assert!(ServeSpec::from_json(r#"{ "jobs": [], "extra": 1 }"#).is_err());
    }
}
