//! Regenerates every table and figure of the paper in one pass
//! (`cargo bench -p dos-bench --bench figures`).

fn main() {
    for (name, run) in dos_bench::all_experiments() {
        println!("\n######## {name} ########");
        println!("{}", run());
    }
}
