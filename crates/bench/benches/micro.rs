//! Criterion micro-benchmarks of the functional kernels: precision
//! conversion (Table 1's software counterpart), Adam update throughput,
//! the hybrid pipeline, and the discrete-event engine itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dos::core::{hybrid_update, PipelineConfig, StridePolicy};
use dos::optim::{MixedPrecisionState, UpdateRule};
use dos::tensor::convert::{downscale_f32_chunked, upscale_f16_chunked};
use dos::tensor::F16;
use dos::zero::partition_into_subgroups;

fn bench_conversion(c: &mut Criterion) {
    let n = 1 << 18;
    let src32: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
    let src16: Vec<F16> = src32.iter().map(|&x| F16::from_f32(x)).collect();
    let mut g = c.benchmark_group("precision-conversion");
    g.throughput(Throughput::Bytes((n * 4) as u64));
    g.bench_function("downscale_f32_to_f16", |b| {
        let mut dst = vec![F16::ZERO; n];
        b.iter(|| downscale_f32_chunked(&src32, &mut dst, 8192).unwrap());
    });
    g.bench_function("upscale_f16_to_f32", |b| {
        let mut dst = vec![0.0f32; n];
        b.iter(|| upscale_f16_chunked(&src16, &mut dst, 8192).unwrap());
    });
    g.finish();
}

fn bench_adam(c: &mut Criterion) {
    let n = 1 << 18;
    let grads: Vec<f32> = (0..n).map(|i| (i as f32).cos() * 0.01).collect();
    let mut g = c.benchmark_group("adam-update");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("full_step", |b| {
        let mut state =
            MixedPrecisionState::new(vec![0.5; n], UpdateRule::adam(), 1e-3);
        b.iter(|| state.full_step(&grads));
    });
    g.finish();
}

fn bench_hybrid_pipeline(c: &mut Criterion) {
    let n = 1 << 18;
    let grads: Vec<f32> = (0..n).map(|i| (i as f32).cos() * 0.01).collect();
    let subgroups = partition_into_subgroups(n, 1 << 14);
    let mut g = c.benchmark_group("hybrid-pipeline");
    g.throughput(Throughput::Elements(n as u64));
    for stride in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("stride", stride), &stride, |b, &k| {
            let mut state =
                MixedPrecisionState::new(vec![0.5; n], UpdateRule::adam(), 1e-3);
            let cfg = PipelineConfig { stride: StridePolicy::Fixed(k), ..Default::default() };
            b.iter(|| hybrid_update(&mut state, &grads, &subgroups, cfg).unwrap());
        });
    }
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    use dos::hal::{OpSpec, ResourceKind, Simulator};
    c.bench_function("engine/submit-10k-ops", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            let gpu = sim.add_resource("gpu", ResourceKind::GpuCompute, 1e9);
            let s = sim.add_stream("s");
            let mut last = None;
            for _ in 0..10_000 {
                let mut spec = OpSpec::compute(gpu, 1e6).on(s);
                if let Some(op) = last {
                    spec = spec.after(op);
                }
                last = Some(sim.submit(spec).unwrap());
            }
            sim.makespan()
        });
    });
}

fn bench_transformer(c: &mut Criterion) {
    use dos::nn::{Gpt, GptConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = GptConfig { vocab_size: 256, max_seq: 32, dim: 64, num_layers: 2, num_heads: 4, init_std: 0.05 };
    let mut model = Gpt::new(cfg, &mut rng);
    let tokens: Vec<usize> = (0..64).map(|i| i % 256).collect();
    let targets: Vec<usize> = (0..64).map(|i| (i + 1) % 256).collect();
    let mut g = c.benchmark_group("transformer");
    g.throughput(Throughput::Elements(64));
    g.bench_function("forward", |b| {
        b.iter(|| model.forward(&tokens, 2, 32));
    });
    g.bench_function("forward+backward", |b| {
        b.iter(|| model.loss_and_backward(&tokens, &targets, 2, 32));
    });
    g.bench_function("forward+backward checkpointed", |b| {
        b.iter(|| model.loss_and_backward_checkpointed(&tokens, &targets, 2, 32));
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    use dos::collectives::Communicator;
    use std::thread;
    let n = 1 << 14;
    let mut g = c.benchmark_group("collectives");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("all_reduce_4_ranks", |b| {
        b.iter(|| {
            let comms = Communicator::world(4);
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    thread::spawn(move || {
                        let mut data = vec![comm.rank() as f32; n];
                        comm.all_reduce_sum(&mut data).unwrap();
                        data[0]
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<f32>()
        });
    });
    g.finish();
}

fn bench_bpe(c: &mut Criterion) {
    use dos::data::{BpeTokenizer, Corpus};
    let corpus = Corpus::synthetic(3, 100);
    let text = corpus.joined_text();
    let tok = BpeTokenizer::train(&text, 512);
    let mut g = c.benchmark_group("bpe");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("encode-corpus", |b| {
        b.iter(|| tok.encode(&text).len());
    });
    g.bench_function("train-512", |b| {
        b.iter(|| BpeTokenizer::train(&text[..text.len().min(4000)], 300).vocab_size());
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    use dos::core::{DeepOptimizerStates, Zero3Offload};
    use dos::hal::HardwareProfile;
    use dos::nn::ModelSpec;
    use dos::sim::{simulate_iteration, TrainConfig};
    let mut g = c.benchmark_group("simulator");
    g.bench_function("iteration-20b-zero3", |b| {
        let cfg = TrainConfig::baseline(
            ModelSpec::by_name("20B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        b.iter(|| simulate_iteration(&cfg, &Zero3Offload).unwrap().total_secs);
    });
    g.bench_function("iteration-20b-dos", |b| {
        let cfg = TrainConfig::deep_optimizer_states(
            ModelSpec::by_name("20B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        b.iter(|| {
            simulate_iteration(&cfg, &DeepOptimizerStates::default()).unwrap().total_secs
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_conversion,
    bench_adam,
    bench_hybrid_pipeline,
    bench_engine,
    bench_transformer,
    bench_collectives,
    bench_bpe,
    bench_simulation
);
criterion_main!(benches);
