//! Emergent DRAM/NUMA contention (§3, §5.1, Figure 15).
//!
//! The calibrated profiles apply a static CPU-slowdown factor while PCIe
//! traffic is in flight. This experiment derives that factor from first
//! principles with a focused micro-simulation: two ranks share one NUMA
//! domain's DRAM bandwidth (as on the testbed, where GPU0/GPU1 map to
//! NUMA0); every CPU update *and* every PCIe staging transfer consumes
//! passes over that shared memory. Comparing a rank's update throughput
//! with and without the neighbor's concurrent traffic yields the emergent
//! slowdown.

use dos::hal::{HardwareProfile, OpSpec, ResourceKind, Simulator};

use crate::support::TextTable;

/// Per-parameter DRAM bytes touched by a CPU Adam update: read p, m, v, g
/// (16 B) and write p, m, v (12 B) in FP32.
const UPDATE_DRAM_BYTES_PER_PARAM: f64 = 28.0;
/// Per-parameter DRAM bytes the *neighbor's* interleaved scheduler moves,
/// averaged over its subgroups: with stride k = 2, every second subgroup
/// round-trips its 12 B/param FP32 state (prefetch + flush = 24 B), i.e.
/// 12 B/param on average.
const STAGING_DRAM_BYTES_PER_PARAM: f64 = 12.0;

/// Simulates `subgroups` CPU subgroup updates on one rank, optionally with
/// a NUMA neighbor streaming staging traffic through the same DRAM; returns
/// the update-phase duration in seconds.
fn numa_update_time(profile: &HardwareProfile, subgroups: usize, neighbor_staging: bool) -> f64 {
    let sg = 100_000_000f64; // 100M-parameter subgroups
    let mut sim = Simulator::new();
    // The NUMA domain's DRAM: one bandwidth domain shared by both ranks
    // (the testbed maps GPU0 and GPU1 to NUMA0, §5.1).
    let dram =
        sim.add_resource("numa0.dram", ResourceKind::HostMemory, profile.host_memcpy_bw);
    let cpu_a = sim.add_resource("rank0.cpu", ResourceKind::CpuCompute, 1.0);
    let s_cpu = sim.add_stream("rank0.cpu");
    let s_mem_a = sim.add_stream("rank0.mem");
    let s_b = sim.add_stream("rank1.dma");

    let cpu_secs = sg / profile.cpu_update_pps();
    let mut prev = None;
    // Per-subgroup, the two ranks' traffic interleaves on the shared DRAM
    // (the engine serves a resource in submission order, so the neighbor's
    // stream is woven into the loop, as it is in real time).
    for i in 0..subgroups {
        // The update's arithmetic occupies the rank's cores...
        let mut spec = OpSpec::compute(cpu_a, cpu_secs).on(s_cpu).label(format!("upd{i}"));
        if let Some(p) = prev {
            spec = spec.after(p);
        }
        let upd = sim.submit(spec).unwrap();
        // ...while its operand traffic occupies the shared DRAM.
        let mem = sim
            .submit(
                OpSpec::transfer(dram, sg * UPDATE_DRAM_BYTES_PER_PARAM)
                    .on(s_mem_a)
                    .label(format!("upd-mem{i}")),
            )
            .unwrap();
        if neighbor_staging {
            // The neighbor rank's interleaved scheduler streams optimizer
            // state through the same DRAM throughout the phase.
            sim.submit(
                OpSpec::transfer(dram, sg * STAGING_DRAM_BYTES_PER_PARAM)
                    .on(s_b)
                    .label(format!("stage{i}")),
            )
            .unwrap();
        }
        // The next update starts once both the cores and the memory system
        // have finished with this one.
        prev = Some(sim.join(s_cpu, [upd, mem]).unwrap());
    }
    sim.finish_time(prev.expect("at least one subgroup")).as_secs()
}

/// Extension: derive the DRAM-contention factor from the shared-NUMA
/// micro-simulation and compare with the calibrated profile constant.
pub fn extension_numa_contention() -> String {
    let profile = HardwareProfile::jlse_h100();
    let subgroups = 14; // one rank's share of the 20B model's subgroups
    let alone = numa_update_time(&profile, subgroups, false);
    let contended = numa_update_time(&profile, subgroups, true);
    let emergent_factor = alone / contended;
    let mut t = TextTable::new(["scenario", "update phase (s)", "CPU throughput factor"]);
    t.row(["rank alone on NUMA0".to_string(), format!("{alone:.3}"), "1.00".into()]);
    t.row([
        "neighbor streaming staging traffic".to_string(),
        format!("{contended:.3}"),
        format!("{emergent_factor:.2}"),
    ]);
    format!(
        "== Extension: emergent NUMA/DRAM contention (§3; two ranks per domain) ==\n{}\
         calibrated profile constant: {:.2}  |  emergent from shared-DRAM model: {:.2}\n\
         (every CPU update reads p,m,v,g and writes p,m,v through the same DRAM the\n\
          neighbor's prefetch/flush DMA streams occupy — Figure 15's CPU dip)\n",
        t.render(),
        profile.dram_contention_cpu_factor,
        emergent_factor,
    )
}

/// The raw emergent factor (exposed for tests).
pub fn emergent_contention_factor() -> f64 {
    let profile = HardwareProfile::jlse_h100();
    let alone = numa_update_time(&profile, 14, false);
    let contended = numa_update_time(&profile, 14, true);
    alone / contended
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_emerges_and_matches_the_calibrated_constant() {
        let factor = emergent_contention_factor();
        assert!(factor < 1.0, "sharing must slow updates: {factor}");
        let profile = HardwareProfile::jlse_h100();
        let calibrated = profile.dram_contention_cpu_factor;
        assert!(
            (factor - calibrated).abs() < 0.1,
            "emergent {factor:.2} should be near the calibrated {calibrated:.2}"
        );
    }

    #[test]
    fn more_subgroups_do_not_change_the_factor() {
        let profile = HardwareProfile::jlse_h100();
        let f_small = numa_update_time(&profile, 6, false) / numa_update_time(&profile, 6, true);
        let f_large =
            numa_update_time(&profile, 28, false) / numa_update_time(&profile, 28, true);
        assert!((f_small - f_large).abs() < 0.05, "{f_small} vs {f_large}");
    }

    #[test]
    fn contention_is_bounded_by_the_added_traffic() {
        let profile = HardwareProfile::jlse_h100();
        let contended = numa_update_time(&profile, 10, true);
        let alone = numa_update_time(&profile, 10, false);
        // The neighbor adds 12/28ths of the update's own DRAM traffic, so
        // the slowdown cannot exceed that proportion.
        assert!(contended < alone * (1.0 + 12.0 / 28.0) + 1e-9);
        assert!(contended > alone, "contention must cost something");
    }
}
