//! Regenerates the `extension_numa_contention` experiment; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::contention::extension_numa_contention());
}
