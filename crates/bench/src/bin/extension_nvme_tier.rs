//! Regenerates the `extension_nvme_tier` extension experiment; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::extensions::extension_nvme_tier());
}
