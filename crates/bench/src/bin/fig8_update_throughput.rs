//! Regenerates the paper's `fig8_update_throughput` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::comparisons::fig8_update_throughput());
}
