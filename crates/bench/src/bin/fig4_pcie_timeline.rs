//! Regenerates the paper's `fig4_pcie_timeline` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::timelines::fig4_pcie_timeline());
}
