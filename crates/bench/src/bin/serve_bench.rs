//! `serve_bench`: the pinned multi-tenant serving benchmark — aggregate
//! virtual throughput and p99 admission-to-start latency for a 200-job
//! open-loop schedule against the Equation 1 packing oracle, with an
//! optional CI regression gate; schema `dos-bench/serve-v1`, committed
//! baseline `BENCH_9.json`.
//!
//! ```text
//! serve_bench [--json] [--out PATH] [--baseline PATH] [--jobs N] [--seed S]
//! ```
//!
//! `--baseline BENCH_9.json` exits nonzero when any serving invariant
//! breaks (lost jobs, starvation, unbounded p99, no preemption, proof
//! divergence) or throughput/oracle-ratio regress past the committed
//! tolerances.

use std::path::PathBuf;
use std::process::ExitCode;

use dos_bench::serve::{regression_gate, render, run_serve_bench, ServeBenchReport};

struct Options {
    json: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    jobs: usize,
    seed: u64,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options { json: false, out: None, baseline: None, jobs: 200, seed: 0 };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next().map(String::from).ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--jobs" => opts.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.jobs == 0 {
        return Err("--jobs must be positive".to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), String> {
    let report = run_serve_bench(opts.jobs, opts.seed)?;
    let rendered_json = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("cannot serialize report: {e}"))?;
    if opts.json {
        println!("{rendered_json}");
    } else {
        print!("{}", render(&report));
    }
    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{rendered_json}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let baseline: ServeBenchReport = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse baseline {}: {e:?}", path.display()))?;
        regression_gate(&report, &baseline)?;
        eprintln!(
            "regression gate passed: {:.3e} pps (ratio {:.3}) vs baseline {:.3e} ({:.3})",
            report.aggregate_pps,
            report.oracle_ratio,
            baseline.aggregate_pps,
            baseline.oracle_ratio
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serve_bench: {e}");
            eprintln!("usage: serve_bench [--json] [--out PATH] [--baseline PATH] [--jobs N] [--seed S]");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
