//! Regenerates the paper's `ablation_static_placement` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::ablations::ablation_static_placement());
}
