//! Regenerates the `extension_grace_hopper` extension experiment; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::extensions::extension_grace_hopper());
}
