//! Regenerates the paper's `ablation_overlap` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::ablations::ablation_overlap());
}
