//! Regenerates the paper's `fig11_ratio_iteration` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::comparisons::fig11_ratio_iteration());
}
