//! Regenerates the paper's `fig17_weak_scaling` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::scaling::fig17_weak_scaling());
}
