//! Regenerates the paper's `fig6_gradient_path_gantt` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::timelines::fig6_gradient_path_gantt());
}
