//! Regenerates the `extension_grad_accumulation` extension experiment; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::extensions::extension_grad_accumulation());
}
