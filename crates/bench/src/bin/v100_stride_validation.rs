//! Regenerates the paper's `v100_stride_validation` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::scaling::v100_stride_validation());
}
