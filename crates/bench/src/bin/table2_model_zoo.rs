//! Regenerates the paper's `table2_model_zoo` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::tables::table2_model_zoo());
}
