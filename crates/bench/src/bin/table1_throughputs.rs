//! Regenerates the paper's `table1_throughputs` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::tables::table1_throughputs());
}
