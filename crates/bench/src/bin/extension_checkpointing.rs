//! Regenerates the `extension_checkpointing` extension experiment; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::extensions::extension_checkpointing());
}
