//! Regenerates the `ablation_critical_path` experiment; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::ablations::ablation_critical_path());
}
