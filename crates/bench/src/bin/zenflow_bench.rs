//! `zenflow_bench`: the pinned ZenFlowAsync-vs-DOS iteration-time
//! benchmark — averaged virtual iteration seconds for ZeRO-3, DOS, and
//! ZenFlow (S=0 and the pinned staleness bound) on the 20B zoo config,
//! with an optional CI regression gate; schema `dos-bench/zenflow-v1`,
//! committed baseline `BENCH_10.json`.
//!
//! ```text
//! zenflow_bench [--json] [--out PATH] [--baseline PATH]
//! ```
//!
//! `--baseline BENCH_10.json` exits nonzero when a ZenFlow invariant
//! breaks (staleness slowing the schedule, cold work no longer deferred,
//! a stalled update phase, losing to ZeRO-3) or iteration time / gains
//! regress past the committed tolerances.

use std::path::PathBuf;
use std::process::ExitCode;

use dos_bench::zenflow::{regression_gate, render, run_zenflow_bench, ZenFlowBenchReport};

struct Options {
    json: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options { json: false, out: None, baseline: None };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next().map(String::from).ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), String> {
    let report = run_zenflow_bench()?;
    let rendered_json = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("cannot serialize report: {e}"))?;
    if opts.json {
        println!("{rendered_json}");
    } else {
        print!("{}", render(&report));
    }
    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{rendered_json}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let baseline: ZenFlowBenchReport = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse baseline {}: {e:?}", path.display()))?;
        regression_gate(&report, &baseline)?;
        eprintln!(
            "regression gate passed: async {:.3}s ({:.2}x vs zero3) vs baseline {:.3}s ({:.2}x)",
            report.zenflow_async_avg_secs,
            report.gain_vs_zero3,
            baseline.zenflow_async_avg_secs,
            baseline.gain_vs_zero3
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("zenflow_bench: {e}");
            eprintln!("usage: zenflow_bench [--json] [--out PATH] [--baseline PATH]");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("zenflow_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
