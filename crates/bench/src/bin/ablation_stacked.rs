//! Regenerates the paper's `ablation_stacked` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::ablations::ablation_stacked());
}
