//! Regenerates the `extension_zenflow` extension experiment; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::extensions::extension_zenflow());
}
