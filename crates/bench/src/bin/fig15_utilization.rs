//! Regenerates the paper's `fig15_utilization` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::scaling::fig15_utilization());
}
