//! Regenerates the paper's `fig3_gpu_memory_timeline` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::timelines::fig3_gpu_memory_timeline());
}
