//! Regenerates the paper's `fig7_iteration_breakdown` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::comparisons::fig7_iteration_breakdown());
}
