//! Regenerates the paper's `fig2_subgroup_sweep` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::timelines::fig2_subgroup_sweep());
}
