//! Regenerates the paper's `ablation_pinned` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::ablations::ablation_pinned());
}
