//! Regenerates the paper's `fig5_schedule_gantt` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::timelines::fig5_schedule_gantt());
}
