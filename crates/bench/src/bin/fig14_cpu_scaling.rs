//! Regenerates the paper's `fig14_cpu_scaling` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::scaling::fig14_cpu_scaling());
}
