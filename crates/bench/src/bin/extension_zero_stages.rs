//! Regenerates the `extension_zero_stages` extension experiment; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::extensions::extension_zero_stages());
}
