//! Regenerates the paper's `fig10_ratio_update_time` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::comparisons::fig10_ratio_update_time());
}
