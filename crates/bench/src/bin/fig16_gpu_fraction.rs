//! Regenerates the paper's `fig16_gpu_fraction` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::scaling::fig16_gpu_fraction());
}
