//! Regenerates the paper's `fig12_ratio20_models` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::comparisons::fig12_ratio20_models());
}
