//! Regenerates the paper's `fig9_end_to_end` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::comparisons::fig9_end_to_end());
}
