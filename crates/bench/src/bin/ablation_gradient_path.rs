//! Regenerates the paper's `ablation_gradient_path` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::ablations::ablation_gradient_path());
}
