//! Regenerates the paper's `fig13_microbatch` artifact; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::scaling::fig13_microbatch());
}
