//! Regenerates the `extension_adaptive_control` extension experiment; see `EXPERIMENTS.md`.

fn main() {
    print!("{}", dos_bench::adaptive::extension_adaptive_control());
}
