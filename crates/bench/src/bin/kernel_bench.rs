//! `kernel_bench`: measured scalar-vs-vectorized kernel throughput plus
//! the end-to-end pooled `hybrid_update` rate, with an optional CI
//! regression gate; schema documented in `DESIGN.md` §11.
//!
//! ```text
//! kernel_bench [--json] [--out PATH] [--baseline PATH]
//!              [--elements N] [--rounds N] [--iters N]
//! ```
//!
//! `--baseline BENCH_7.json` exits nonzero when the end-to-end
//! throughput regresses by more than the committed tolerance or the
//! always-on monitoring overhead exceeds its budget.

use std::path::PathBuf;
use std::process::ExitCode;

use dos_bench::kernels::{regression_gate, render, run_kernel_bench, KernelBenchReport};

struct Options {
    json: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    elements: usize,
    rounds: usize,
    iters: usize,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        out: None,
        baseline: None,
        elements: 1 << 20,
        rounds: 5,
        iters: 4,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next().map(String::from).ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--json" => opts.json = true,
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--elements" => {
                opts.elements = value("--elements")?.parse().map_err(|e| format!("--elements: {e}"))?
            }
            "--rounds" => {
                opts.rounds = value("--rounds")?.parse().map_err(|e| format!("--rounds: {e}"))?
            }
            "--iters" => {
                opts.iters = value("--iters")?.parse().map_err(|e| format!("--iters: {e}"))?
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.elements == 0 || opts.rounds == 0 || opts.iters == 0 {
        return Err("--elements, --rounds, --iters must be positive".to_string());
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), String> {
    let report = run_kernel_bench(opts.elements, opts.rounds, opts.iters);
    let rendered_json = serde_json::to_string_pretty(&report)
        .map_err(|e| format!("cannot serialize report: {e}"))?;
    if opts.json {
        println!("{rendered_json}");
    } else {
        print!("{}", render(&report));
    }
    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{rendered_json}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let baseline: KernelBenchReport = serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse baseline {}: {e:?}", path.display()))?;
        regression_gate(&report, &baseline)?;
        eprintln!(
            "regression gate passed: {:.3e} pps vs baseline {:.3e}",
            report.hybrid_update.pps, baseline.hybrid_update.pps
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("kernel_bench: {e}");
            eprintln!(
                "usage: kernel_bench [--json] [--out PATH] [--baseline PATH] \
                 [--elements N] [--rounds N] [--iters N]"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("kernel_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
