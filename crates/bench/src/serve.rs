//! `serve_bench` support: the pinned multi-tenant serving benchmark and
//! its CI regression gate (`dos-bench/serve-v1` schema, committed
//! baseline `BENCH_9.json`).
//!
//! Unlike the kernel bench, every number here is *virtual-time*: the
//! coordinator replays a pinned 200-job open-loop schedule against the
//! Equation 1 cost model, so the report is a deterministic function of
//! `(jobs, seed)` and the gate can be tight — a regression means the
//! scheduling policy got worse, not that the machine was noisy.

use serde::{Deserialize, Serialize};

use dos::hal::HardwareProfile;
use dos::serve::{
    open_loop_schedule, Coordinator, JobSpec, OpenLoopOptions, ServeOptions, ORACLE_RATIO_FLOOR,
};

/// Report schema tag; the gate refuses to compare across schemas.
pub const SCHEMA: &str = "dos-bench/serve-v1";

/// Allowed relative drop in aggregate virtual throughput vs baseline.
pub const PPS_TOLERANCE: f64 = 0.02;

/// Allowed absolute drop in the oracle ratio vs baseline.
pub const RATIO_TOLERANCE: f64 = 0.02;

/// The `dos-bench/serve-v1` report: headline serving numbers for the
/// pinned open-loop schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Jobs in the pinned schedule.
    pub jobs: usize,
    /// Schedule seed.
    pub seed: u64,
    /// Jobs completed (must equal `jobs`).
    pub completed: usize,
    /// Checkpoint-based preemptions.
    pub preemptions: usize,
    /// Cross-GPU migrations on resume.
    pub migrations: usize,
    /// Virtual makespan, seconds.
    pub makespan_secs: f64,
    /// Achieved parameter updates per virtual second.
    pub aggregate_pps: f64,
    /// The packing oracle's rate over the same schedule.
    pub oracle_pps: f64,
    /// `oracle_secs / makespan_secs`.
    pub oracle_ratio: f64,
    /// Mean admission-to-start wait, virtual seconds.
    pub mean_wait_secs: f64,
    /// 99th-percentile admission-to-start wait, virtual seconds.
    pub p99_wait_secs: f64,
    /// The bound the p99 gate compares against.
    pub wait_bound_secs: f64,
    /// Tenants the run starved (must be empty).
    pub starved_tenants: Vec<String>,
    /// Whether the preemption proof compared bitwise-identical.
    pub proof_bitwise: bool,
}

/// The benchmark's prototype jobs — kept in lockstep with
/// `examples/tenants.json` so the CLI quickstart and the committed
/// baseline describe the same workload.
pub fn prototypes() -> Vec<JobSpec> {
    let mk = |tenant: &str, name: &str, priority: u8, deadline: &str| -> JobSpec {
        serde_json::from_str(&format!(
            r#"{{
                "tenant": "{tenant}", "name": "{name}", "priority": {priority},
                "deadline": "{deadline}", "iterations": 700,
                "trainer": {{ "params": 96, "subgroup_size": 16,
                              "deep_optimizer_states": {{ "update_stride": 2 }} }}
            }}"#
        ))
        .unwrap_or_else(|e| panic!("prototype {tenant}/{name}: {e}"))
    };
    vec![
        mk("acme", "finetune", 6, "interactive"),
        mk("beta", "pretrain", 2, "batch"),
        mk("zeta", "ablation", 4, "standard"),
    ]
}

/// Runs the pinned schedule: `jobs` jobs cycled over [`prototypes`] on
/// the JLSE 4×H100 profile, open-loop at the derived near-capacity rate.
///
/// # Errors
///
/// Returns a description when expansion or the coordinator itself fails
/// (gate violations are reported, not errored — the gate decides).
pub fn run_serve_bench(jobs: usize, seed: u64) -> Result<ServeBenchReport, String> {
    let profile = HardwareProfile::jlse_h100();
    let schedule = open_loop_schedule(
        &profile,
        &prototypes(),
        &OpenLoopOptions { jobs, seed, rate_jobs_per_sec: None },
    )?;
    let mut coord = Coordinator::new(profile, ServeOptions::default());
    let report = coord.run(schedule).map_err(|e| e.to_string())?;
    Ok(ServeBenchReport {
        schema: SCHEMA.to_string(),
        jobs,
        seed,
        completed: report.completed,
        preemptions: report.preemptions,
        migrations: report.migrations,
        makespan_secs: report.makespan_secs,
        aggregate_pps: report.aggregate_pps,
        oracle_pps: report.oracle_pps,
        oracle_ratio: report.oracle_ratio,
        mean_wait_secs: report.mean_wait_secs,
        p99_wait_secs: report.p99_wait_secs,
        wait_bound_secs: report.wait_bound_secs,
        starved_tenants: report.starved_tenants,
        proof_bitwise: report.proof.as_ref().is_some_and(|p| p.bitwise_identical),
    })
}

/// The CI gate: absolute serving invariants plus regression limits
/// against the committed baseline.
///
/// # Errors
///
/// Returns a rendered explanation of the first violated limit.
pub fn regression_gate(
    new: &ServeBenchReport,
    baseline: &ServeBenchReport,
) -> Result<(), String> {
    if new.schema != baseline.schema {
        return Err(format!("schema mismatch: {} vs baseline {}", new.schema, baseline.schema));
    }
    if new.completed != new.jobs {
        return Err(format!("{} of {} jobs completed", new.completed, new.jobs));
    }
    if !new.starved_tenants.is_empty() {
        return Err(format!("starved tenants: {}", new.starved_tenants.join(", ")));
    }
    if new.p99_wait_secs > new.wait_bound_secs {
        return Err(format!(
            "p99 admission-to-start {:.3e}s exceeds bound {:.3e}s",
            new.p99_wait_secs, new.wait_bound_secs
        ));
    }
    if new.preemptions == 0 {
        return Err("the pinned schedule no longer exercises preemption".to_string());
    }
    if !new.proof_bitwise {
        return Err("preemption proof no longer bitwise-identical".to_string());
    }
    if new.oracle_ratio < ORACLE_RATIO_FLOOR {
        return Err(format!(
            "oracle ratio {:.3} under the absolute floor {ORACLE_RATIO_FLOOR}",
            new.oracle_ratio
        ));
    }
    if new.oracle_ratio < baseline.oracle_ratio - RATIO_TOLERANCE {
        return Err(format!(
            "oracle ratio regressed: {:.4} vs baseline {:.4} (tolerance {RATIO_TOLERANCE})",
            new.oracle_ratio, baseline.oracle_ratio
        ));
    }
    if new.aggregate_pps < baseline.aggregate_pps * (1.0 - PPS_TOLERANCE) {
        return Err(format!(
            "aggregate throughput regressed: {:.4e} pps vs baseline {:.4e} (tolerance {:.0}%)",
            new.aggregate_pps,
            baseline.aggregate_pps,
            PPS_TOLERANCE * 100.0
        ));
    }
    Ok(())
}

/// Human rendering of one report.
pub fn render(report: &ServeBenchReport) -> String {
    format!(
        "{} — {} job(s), seed {}\n\
           completed {} | preemptions {} | migrations {}\n\
           makespan {:.3e} virtual s | {:.3e} pps = {:.1}% of oracle ({:.3e} pps)\n\
           waits: mean {:.3e}s, p99 {:.3e}s (bound {:.3e}s) | proof bitwise: {}\n",
        report.schema,
        report.jobs,
        report.seed,
        report.completed,
        report.preemptions,
        report.migrations,
        report.makespan_secs,
        report.aggregate_pps,
        report.oracle_ratio * 100.0,
        report.oracle_pps,
        report.mean_wait_secs,
        report.p99_wait_secs,
        report.wait_bound_secs,
        report.proof_bitwise,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_schedule_is_deterministic_and_passes_its_own_gate() {
        // Small job count keeps the test fast; the bin defaults to 200.
        let a = run_serve_bench(40, 0).unwrap();
        let b = run_serve_bench(40, 0).unwrap();
        assert_eq!(a, b, "virtual-time bench must be deterministic");
        assert_eq!(a.schema, SCHEMA);
        regression_gate(&a, &a).unwrap();
        assert!(a.preemptions >= 1);
    }

    #[test]
    fn gate_catches_regressions_and_schema_drift() {
        let report = run_serve_bench(40, 0).unwrap();
        let mut inflated = report.clone();
        inflated.aggregate_pps = report.aggregate_pps * 1.5;
        let err = regression_gate(&report, &inflated).unwrap_err();
        assert!(err.contains("throughput regressed"), "{err}");
        let mut wrong_schema = report.clone();
        wrong_schema.schema = "dos-bench/serve-v0".to_string();
        assert!(regression_gate(&report, &wrong_schema).is_err());
        let mut starved = report.clone();
        starved.starved_tenants = vec!["beta".to_string()];
        assert!(regression_gate(&starved, &report).is_err());
        let mut no_preempt = report;
        no_preempt.preemptions = 0;
        assert!(regression_gate(&no_preempt, &no_preempt).is_err());
    }

    #[test]
    fn prototypes_match_the_example_submission_file() {
        // Keep the embedded prototypes in lockstep with
        // examples/tenants.json so the CLI quickstart reproduces the
        // committed baseline.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/tenants.json");
        let text = std::fs::read_to_string(path).expect("examples/tenants.json");
        let spec = dos::serve::ServeSpec::from_json(&text).unwrap();
        assert_eq!(spec.jobs, prototypes());
        assert_eq!(spec.resolve_profile().unwrap().name, "jlse-4xH100");
    }
}
