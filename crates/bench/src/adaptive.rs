//! Extension experiment: the adaptive control plane racing the static
//! Equation 1 configuration, fault-free and through a pinned PCIe
//! degradation window.

use dos::control::{race_adaptive_vs_static, ControllerConfig, DegradationSpec};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::TrainConfig;

use crate::support::{secs, TextTable};

/// Extension: adaptive stride control vs the paper's once-solved stride.
///
/// Fault-free, the controller must be a no-op (it seeds at the same k* and
/// the hysteresis band keeps it there); under a degraded PCIe link, the
/// static arm keeps paying for transfers that no longer overlap while the
/// controller descends the ladder and recovers when the window closes.
pub fn extension_adaptive_control() -> String {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("20B").unwrap();
    let train = TrainConfig::deep_optimizer_states(spec, profile);
    const ITERS: usize = 12;
    const SEED: u64 = 7;

    let clean = race_adaptive_vs_static(&train, ControllerConfig::default(), &[], ITERS, SEED, None)
        .unwrap();
    let window = vec![DegradationSpec::parse("pcie.h2d:3..8@0.15").unwrap()];
    let faulted =
        race_adaptive_vs_static(&train, ControllerConfig::default(), &window, ITERS, SEED, None)
            .unwrap();

    let mut t = TextTable::new([
        "scenario",
        "adaptive (s)",
        "static (s)",
        "speedup",
        "retunes",
        "final stride",
    ]);
    for (name, r) in [("fault-free", &clean), ("pcie.h2d:3..8@0.15", &faulted)] {
        t.row([
            name.to_string(),
            secs(r.adaptive_total),
            secs(r.static_total),
            format!("{:.2}x", r.speedup()),
            r.retunes.to_string(),
            r.final_stride.clone(),
        ]);
    }

    let ladder: Vec<String> = faulted
        .decisions
        .iter()
        .map(|d| format!("  it{:>2}: {}", d.iteration, d.detail))
        .collect();
    format!(
        "== Extension: adaptive control plane vs static Equation 1 ({} on {}) ==\n{}\
         Fault-free the two arms are within noise of each other — the\n\
         controller seeds at the static k* and the 5% hysteresis band holds.\n\
         Under the degradation window the controller's decisions were:\n{}\n\
         It parks on the GPU residents while Eq. 1 has no solution, probes\n\
         the link periodically, and climbs back toward k* = {} as the EWMA\n\
         forgets the degraded window.\n",
        faulted.model,
        faulted.profile,
        t.render(),
        ladder.join("\n"),
        clean.static_stride.map_or_else(|| "-".to_string(), |k| k.to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_extension_reports_both_scenarios() {
        let out = extension_adaptive_control();
        assert!(out.contains("fault-free"));
        assert!(out.contains("pcie.h2d:3..8@0.15"));
        assert!(out.contains("speedup"));
        assert!(out.contains("descend"), "the ladder descent must appear:\n{out}");
    }
}
