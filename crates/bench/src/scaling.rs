//! Figures 13–17 and the §5.4 V100 stride validation.

use dos::core::{DeepOptimizerStates, PerfModel, StridePolicy, Zero3Offload};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{simulate_iteration, TrainConfig};
use dos::zero::{MemoryEstimator, OffloadConfig, ZeroStage};

use crate::support::{bpps, secs, speedup, TextTable};

/// Figure 13: micro-batch scaling for the 20B model (with the OOM wall).
pub fn fig13_microbatch() -> String {
    let spec = ModelSpec::by_name("20B").unwrap();
    let profile = HardwareProfile::jlse_h100();
    let mut t = TextTable::new([
        "micro-batch",
        "zero3 iter (s)",
        "zero3 TFLOPs",
        "dos iter (s)",
        "dos TFLOPs",
        "speedup",
        "memory",
    ]);
    for mb in [1usize, 2, 4, 8, 16] {
        let est = MemoryEstimator::new(
            spec.clone(),
            ZeroStage::Three,
            profile.num_gpus,
            OffloadConfig::default(),
        );
        if !est.fits_gpu(mb, profile.gpu_hbm_bytes) {
            t.row([
                mb.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "OOM".into(),
            ]);
            continue;
        }
        let mut zcfg = TrainConfig::baseline(spec.clone(), profile.clone());
        zcfg.micro_batch = mb;
        let z = simulate_iteration(&zcfg, &Zero3Offload).unwrap();
        let mut dcfg = TrainConfig::deep_optimizer_states(spec.clone(), profile.clone());
        dcfg.micro_batch = mb;
        let d = simulate_iteration(&dcfg, &DeepOptimizerStates::default()).unwrap();
        t.row([
            mb.to_string(),
            secs(z.total_secs),
            format!("{:.0}", z.tflops_per_gpu),
            secs(d.total_secs),
            format!("{:.0}", d.tflops_per_gpu),
            speedup(z.total_secs / d.total_secs),
            "ok".into(),
        ]);
    }
    format!(
        "== Figure 13: micro-batch scaling, 20B (paper: 1.6-2.5x, OOM past 8) ==\n{}",
        t.render()
    )
}

/// Figure 14: varying CPU cores per GPU (20B, full offload).
pub fn fig14_cpu_scaling() -> String {
    let spec = ModelSpec::by_name("20B").unwrap();
    let base = HardwareProfile::jlse_h100();
    let mut t = TextTable::new([
        "cores/GPU",
        "zero3 iter (s)",
        "dos iter (s)",
        "speedup",
        "dos TFLOPs",
    ]);
    for cores in [6usize, 12, 18, 24, 36, 48] {
        let profile = base.with_cores_per_gpu(cores);
        let z = simulate_iteration(
            &TrainConfig::baseline(spec.clone(), profile.clone()),
            &Zero3Offload,
        )
        .unwrap();
        let d = simulate_iteration(
            &TrainConfig::deep_optimizer_states(spec.clone(), profile),
            &DeepOptimizerStates::default(),
        )
        .unwrap();
        t.row([
            cores.to_string(),
            secs(z.total_secs),
            secs(d.total_secs),
            speedup(z.total_secs / d.total_secs),
            format!("{:.0}", d.tflops_per_gpu),
        ]);
    }
    format!(
        "== Figure 14: CPU cores per GPU, 20B (paper: up to 3x at low core counts,\n\
         \x20  flattening once PCIe/DRAM bound) ==\n{}",
        t.render()
    )
}

/// Figure 15: resource utilization during the update phase for different
/// fractions of GPU-scheduled updates. CPU/PCIe busy fractions and the
/// CPU×GPU overlap come from the trace analyzer ([`dos::telemetry::analyze`])
/// over the simulated timeline; the NVML column keeps the simulator's
/// NVML-style view (any GPU activity, copies included), matching how the
/// paper measured it.
pub fn fig15_utilization() -> String {
    let spec = ModelSpec::by_name("20B").unwrap();
    let profile = HardwareProfile::jlse_h100();
    let mut t = TextTable::new([
        "% updates on GPU",
        "GPU (NVML) %",
        "CPU %",
        "PCIe H2D %",
        "PCIe D2H %",
        "CPUxGPU ovl %",
        "TFLOPs",
    ]);
    let fractions: [(&str, StridePolicy); 4] = [
        ("0 (ZeRO-3)", StridePolicy::CpuOnly),
        ("25", StridePolicy::Fixed(4)),
        ("33", StridePolicy::Fixed(3)),
        ("50", StridePolicy::Fixed(2)),
    ];
    for (label, stride) in fractions {
        let cfg = TrainConfig::deep_optimizer_states(spec.clone(), profile.clone());
        let r = simulate_iteration(
            &cfg,
            &DeepOptimizerStates { stride, ..Default::default() },
        )
        .unwrap();
        let a = dos::telemetry::analyze(&r.timeline);
        t.row([
            label.to_string(),
            format!("{:.0}", r.update_utilization.gpu_nvml * 100.0),
            format!("{:.0}", a.busy_fraction("update", "cpu") * 100.0),
            format!("{:.0}", a.busy_fraction("update", "pcie.h2d") * 100.0),
            format!("{:.0}", a.busy_fraction("update", "pcie.d2h") * 100.0),
            format!("{:.0}", a.overlap_efficiency("update", "cpu", "gpu") * 100.0),
            format!("{:.0}", r.tflops_per_gpu),
        ]);
    }
    format!(
        "== Figure 15: update-phase utilization, 20B (paper: ~100% GPU via NVML at 50%,\n\
         \x20  CPU dips with DRAM contention, best TFLOPs at 50%) ==\n{}",
        t.render()
    )
}

/// Figure 16: update throughput vs fraction of GPU-scheduled updates, for
/// every model size.
pub fn fig16_gpu_fraction() -> String {
    let profile = HardwareProfile::jlse_h100();
    let world = profile.num_gpus;
    let mut t = TextTable::new([
        "model",
        "0% (B P/s)",
        "25% (B P/s)",
        "33% (B P/s)",
        "50% (B P/s)",
        "best",
    ]);
    for m in ModelSpec::table2_zoo() {
        let mut vals = Vec::new();
        for stride in
            [StridePolicy::CpuOnly, StridePolicy::Fixed(4), StridePolicy::Fixed(3), StridePolicy::Fixed(2)]
        {
            let cfg = TrainConfig::deep_optimizer_states(m.clone(), profile.clone());
            let r = simulate_iteration(
                &cfg,
                &DeepOptimizerStates { stride, ..Default::default() },
            )
            .unwrap();
            vals.push(r.update_pps_aggregate(world));
        }
        let best_idx =
            vals.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let labels = ["0%", "25%", "33%", "50%"];
        t.row([
            m.name.clone(),
            bpps(vals[0]),
            bpps(vals[1]),
            bpps(vals[2]),
            bpps(vals[3]),
            labels[best_idx].to_string(),
        ]);
    }
    format!(
        "== Figure 16: update throughput vs GPU fraction (paper: 50% optimal everywhere) ==\n{}",
        t.render()
    )
}

/// Figure 17: weak scaling across data-parallel degrees.
pub fn fig17_weak_scaling() -> String {
    let base = HardwareProfile::jlse_h100();
    let mut t = TextTable::new(["model", "DP=1", "DP=2", "DP=4", "DP=8"]);
    for m in ModelSpec::table2_zoo() {
        let mut cells = vec![m.name.clone()];
        for dp in [1usize, 2, 4, 8] {
            let profile = base.with_num_gpus(dp);
            let z = simulate_iteration(
                &TrainConfig::baseline(m.clone(), profile.clone()),
                &Zero3Offload,
            )
            .unwrap();
            let d = simulate_iteration(
                &TrainConfig::deep_optimizer_states(m.clone(), profile),
                &DeepOptimizerStates::default(),
            )
            .unwrap();
            cells.push(speedup(z.total_secs / d.total_secs));
        }
        t.row(cells);
    }
    format!(
        "== Figure 17: weak scaling of the DOS speedup over ZeRO-3\n\
         \x20  (paper: up to 4.4x at low DP, >=2.5x even at high DP; declines with DP\n\
         \x20  as all-gather-dominated forward/backward grows) ==\n{}",
        t.render()
    )
}

/// §5.4: platform-independence of the performance model, on the V100 node.
pub fn v100_stride_validation() -> String {
    let profile = HardwareProfile::v100_node();
    let spec = ModelSpec::by_name("7B").unwrap();
    let model = PerfModel::new(profile.perf_model_inputs());
    let mut out = format!(
        "== §5.4: performance-model validation on {} ==\n\
         Eq. 1 inputs: B={} B P/s, Ug={}, Uc={}, Dc={}\n\
         Eq. 1 raw k = {:.2}  =>  optimal stride k = {:?} (paper: 2.29 -> 2)\n\n",
        profile.name,
        profile.perf_model_inputs().b / 1e9,
        profile.perf_model_inputs().ug / 1e9,
        profile.perf_model_inputs().uc / 1e9,
        profile.perf_model_inputs().dc / 1e9,
        model.raw_stride().unwrap_or(f64::NAN),
        model.optimal_stride(),
    );
    let world = profile.num_gpus;
    let paper = ["1.75 (best)", "1.67", "1.62", "1.28"];
    let mut t = TextTable::new(["stride k", "simulated update (B P/s)", "paper measured (B P/s)"]);
    for (i, k) in (2..=5).enumerate() {
        let cfg = TrainConfig::deep_optimizer_states(spec.clone(), profile.clone());
        let r = simulate_iteration(
            &cfg,
            &DeepOptimizerStates { stride: StridePolicy::Fixed(k), ..Default::default() },
        )
        .unwrap();
        t.row([k.to_string(), bpps(r.update_pps_aggregate(world)), paper[i].to_string()]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_has_the_oom_wall() {
        let s = fig13_microbatch();
        assert!(s.contains("OOM"));
        let ok_rows = s.lines().filter(|l| l.ends_with("ok")).count();
        assert_eq!(ok_rows, 4, "expected 1..=8 to fit:\n{s}");
    }

    #[test]
    fn fig14_speedup_shrinks_with_more_cores() {
        let s = fig14_cpu_scaling();
        let speedups: Vec<f64> = s
            .lines()
            .filter(|l| !l.contains("==") && !l.contains("paper"))
            .filter_map(|l| {
                l.split_whitespace().find(|w| w.ends_with('x')).and_then(|w| {
                    w.trim_end_matches('x').parse().ok()
                })
            })
            .collect();
        assert_eq!(speedups.len(), 6);
        assert!(speedups[0] > speedups[5], "low-core speedup should dominate: {speedups:?}");
        assert!(speedups[0] > 2.4, "low-core speedup {}", speedups[0]);
    }

    #[test]
    fn fig15_analyzer_overlap_confirms_interleaving() {
        let s = fig15_utilization();
        // The CPUxGPU overlap column is second-to-last (before TFLOPs).
        let ovl = |needle: &str| -> f64 {
            let line = s
                .lines()
                .find(|l| l.trim_start().starts_with(needle))
                .unwrap_or_else(|| panic!("row `{needle}` missing:\n{s}"));
            let toks: Vec<&str> = line.split_whitespace().collect();
            toks[toks.len() - 2].parse().unwrap()
        };
        // ZeRO-3 runs every update on the CPU: nothing to overlap with.
        assert_eq!(ovl("0 (ZeRO-3)"), 0.0, "{s}");
        // At the paper's optimal 50% fraction the GPU's update work is
        // almost entirely hidden behind the CPU's.
        assert!(ovl("50") >= 50.0, "CPUxGPU overlap under 50%:\n{s}");
    }

    #[test]
    fn fig16_best_is_50_percent() {
        let s = fig16_gpu_fraction();
        for line in s.lines().skip(3).filter(|l| !l.is_empty()) {
            assert!(line.ends_with("50%"), "a model prefers a different fraction: {line}");
        }
    }

    #[test]
    fn fig17_declines_with_dp() {
        let s = fig17_weak_scaling();
        let row = s.lines().find(|l| l.trim_start().starts_with("20B")).unwrap();
        let vals: Vec<f64> = row
            .split_whitespace()
            .skip(1)
            .map(|w| w.trim_end_matches('x').parse().unwrap())
            .collect();
        assert_eq!(vals.len(), 4);
        assert!(vals[0] > vals[3], "speedup should decline with DP: {vals:?}");
        assert!(vals[0] > 2.5, "low-DP speedup should be largest: {vals:?}");
        assert!(vals[3] > 1.5, "should stay meaningful at DP=8: {vals:?}");
    }

    #[test]
    fn v100_confirms_k2() {
        let s = v100_stride_validation();
        assert!(s.contains("optimal stride k = Some(2)"), "{s}");
    }
}
