//! Table 1 and Table 2 reproductions.

use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;

use crate::support::TextTable;

/// Table 1: transfer and conversion throughputs across devices and dtypes,
/// plus the derived end-to-end gradient-flush rates of Figure 6.
pub fn table1_throughputs() -> String {
    let p = HardwareProfile::jlse_h100();
    let mut t = TextTable::new(["path", "paper (GB/s)", "profile (GB/s)"]);
    t.row(["G32<->G16 (GPU convert)", "1200", &format!("{:.0}", p.conv.g32_g16 / 1e9)]);
    t.row(["H32<->H16 (host convert)", "62", &format!("{:.0}", p.conv.h32_h16 / 1e9)]);
    t.row(["H16<->G16 (pinned PCIe)", "52", &format!("{:.0}", p.conv.h16_g16 / 1e9)]);
    t.row(["H32->G16 (fused down+copy)", "8", &format!("{:.0}", p.conv.h32_g16 / 1e9)]);
    t.row(["G16->H32 (fused up+flush)", "4", &format!("{:.0}", p.conv.g16_h32 / 1e9)]);

    // Figure 6's end-to-end gradient-flush rates, derived from the profile:
    // legacy = alloc (host_alloc_bw) + pageable D2H + host upscale;
    // DOS = GPU upscale + pinned FP32 D2H.
    let legacy_secs_per_b16 = 1.0 / p.host_alloc_bw + 1.0 / p.pcie_d2h_pageable
        + 2.0 / p.conv.h32_h16; // conversion reads 2x bytes (fp32 side)
    let legacy = 1.0 / legacy_secs_per_b16 / 1e9;
    let dos_secs_per_b16 = 2.0 / p.conv.g32_g16 + 2.0 / p.pcie_d2h; // fp32 over the wire
    let dos = 1.0 / dos_secs_per_b16 / 1e9;

    let mut t2 = TextTable::new(["gradient flush path", "paper (GB/s of FP16)", "model (GB/s)"]);
    t2.row(["legacy FP16 flush (Fig. 6 top)", "2.5", &format!("{legacy:.1}")]);
    t2.row(["FP32-on-GPU (Fig. 6 bottom)", ">=25 (10x+)", &format!("{dos:.1}")]);

    format!(
        "== Table 1: conversion/transfer throughputs ==\n{}\n\
         == Derived end-to-end gradient flush rates ==\n{}",
        t.render(),
        t2.render()
    )
}

/// Table 2: the evaluation model zoo with computed sizes next to the
/// paper's reported ones.
pub fn table2_model_zoo() -> String {
    let paper_fp16 = [24.0, 30.0, 37.0, 46.0, 73.0];
    let paper_opt = [96.0, 121.0, 150.0, 188.0, 294.0];
    let mut t = TextTable::new([
        "model",
        "layers",
        "hidden",
        "heads",
        "params (B)",
        "fp16 model GB (paper)",
        "fp16 model+grads GB (ours)",
        "fp32 optimizer GB (paper)",
        "fp32 optimizer GB (ours)",
    ]);
    for (i, m) in ModelSpec::table2_zoo().iter().enumerate() {
        t.row([
            m.name.clone(),
            m.num_layers.to_string(),
            m.hidden_dim.to_string(),
            m.attention_heads.to_string(),
            format!("{:.2}", m.param_count() as f64 / 1e9),
            format!("{:.0}", paper_fp16[i]),
            format!("{:.0}", (m.fp16_param_bytes() + m.fp16_grad_bytes()) as f64 / 1e9),
            format!("{:.0}", paper_opt[i]),
            format!("{:.0}", m.fp32_optimizer_bytes() as f64 / 1e9),
        ]);
    }
    format!("== Table 2: model zoo ==\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_the_10x_gap() {
        let s = table1_throughputs();
        assert!(s.contains("1200"));
        assert!(s.contains("legacy FP16 flush"));
        // The derived legacy rate is in the paper's 2-4 GB/s band.
        let line = s.lines().find(|l| l.contains("legacy")).unwrap();
        let ours: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
        assert!((2.0..4.5).contains(&ours), "legacy flush {ours} GB/s");
    }

    #[test]
    fn table2_covers_all_models() {
        let s = table2_model_zoo();
        for name in ["7B", "8.3B", "10B", "13B", "20B"] {
            assert!(s.contains(name));
        }
    }
}
