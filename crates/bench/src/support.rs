//! Shared rendering and sweep helpers for the experiment harness.

use dos::sim::IterationReport;
use dos::telemetry::Timeline;

/// A fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> TextTable {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (shorter rows are padded with blanks).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (width, cell) in widths.iter_mut().zip(row.iter()) {
                *width = (*width).max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>width$}  "));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a series as a unicode sparkline (8 levels).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

/// Extracts the spans of one phase from a report's timeline, rebased to
/// start at zero — used by the Gantt figures.
pub fn phase_timeline(report: &IterationReport, phase: &str) -> Timeline {
    let mut out = Timeline::new();
    let t0 = report
        .timeline
        .for_phase(phase)
        .map(|s| s.start)
        .fold(f64::INFINITY, f64::min);
    if !t0.is_finite() {
        return out;
    }
    for s in report.timeline.for_phase(phase) {
        let mut s = s.clone();
        s.start -= t0;
        s.end -= t0;
        out.push(s);
    }
    out
}

/// Formats seconds with three significant decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a dimensionless ratio as `x.xx×`.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a byte count as decimal gigabytes.
pub fn gb(v: u64) -> String {
    format!("{:.1}", v as f64 / 1e9)
}

/// Formats parameters/second as billions.
pub fn bpps(v: f64) -> String {
    format!("{:.2}", v / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(["model", "secs"]);
        t.row(["7B", "1.0"]);
        t.row(["20B", "10.25"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("model"));
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(speedup(2.5), "2.50x");
        assert_eq!(gb(80_000_000_000), "80.0");
        assert_eq!(bpps(2.5e9), "2.50");
    }
}
