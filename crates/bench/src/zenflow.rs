//! `zenflow_bench` support: the pinned ZenFlowAsync-vs-DOS iteration-time
//! benchmark and its CI regression gate (`dos-bench/zenflow-v1` schema,
//! committed baseline `BENCH_10.json`).
//!
//! Every number is *virtual-time*: the discrete-event engine replays the
//! pinned zoo config (20B on the JLSE 4×H100 profile, importance ratio
//! 0.1, staleness bound 1) against the Equation 1 cost model, so the
//! report is a deterministic function of the config and the gate can be
//! tight — a regression means the schedule got worse, not that the
//! machine was noisy.

use serde::{Deserialize, Serialize};

use dos::core::{DeepOptimizerStates, ZenFlowAsync, Zero3Offload};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{simulate_iteration, simulate_training, TrainConfig};

/// Report schema tag; the gate refuses to compare across schemas.
pub const SCHEMA: &str = "dos-bench/zenflow-v1";

/// The pinned zoo model.
pub const MODEL: &str = "20B";

/// The pinned hot-subset importance ratio.
pub const IMPORTANCE_RATIO: f64 = 0.1;

/// The pinned bounded-staleness window for the asynchronous arm.
pub const STALENESS_BOUND: usize = 1;

/// Training iterations averaged per arm.
pub const ITERATIONS: usize = 6;

/// Allowed relative growth of any averaged iteration time vs baseline.
pub const SECS_TOLERANCE: f64 = 0.02;

/// Allowed absolute drop in either speedup ratio vs baseline.
pub const GAIN_TOLERANCE: f64 = 0.02;

/// The `dos-bench/zenflow-v1` report: averaged iteration times for the
/// four scheduler arms on the pinned zoo config, plus the ZenFlow
/// stall/deferral split for one steady-state iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZenFlowBenchReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Zoo model name ([`MODEL`]).
    pub model: String,
    /// Hardware profile name.
    pub profile: String,
    /// Iterations averaged per arm ([`ITERATIONS`]).
    pub iterations: usize,
    /// Hot-subset importance ratio ([`IMPORTANCE_RATIO`]).
    pub importance_ratio: f64,
    /// Bounded-staleness window of the asynchronous arm.
    pub staleness_bound: usize,
    /// ZeRO-3 synchronous offload, average iteration seconds.
    pub zero3_avg_secs: f64,
    /// Deep Optimizer States interleaved offload, average iteration seconds.
    pub dos_avg_secs: f64,
    /// ZenFlow with `S = 0` (drain every step), average iteration seconds.
    pub zenflow_sync_avg_secs: f64,
    /// ZenFlow with the pinned staleness bound, average iteration seconds.
    pub zenflow_async_avg_secs: f64,
    /// The asynchronous arm's joined (hot-only) update phase, seconds.
    pub hot_update_secs: f64,
    /// The asynchronous arm's deferred cold work per iteration, seconds.
    pub cold_spill_secs: f64,
    /// `zenflow_sync_avg_secs / zenflow_async_avg_secs`.
    pub gain_vs_sync: f64,
    /// `zero3_avg_secs / zenflow_async_avg_secs`.
    pub gain_vs_zero3: f64,
}

/// Runs the pinned config: 20B on JLSE 4×H100, importance ratio 0.1,
/// staleness bound 1, [`ITERATIONS`]-iteration averages for all four arms.
///
/// # Errors
///
/// Returns a description when any simulated arm fails (gate violations
/// are reported, not errored — the gate decides).
pub fn run_zenflow_bench() -> Result<ZenFlowBenchReport, String> {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name(MODEL).ok_or_else(|| format!("no zoo model {MODEL}"))?;
    let mut zf_cfg = TrainConfig::baseline(spec.clone(), profile.clone());
    zf_cfg.offload.gpu_resident_ratio = IMPORTANCE_RATIO;
    let sim = |cfg: &TrainConfig, sched: &dyn dos::sim::UpdateScheduler| {
        simulate_training(cfg, sched, ITERATIONS)
            .map(|r| r.avg_iteration_secs)
            .map_err(|e| e.to_string())
    };
    let zero3_avg = sim(&TrainConfig::baseline(spec.clone(), profile.clone()), &Zero3Offload)?;
    let dos_avg = sim(
        &TrainConfig::deep_optimizer_states(spec, profile.clone()),
        &DeepOptimizerStates::default(),
    )?;
    let sync_avg = sim(&zf_cfg, &ZenFlowAsync::new(IMPORTANCE_RATIO, 0))?;
    let async_avg = sim(&zf_cfg, &ZenFlowAsync::new(IMPORTANCE_RATIO, STALENESS_BOUND))?;
    let steady =
        simulate_iteration(&zf_cfg, &ZenFlowAsync::new(IMPORTANCE_RATIO, STALENESS_BOUND))
            .map_err(|e| e.to_string())?;
    Ok(ZenFlowBenchReport {
        schema: SCHEMA.to_string(),
        model: MODEL.to_string(),
        profile: profile.name,
        iterations: ITERATIONS,
        importance_ratio: IMPORTANCE_RATIO,
        staleness_bound: STALENESS_BOUND,
        zero3_avg_secs: zero3_avg,
        dos_avg_secs: dos_avg,
        zenflow_sync_avg_secs: sync_avg,
        zenflow_async_avg_secs: async_avg,
        hot_update_secs: steady.update_secs,
        cold_spill_secs: steady.spill_secs,
        gain_vs_sync: sync_avg / async_avg,
        gain_vs_zero3: zero3_avg / async_avg,
    })
}

/// The CI gate: absolute ZenFlow invariants plus regression limits
/// against the committed baseline.
///
/// # Errors
///
/// Returns a rendered explanation of the first violated limit.
pub fn regression_gate(
    new: &ZenFlowBenchReport,
    baseline: &ZenFlowBenchReport,
) -> Result<(), String> {
    if new.schema != baseline.schema {
        return Err(format!("schema mismatch: {} vs baseline {}", new.schema, baseline.schema));
    }
    if new.zenflow_async_avg_secs > new.zenflow_sync_avg_secs + 1e-9 {
        return Err(format!(
            "bounded staleness slowed the schedule: S={} averages {:.3}s vs S=0 {:.3}s",
            new.staleness_bound, new.zenflow_async_avg_secs, new.zenflow_sync_avg_secs
        ));
    }
    if new.cold_spill_secs <= 0.0 {
        return Err("cold updates no longer deferred past the iteration barrier".to_string());
    }
    if new.hot_update_secs > 0.05 * new.zenflow_async_avg_secs {
        return Err(format!(
            "update phase no longer stall-free: {:.3}s joined vs {:.3}s iteration",
            new.hot_update_secs, new.zenflow_async_avg_secs
        ));
    }
    if new.gain_vs_zero3 < 1.0 {
        return Err(format!("ZenFlowAsync slower than ZeRO-3: {:.3}x", new.gain_vs_zero3));
    }
    for (what, secs, base) in [
        ("zenflow async", new.zenflow_async_avg_secs, baseline.zenflow_async_avg_secs),
        ("dos", new.dos_avg_secs, baseline.dos_avg_secs),
    ] {
        if secs > base * (1.0 + SECS_TOLERANCE) {
            return Err(format!(
                "{what} iteration regressed: {secs:.4}s vs baseline {base:.4}s \
                 (tolerance {:.0}%)",
                SECS_TOLERANCE * 100.0
            ));
        }
    }
    for (what, gain, base) in [
        ("vs-sync", new.gain_vs_sync, baseline.gain_vs_sync),
        ("vs-zero3", new.gain_vs_zero3, baseline.gain_vs_zero3),
    ] {
        if gain < base - GAIN_TOLERANCE {
            return Err(format!(
                "{what} gain regressed: {gain:.4}x vs baseline {base:.4}x \
                 (tolerance {GAIN_TOLERANCE})"
            ));
        }
    }
    Ok(())
}

/// Human rendering of one report.
pub fn render(report: &ZenFlowBenchReport) -> String {
    format!(
        "{} — {} on {}, ratio {}, S={}, {} iteration(s)\n\
           zero3 {:.3}s | dos {:.3}s | zenflow S=0 {:.3}s | zenflow async {:.3}s\n\
           joined update {:.3}s, deferred cold {:.3}s\n\
           gains: {:.2}x vs synchronous drain, {:.2}x vs zero3\n",
        report.schema,
        report.model,
        report.profile,
        report.importance_ratio,
        report.staleness_bound,
        report.iterations,
        report.zero3_avg_secs,
        report.dos_avg_secs,
        report.zenflow_sync_avg_secs,
        report.zenflow_async_avg_secs,
        report.hot_update_secs,
        report.cold_spill_secs,
        report.gain_vs_sync,
        report.gain_vs_zero3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_config_is_deterministic_and_passes_its_own_gate() {
        let a = run_zenflow_bench().unwrap();
        let b = run_zenflow_bench().unwrap();
        assert_eq!(a, b, "virtual-time bench must be deterministic");
        assert_eq!(a.schema, SCHEMA);
        regression_gate(&a, &a).unwrap();
        assert!(a.gain_vs_sync > 1.0, "{a:?}");
    }

    #[test]
    fn gate_catches_regressions_and_schema_drift() {
        let report = run_zenflow_bench().unwrap();
        let mut fast_baseline = report.clone();
        fast_baseline.zenflow_async_avg_secs = report.zenflow_async_avg_secs * 0.9;
        let err = regression_gate(&report, &fast_baseline).unwrap_err();
        assert!(err.contains("iteration regressed"), "{err}");
        let mut wrong_schema = report.clone();
        wrong_schema.schema = "dos-bench/zenflow-v0".to_string();
        assert!(regression_gate(&report, &wrong_schema).is_err());
        let mut stalled = report.clone();
        stalled.hot_update_secs = stalled.zenflow_async_avg_secs;
        assert!(regression_gate(&stalled, &report).is_err());
        let mut no_defer = report.clone();
        no_defer.cold_spill_secs = 0.0;
        assert!(regression_gate(&no_defer, &report).is_err());
        let mut inverted = report;
        inverted.zenflow_async_avg_secs = inverted.zenflow_sync_avg_secs * 2.0;
        assert!(regression_gate(&inverted, &inverted).is_err());
    }

    #[test]
    fn committed_baseline_is_in_gate() {
        // Keep BENCH_10.json in lockstep with the cost model: the CI
        // step replays exactly this comparison.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
        let text = std::fs::read_to_string(path).expect("BENCH_10.json");
        let baseline: ZenFlowBenchReport = serde_json::from_str(&text).unwrap();
        let fresh = run_zenflow_bench().unwrap();
        regression_gate(&fresh, &baseline).unwrap();
    }
}
