//! Extension experiments beyond the paper's figures: the §6 future-work
//! directions (NVMe-tier offloading, next-generation interconnects) and
//! asynchronous checkpointing.

use dos::core::{DeepOptimizerStates, NvmeOffload, PerfModel, ZenFlowAsync, Zero3Offload};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{
    simulate_iteration, simulate_training, simulate_training_with_checkpoints, CheckpointPolicy,
    TrainConfig,
};

use crate::support::{secs, speedup, TextTable};

/// Extension: NVMe-tier optimizer offloading (§6) for models whose FP32
/// state exceeds even the host DRAM.
pub fn extension_nvme_tier() -> String {
    let profile = HardwareProfile::jlse_h100();
    let mut t = TextTable::new([
        "model",
        "host offload",
        "host iter (s)",
        "nvme offload",
        "nvme iter (s)",
    ]);
    let models: Vec<ModelSpec> = ModelSpec::table2_zoo()
        .into_iter()
        .filter(|m| m.name == "20B")
        .chain(ModelSpec::extended_zoo())
        .collect();
    for m in models {
        let host_cfg = TrainConfig::deep_optimizer_states(m.clone(), profile.clone());
        let host = simulate_iteration(&host_cfg, &DeepOptimizerStates::default()).unwrap();
        let mut nvme_cfg = host_cfg.clone();
        nvme_cfg.offload.optimizer_on_nvme = true;
        let nvme = simulate_iteration(&nvme_cfg, &NvmeOffload::default()).unwrap();
        t.row([
            m.name.clone(),
            if host.host_oom.is_some() { "DRAM OOM".into() } else { "fits".to_string() },
            if host.host_oom.is_some() { "-".into() } else { secs(host.total_secs) },
            if nvme.host_oom.is_some() { "OOM".into() } else { "fits".to_string() },
            secs(nvme.total_secs),
        ]);
    }
    format!(
        "== Extension: NVMe-tier optimizer offloading (§6 future work) ==\n{}\
         33B/65B overflow the 512 GB host DRAM (as §5.3 notes for LLaMA-33B);\n\
         the NVMe tier makes them trainable at streaming cost. The generalized\n\
         Eq. 1 (B capped by the drive) keeps every update on the CPU there.\n",
        t.render()
    )
}

/// Extension: checkpointing cost — blocking vs asynchronous NVMe writes.
pub fn extension_checkpointing() -> String {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("20B").unwrap();
    let cfg = TrainConfig::deep_optimizer_states(spec, profile);
    const ITERS: usize = 12;
    const EVERY: usize = 4;
    let sched = DeepOptimizerStates::default();
    let plain = simulate_training(&cfg, &sched, ITERS).unwrap();
    let blocking = simulate_training_with_checkpoints(
        &cfg,
        &sched,
        ITERS,
        CheckpointPolicy { every: EVERY, asynchronous: false },
    )
    .unwrap();
    let asynchronous = simulate_training_with_checkpoints(
        &cfg,
        &sched,
        ITERS,
        CheckpointPolicy { every: EVERY, asynchronous: true },
    )
    .unwrap();
    let end = |r: &dos::sim::TrainingReport| *r.iteration_ends.last().unwrap();
    let mut t = TextTable::new(["checkpointing", "12 iterations (s)", "overhead"]);
    t.row(["none".to_string(), secs(end(&plain)), "-".into()]);
    t.row([
        "blocking, every 4".to_string(),
        secs(end(&blocking)),
        format!("{:.0}%", (end(&blocking) / end(&plain) - 1.0) * 100.0),
    ]);
    t.row([
        "asynchronous, every 4".to_string(),
        secs(end(&asynchronous)),
        format!("{:.0}%", (end(&asynchronous) / end(&plain) - 1.0) * 100.0),
    ]);
    format!(
        "== Extension: checkpointing the offloaded optimizer state (20B) ==\n{}\
         Host-resident state enables asynchronous flushing to NVMe without\n\
         blocking the GPUs (§2's checkpointing argument for offloading).\n",
        t.render()
    )
}

/// Extension: what a Grace-Hopper-class 200 GB/s C2C interconnect does to
/// the schedule (§6).
pub fn extension_grace_hopper() -> String {
    let spec = ModelSpec::by_name("20B").unwrap();
    let mut t = TextTable::new([
        "machine",
        "Eq.1 stride",
        "GPU fraction",
        "zero3 iter (s)",
        "dos iter (s)",
        "speedup",
    ]);
    for profile in [HardwareProfile::jlse_h100(), HardwareProfile::grace_hopper()] {
        let model = PerfModel::new(profile.perf_model_inputs());
        let z = simulate_iteration(
            &TrainConfig::baseline(spec.clone(), profile.clone()),
            &Zero3Offload,
        )
        .unwrap();
        let d = simulate_iteration(
            &TrainConfig::deep_optimizer_states(spec.clone(), profile.clone()),
            &DeepOptimizerStates::default(),
        )
        .unwrap();
        t.row([
            profile.name.clone(),
            format!("{:?}", model.optimal_stride()),
            format!("{:.0}%", model.gpu_fraction() * 100.0),
            secs(z.total_secs),
            secs(d.total_secs),
            speedup(z.total_secs / d.total_secs),
        ]);
    }
    format!(
        "== Extension: Grace-Hopper-class C2C interconnect (§6 future work) ==\n{}\
         The 200 GB/s link flips the optimal schedule to all-GPU updates\n\
         (stride 1) — dynamic offloading gets *more* attractive on faster\n\
         CPU-GPU interconnects, the paper's closing argument.\n",
        t.render()
    )
}

/// Extension: gradient accumulation — the §3 H2D accumulation traffic and
/// its cost.
pub fn extension_grad_accumulation() -> String {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("20B").unwrap();
    let mut t = TextTable::new([
        "accumulation steps",
        "zero3 iter (s)",
        "dos iter (s)",
        "speedup",
        "dos TFLOPs",
    ]);
    for ga in [1usize, 2, 4, 8] {
        let mut zcfg = TrainConfig::baseline(spec.clone(), profile.clone());
        zcfg.grad_accumulation = ga;
        let z = simulate_iteration(&zcfg, &Zero3Offload).unwrap();
        let mut dcfg = TrainConfig::deep_optimizer_states(spec.clone(), profile.clone());
        dcfg.grad_accumulation = ga;
        let d = simulate_iteration(&dcfg, &DeepOptimizerStates::default()).unwrap();
        t.row([
            ga.to_string(),
            secs(z.total_secs),
            secs(d.total_secs),
            speedup(z.total_secs / d.total_secs),
            format!("{:.0}", d.tflops_per_gpu),
        ]);
    }
    format!(
        "== Extension: gradient accumulation (the §3 H2D accumulation traffic) ==\n{}\
         More micro-steps amortize the update phase, so the speedup converges\n\
         toward the backward-path component alone.\n",
        t.render()
    )
}

/// Extension: ZeRO stage comparison — where stage 3's communication goes.
pub fn extension_zero_stages() -> String {
    use dos::zero::ZeroStage;
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("13B").unwrap();
    let mut t = TextTable::new([
        "zero stage",
        "gpu params GB/rank",
        "dos iter (s)",
        "fits 80GB?",
    ]);
    for (label, stage) in
        [("1", ZeroStage::One), ("2", ZeroStage::Two), ("3", ZeroStage::Three)]
    {
        let mut cfg = TrainConfig::deep_optimizer_states(spec.clone(), profile.clone());
        cfg.stage = stage;
        let r = simulate_iteration(&cfg, &DeepOptimizerStates::default()).unwrap();
        let part = dos::zero::ZeroPartition::new(stage, cfg.world, 0);
        t.row([
            label.to_string(),
            format!("{:.1}", part.gpu_param_bytes(spec.param_count()) as f64 / 1e9),
            secs(r.total_secs),
            if r.oom.is_some() { "OOM".into() } else { "yes".to_string() },
        ]);
    }
    format!(
        "== Extension: ZeRO stages under Deep Optimizer States (13B) ==\n{}\
         Stages 1/2 replicate the FP16 model (no forward/backward all-gathers,\n\
         so iterations are faster) but need the full model per GPU; stage 3\n\
         shards it at a communication cost — the paper's target regime.\n",
        t.render()
    )
}

/// Extension: ZenFlow-style stall-free asynchronous updates (arXiv
/// 2505.12242) against the paper's interleaved offloading on the pinned
/// zoo config (20B, importance ratio 0.1).
pub fn extension_zenflow() -> String {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("20B").unwrap();
    const ITERS: usize = 6;
    let mut zf_cfg = TrainConfig::baseline(spec.clone(), profile.clone());
    zf_cfg.offload.gpu_resident_ratio = 0.1;
    let zero3_cfg = TrainConfig::baseline(spec.clone(), profile.clone());
    let dos_cfg = TrainConfig::deep_optimizer_states(spec, profile);
    let zero3_avg =
        simulate_training(&zero3_cfg, &Zero3Offload, ITERS).unwrap().avg_iteration_secs;
    let mut t = TextTable::new([
        "scheduler",
        "avg iter (s)",
        "joined update (s)",
        "deferred (s)",
        "vs zero3",
    ]);
    // A fresh scheduler per run: ZenFlowAsync stashes engine OpIds, so an
    // instance must not outlive the engine it scheduled for.
    type MkSched<'a> = &'a dyn Fn() -> Box<dyn dos::sim::UpdateScheduler>;
    let mut row = |label: &str, cfg: &TrainConfig, mk: MkSched| {
        let avg = simulate_training(cfg, mk().as_ref(), ITERS).unwrap().avg_iteration_secs;
        let steady = simulate_iteration(cfg, mk().as_ref()).unwrap();
        t.row([
            label.to_string(),
            secs(avg),
            secs(steady.update_secs),
            secs(steady.spill_secs),
            speedup(zero3_avg / avg),
        ]);
    };
    row("zero3", &zero3_cfg, &|| Box::new(Zero3Offload));
    row("zenflow S=0", &zf_cfg, &|| Box::new(ZenFlowAsync::new(0.1, 0)));
    row("zenflow S=1", &zf_cfg, &|| Box::new(ZenFlowAsync::new(0.1, 1)));
    row("dos", &dos_cfg, &|| Box::new(DeepOptimizerStates::default()));
    format!(
        "== Extension: ZenFlow-style stall-free asynchronous updates (20B) ==\n{}\
         With S>=1 the cold CPU bulk defers under the next iteration's\n\
         fwd/bwd, so the joined update phase shrinks to the hot GPU subset\n\
         and ZenFlow beats both the S=0 drain and ZeRO-3; DOS's interleaved\n\
         offload stays ahead on this interconnect by hiding the *transfers*\n\
         too, not just the update arithmetic.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvme_enables_33b_and_65b() {
        let s = extension_nvme_tier();
        let rows: Vec<&str> = s
            .lines()
            .filter(|l| {
                matches!(l.split_whitespace().next(), Some("20B" | "33B" | "65B"))
            })
            .collect();
        assert_eq!(rows.len(), 3, "{s}");
        assert!(rows[0].contains("fits"), "20B fits in DRAM: {}", rows[0]);
        assert!(rows[1].contains("DRAM OOM"), "33B should not fit DRAM: {}", rows[1]);
        assert!(rows[2].contains("DRAM OOM"), "65B should not fit DRAM: {}", rows[2]);
        for r in &rows[1..] {
            let last = r.split_whitespace().last().unwrap();
            assert!(last.parse::<f64>().is_ok(), "NVMe run should produce a time: {r}");
        }
    }

    #[test]
    fn async_checkpoint_overhead_is_small() {
        let s = extension_checkpointing();
        let line = s.lines().find(|l| l.contains("asynchronous")).unwrap();
        let pct: f64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(pct < 5.0, "async overhead {pct}% too high:\n{s}");
        let blocking = s.lines().find(|l| l.contains("blocking")).unwrap();
        let bpct: f64 = blocking
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(bpct > pct, "blocking should cost more than async");
    }

    #[test]
    fn grace_hopper_prefers_stride_1() {
        let s = extension_grace_hopper();
        let gh = s.lines().find(|l| l.contains("grace-hopper")).unwrap();
        assert!(gh.contains("Some(1)"), "{gh}");
        assert!(gh.contains("100%"), "{gh}");
    }

    #[test]
    fn accumulation_shrinks_the_speedup() {
        let s = extension_grad_accumulation();
        let speedups: Vec<f64> = s
            .lines()
            .filter(|l| !l.contains("==") && !l.contains("speedup"))
            .filter_map(|l| {
                l.split_whitespace()
                    .find(|w| w.ends_with('x'))
                    .and_then(|w| w.trim_end_matches('x').parse().ok())
            })
            .collect();
        assert_eq!(speedups.len(), 4);
        // The backward path (where DOS wins ~2.9x) dominates as GA grows.
        assert!(
            speedups.windows(2).all(|w| w[1] >= w[0]),
            "gain should grow toward the backward component: {speedups:?}"
        );
        assert!(speedups[3] < 2.9, "bounded by the backward component: {speedups:?}");
    }

    #[test]
    fn zenflow_defers_cold_work_and_beats_the_synchronous_arms() {
        let s = extension_zenflow();
        let cell = |label: &str, idx: usize| -> f64 {
            let l = s.lines().find(|l| l.trim_start().starts_with(label)).unwrap();
            // Labels contain spaces, so index fields from the right.
            let w: Vec<&str> = l.split_whitespace().collect();
            w[w.len() - 4 + idx].parse().unwrap_or_else(|_| {
                w[w.len() - 4 + idx].trim_end_matches('x').parse().unwrap()
            })
        };
        let (z_avg, s0_avg, s1_avg, dos_avg) =
            (cell("zero3", 0), cell("zenflow S=0", 0), cell("zenflow S=1", 0), cell("dos", 0));
        assert!(s1_avg < s0_avg, "S=1 ({s1_avg}) should beat S=0 ({s0_avg}):\n{s}");
        assert!(s1_avg < z_avg, "S=1 ({s1_avg}) should beat zero3 ({z_avg}):\n{s}");
        assert!(dos_avg < s1_avg, "interleaved DOS stays ahead here:\n{s}");
        // Stall-free: the joined update collapses to the hot subset, the
        // cold bulk books as deferred work.
        assert!(cell("zenflow S=1", 1) < 0.1, "joined update not stall-free:\n{s}");
        assert!(cell("zenflow S=1", 2) > 1.0, "cold work not deferred:\n{s}");
        assert!(cell("zenflow S=0", 2) == 0.0, "S=0 must drain in-iteration:\n{s}");
    }

    #[test]
    fn stage3_trades_speed_for_memory() {
        let s = extension_zero_stages();
        let get = |stage: &str| -> (f64, f64) {
            let l = s
                .lines()
                .filter(|l| !l.contains("=="))
                .find(|l| l.trim_start().starts_with(stage))
                .unwrap();
            let w: Vec<&str> = l.split_whitespace().collect();
            (w[1].parse().unwrap(), w[2].parse().unwrap())
        };
        let (mem1, t1) = get("1");
        let (mem3, t3) = get("3");
        assert!(mem1 > mem3 * 3.0, "stage 1 replicates params: {mem1} vs {mem3}");
        assert!(t1 < t3, "stage 1 skips all-gathers: {t1} vs {t3}");
    }
}
