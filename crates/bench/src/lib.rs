//! # dos-bench — regenerating every table and figure of the paper
//!
//! One function per evaluation artifact of *Deep Optimizer States*
//! (MIDDLEWARE 2024), each returning the printed block its binary emits.
//! `EXPERIMENTS.md` in the repository root records paper-vs-measured for
//! every entry; run any experiment with
//! `cargo run -p dos-bench --release --bin <name>`, or everything at once
//! with `cargo bench -p dos-bench` (the `figures` bench target).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod adaptive;
pub mod comparisons;
pub mod contention;
pub mod extensions;
pub mod kernels;
pub mod scaling;
pub mod serve;
pub mod support;
pub mod tables;
pub mod timelines;
pub mod zenflow;

/// One experiment: its name and the function that renders it.
pub type Experiment = (&'static str, fn() -> String);

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("table1_throughputs", tables::table1_throughputs as fn() -> String),
        ("table2_model_zoo", tables::table2_model_zoo),
        ("fig2_subgroup_sweep", timelines::fig2_subgroup_sweep),
        ("fig3_gpu_memory_timeline", timelines::fig3_gpu_memory_timeline),
        ("fig4_pcie_timeline", timelines::fig4_pcie_timeline),
        ("fig5_schedule_gantt", timelines::fig5_schedule_gantt),
        ("fig6_gradient_path_gantt", timelines::fig6_gradient_path_gantt),
        ("fig7_iteration_breakdown", comparisons::fig7_iteration_breakdown),
        ("fig8_update_throughput", comparisons::fig8_update_throughput),
        ("fig9_end_to_end", comparisons::fig9_end_to_end),
        ("fig10_ratio_update_time", comparisons::fig10_ratio_update_time),
        ("fig11_ratio_iteration", comparisons::fig11_ratio_iteration),
        ("fig12_ratio20_models", comparisons::fig12_ratio20_models),
        ("fig13_microbatch", scaling::fig13_microbatch),
        ("fig14_cpu_scaling", scaling::fig14_cpu_scaling),
        ("fig15_utilization", scaling::fig15_utilization),
        ("fig16_gpu_fraction", scaling::fig16_gpu_fraction),
        ("fig17_weak_scaling", scaling::fig17_weak_scaling),
        ("v100_stride_validation", scaling::v100_stride_validation),
        ("ablation_gradient_path", ablations::ablation_gradient_path),
        ("ablation_overlap", ablations::ablation_overlap),
        ("ablation_static_placement", ablations::ablation_static_placement),
        ("ablation_pinned", ablations::ablation_pinned),
        ("ablation_stacked", ablations::ablation_stacked),
        ("ablation_critical_path", ablations::ablation_critical_path),
        ("extension_nvme_tier", extensions::extension_nvme_tier),
        ("extension_checkpointing", extensions::extension_checkpointing),
        ("extension_grace_hopper", extensions::extension_grace_hopper),
        ("extension_grad_accumulation", extensions::extension_grad_accumulation),
        ("extension_zero_stages", extensions::extension_zero_stages),
        ("extension_numa_contention", contention::extension_numa_contention),
        ("extension_adaptive_control", adaptive::extension_adaptive_control),
        ("extension_zenflow", extensions::extension_zenflow),
    ]
}
