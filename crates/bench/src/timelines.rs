//! Figures 2–6: subgroup sweep, memory/PCIe timelines, schedule Gantts.

use dos::core::{DeepOptimizerStates, StridePolicy, TwinFlow, Zero3Offload};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{simulate_iteration, TrainConfig};
use dos::telemetry::{render_gantt, render_legend};

use crate::support::{phase_timeline, secs, sparkline, TextTable};

/// Figure 2: iteration time is insensitive to the subgroup size.
pub fn fig2_subgroup_sweep() -> String {
    let profile = HardwareProfile::jlse_h100();
    let sizes = [100_000_000usize, 250_000_000, 500_000_000, 1_000_000_000];
    let mut t = TextTable::new([
        "model",
        "SG=100M (s)",
        "SG=250M (s)",
        "SG=500M (s)",
        "SG=1B (s)",
        "max spread",
    ]);
    for m in ModelSpec::table2_zoo() {
        let mut times = Vec::new();
        for &sg in &sizes {
            // The paper's Figure 2 sweeps the ZeRO-3 baseline runtime.
            let mut cfg = TrainConfig::baseline(m.clone(), profile.clone());
            cfg.offload.subgroup_params = sg;
            let r = simulate_iteration(&cfg, &Zero3Offload).unwrap();
            times.push(r.total_secs);
        }
        let max = times.iter().copied().fold(f64::MIN, f64::max);
        let min = times.iter().copied().fold(f64::MAX, f64::min);
        t.row([
            m.name.clone(),
            secs(times[0]),
            secs(times[1]),
            secs(times[2]),
            secs(times[3]),
            format!("{:.1}%", (max / min - 1.0) * 100.0),
        ]);
    }
    format!(
        "== Figure 2: iteration time vs subgroup size (paper: <=4% spread) ==\n{}",
        t.render()
    )
}

/// Figure 3: GPU memory utilization over one iteration, with and without
/// activation checkpointing.
pub fn fig3_gpu_memory_timeline() -> String {
    let profile = HardwareProfile::jlse_h100();
    let spec = ModelSpec::by_name("20B").unwrap();
    let mut out = String::from("== Figure 3: GPU memory over one iteration (20B, full offload) ==\n");
    for (label, ckpt) in [("all activations kept", false), ("activation checkpointing", true)] {
        let mut cfg = TrainConfig::baseline(spec.clone(), profile.clone());
        cfg.offload.activation_checkpointing = ckpt;
        let mut scn = dos::sim::IterationScenario::new(cfg);
        let fwd = scn.run_forward(None).unwrap();
        let bwd = scn.run_backward(fwd).unwrap();
        Zero3Offload
            .schedule_update(&mut scn, bwd)
            .map(|_| ())
            .unwrap();
        let end = scn.rank.sim.makespan();
        let samples = scn.rank.hbm.sampled_timeline(dos::hal::SimTime::ZERO, end, 60);
        let series: Vec<f64> = samples.iter().map(|s| s.in_use as f64).collect();
        let peak = series.iter().copied().fold(f64::MIN, f64::max) / 1e9;
        let t_fwd = scn.rank.sim.finish_time(fwd).as_secs() / end.as_secs();
        let t_bwd = scn.rank.sim.finish_time(bwd).as_secs() / end.as_secs();
        let analysis = dos::telemetry::analyze(&scn.timeline());
        let phase_sum: f64 = analysis.phases.iter().map(|p| p.duration).sum();
        let phase_line = analysis
            .phases
            .iter()
            .map(|p| format!("{} {:.2}s", p.phase, p.duration))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "{label:>26}: |{}| peak {peak:.1} GB\n\
             {:>26}   fwd ends at {:.0}%, bwd at {:.0}% of the line\n\
             {:>26}   analyzer phases: {} (sum {:.2}s of {:.2}s iteration)\n",
            sparkline(&series),
            "",
            t_fwd * 100.0,
            t_bwd * 100.0,
            "",
            phase_line,
            phase_sum,
            analysis.total_secs,
        ));
    }
    out.push_str(
        "(paper: steep rise in forward, release during backward, flat low during update)\n",
    );
    out
}

/// Figure 4: PCIe link utilization per training phase (ZeRO-3 baseline).
pub fn fig4_pcie_timeline() -> String {
    let cfg = TrainConfig::baseline(
        ModelSpec::by_name("20B").unwrap(),
        HardwareProfile::jlse_h100(),
    );
    let r = simulate_iteration(&cfg, &Zero3Offload).unwrap();
    let end = r.total_secs;
    let windows = 60;
    let h2d = r.timeline.throughput("pcie.h2d", 0.0, end, windows);
    let d2h = r.timeline.throughput("pcie.d2h", 0.0, end, windows);
    let h2d_series: Vec<f64> = h2d.iter().map(|s| s.value / 1e9).collect();
    let d2h_series: Vec<f64> = d2h.iter().map(|s| s.value / 1e9).collect();
    let peak_h2d = h2d_series.iter().copied().fold(f64::MIN, f64::max);
    let peak_d2h = d2h_series.iter().copied().fold(f64::MIN, f64::max);
    let fwd_frac = r.forward_secs / end * 100.0;
    let bwd_frac = (r.forward_secs + r.backward_secs) / end * 100.0;
    let analysis = dos::telemetry::analyze(&r.timeline);
    format!(
        "== Figure 4: PCIe traffic over one iteration (20B, ZeRO-3) ==\n\
         H2D |{}| peak {:.1} GB/s\n\
         D2H |{}| peak {:.1} GB/s\n\
         forward ends at {:.0}%, backward at {:.0}% of the line\n\
         analyzer: whole-run H2D {:.1}% busy, D2H {:.1}% busy;\n\
         \x20 backward-phase D2H {:.1}% (grad flushes), update-phase H2D {:.1}% (param fetches)\n\
         (paper: <10% of the 50 GB/s peak; D2H grad flushes in backward,\n\
          H2D parameter fetches in update)\n",
        sparkline(&h2d_series),
        peak_h2d,
        sparkline(&d2h_series),
        peak_d2h,
        fwd_frac,
        bwd_frac,
        r.timeline.overall_utilization("pcie.h2d") * 100.0,
        r.timeline.overall_utilization("pcie.d2h") * 100.0,
        analysis.busy_fraction("backward", "pcie.d2h") * 100.0,
        analysis.busy_fraction("update", "pcie.h2d") * 100.0,
    )
}

use dos::sim::UpdateScheduler;

/// A small 8-subgroups-per-rank model for the Figure 5 illustration.
fn illustration_spec() -> ModelSpec {
    ModelSpec {
        name: "3.2B-illustration".into(),
        nominal_billions: 3.2,
        num_layers: 16,
        hidden_dim: 4096,
        attention_heads: 32,
        vocab_size: 32_000,
        seq_len: 2048,
    }
}

/// Figure 5: the update-phase schedule, TwinFlow (top) vs Deep Optimizer
/// States (bottom), for 8 subgroups per rank with 2 static residents and a
/// 33 % GPU fraction.
pub fn fig5_schedule_gantt() -> String {
    let profile = HardwareProfile::jlse_h100();
    let spec = illustration_spec();
    let mut out =
        String::from("== Figure 5: update-phase schedules (8 subgroups, 2 static, 33% GPU) ==\n");
    let mut tcfg = TrainConfig::baseline(spec.clone(), profile.clone());
    tcfg.offload.gpu_resident_ratio = 0.25;
    let twin = simulate_iteration(&tcfg, &TwinFlow).unwrap();
    out.push_str(&format!(
        "\n-- TwinFlow (static residents first, blocking copies) — update {} s --\n{}",
        secs(twin.update_secs),
        render_gantt(&phase_timeline(&twin, "update"), 100)
    ));
    let mut dcfg = TrainConfig::deep_optimizer_states(spec, profile);
    dcfg.offload.gpu_resident_ratio = 0.25;
    let dos = simulate_iteration(
        &dcfg,
        &DeepOptimizerStates { stride: StridePolicy::Fixed(3), ..Default::default() },
    )
    .unwrap();
    out.push_str(&format!(
        "\n-- Deep Optimizer States (interleaved, residents last) — update {} s --\n{}{}",
        secs(dos.update_secs),
        render_gantt(&phase_timeline(&dos, "update"), 100),
        render_legend(&phase_timeline(&dos, "update"))
    ));
    out
}

/// Figure 6: the gradient path during forward/backward — legacy FP16 flush
/// vs the FP32-on-GPU conversion.
pub fn fig6_gradient_path_gantt() -> String {
    let profile = HardwareProfile::jlse_h100();
    let spec = illustration_spec();
    let mut out = String::from("== Figure 6: backward-pass gradient paths ==\n");
    let legacy_cfg = TrainConfig::baseline(spec.clone(), profile.clone());
    let legacy = simulate_iteration(&legacy_cfg, &Zero3Offload).unwrap();
    out.push_str(&format!(
        "\n-- legacy FP16 flush (blocking; alloc + unpinned D2H + host upscale) — backward {} s --\n{}",
        secs(legacy.backward_secs),
        render_gantt(&phase_timeline(&legacy, "backward"), 100)
    ));
    let dos_cfg = TrainConfig::deep_optimizer_states(spec, profile);
    let dos = simulate_iteration(&dos_cfg, &Zero3Offload).unwrap();
    out.push_str(&format!(
        "\n-- FP32-on-GPU conversion (overlapped pinned DMA) — backward {} s --\n{}{}",
        secs(dos.backward_secs),
        render_gantt(&phase_timeline(&dos, "backward"), 100),
        render_legend(&phase_timeline(&dos, "backward"))
    ));
    out.push_str(&format!(
        "backward speedup from the gradient path alone: {:.2}x (paper: 1.9x component)\n",
        legacy.backward_secs / dos.backward_secs
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_spread_is_small() {
        let s = fig2_subgroup_sweep();
        // Every model's spread column should be under 5% (paper: ~4%).
        for line in s.lines().skip(3) {
            if let Some(pct) = line.split_whitespace().last() {
                if let Some(stripped) = pct.strip_suffix('%') {
                    let v: f64 = stripped.parse().unwrap();
                    assert!(v < 5.0, "subgroup-size spread {v}% too large: {line}");
                }
            }
        }
    }

    #[test]
    fn fig3_checkpointing_lowers_peak() {
        let s = fig3_gpu_memory_timeline();
        let peaks: Vec<f64> = s
            .lines()
            .filter_map(|l| l.split("peak ").nth(1))
            .map(|x| x.split(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(peaks.len(), 2);
        assert!(peaks[1] < peaks[0], "checkpointing peak {} !< {}", peaks[1], peaks[0]);
    }

    #[test]
    fn fig3_phase_durations_sum_to_the_iteration() {
        let s = fig3_gpu_memory_timeline();
        let sums: Vec<(f64, f64)> = s
            .lines()
            .filter_map(|l| l.split("(sum ").nth(1))
            .map(|tail| {
                let sum: f64 = tail.split('s').next().unwrap().parse().unwrap();
                let total: f64 =
                    tail.split("of ").nth(1).unwrap().split('s').next().unwrap().parse().unwrap();
                (sum, total)
            })
            .collect();
        assert_eq!(sums.len(), 2, "{s}");
        for (sum, total) in sums {
            assert!((sum - total).abs() < 0.02 * total, "phases {sum}s != iteration {total}s");
        }
    }

    #[test]
    fn fig4_analyzer_confirms_pcie_is_underutilized() {
        let s = fig4_pcie_timeline();
        let pct = |prefix: &str| -> f64 {
            s.split(prefix)
                .nth(1)
                .and_then(|t| t.split('%').next())
                .and_then(|t| t.trim().parse().ok())
                .unwrap_or_else(|| panic!("missing `{prefix}`:\n{s}"))
        };
        // The paper's Figure 4 claim: the links idle most of the iteration.
        assert!(pct("whole-run H2D ") < 10.0, "{s}");
        assert!(pct("busy, D2H ") < 10.0, "{s}");
        // But within their phases the transfers are real.
        assert!(pct("backward-phase D2H ") > 5.0, "{s}");
        assert!(pct("update-phase H2D ") > 5.0, "{s}");
    }

    #[test]
    fn fig5_dos_update_is_faster() {
        let s = fig5_schedule_gantt();
        let times: Vec<f64> = s
            .lines()
            .filter_map(|l| l.split("update ").nth(1))
            .map(|x| x.split(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(times.len(), 2);
        assert!(times[1] < times[0], "DOS {} !< TwinFlow {}", times[1], times[0]);
    }

    #[test]
    fn fig6_backward_component_is_near_paper() {
        let s = fig6_gradient_path_gantt();
        let line = s.lines().find(|l| l.contains("backward speedup")).unwrap();
        let v: f64 =
            line.split(": ").nth(1).unwrap().split('x').next().unwrap().parse().unwrap();
        assert!((1.5..4.0).contains(&v), "backward component {v}");
    }
}
