//! Figures 7–12: head-to-head comparisons against ZeRO-3 and TwinFlow.

use dos::core::{DeepOptimizerStates, TwinFlow, Zero3Offload};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{simulate_iteration, simulate_training, IterationReport, TrainConfig};

use crate::support::{bpps, secs, speedup, TextTable};

fn zero3_report(model: &ModelSpec) -> IterationReport {
    let cfg = TrainConfig::baseline(model.clone(), HardwareProfile::jlse_h100());
    simulate_iteration(&cfg, &Zero3Offload).unwrap()
}

fn dos_report(model: &ModelSpec, ratio: f64) -> IterationReport {
    let mut cfg = TrainConfig::deep_optimizer_states(model.clone(), HardwareProfile::jlse_h100());
    cfg.offload.gpu_resident_ratio = ratio;
    simulate_iteration(&cfg, &DeepOptimizerStates::default()).unwrap()
}

fn twinflow_report(model: &ModelSpec, ratio: f64) -> IterationReport {
    let mut cfg = TrainConfig::baseline(model.clone(), HardwareProfile::jlse_h100());
    cfg.offload.gpu_resident_ratio = ratio;
    simulate_iteration(&cfg, &TwinFlow).unwrap()
}

/// Figure 7: per-iteration breakdown, optimizer fully offloaded.
pub fn fig7_iteration_breakdown() -> String {
    let mut t = TextTable::new([
        "model",
        "zero3 fwd",
        "zero3 bwd",
        "zero3 upd",
        "zero3 total",
        "dos fwd",
        "dos bwd",
        "dos upd",
        "dos total",
        "speedup",
    ]);
    for m in ModelSpec::table2_zoo() {
        let z = zero3_report(&m);
        let d = dos_report(&m, 0.0);
        t.row([
            m.name.clone(),
            secs(z.forward_secs),
            secs(z.backward_secs),
            secs(z.update_secs),
            secs(z.total_secs),
            secs(d.forward_secs),
            secs(d.backward_secs),
            secs(d.update_secs),
            secs(d.total_secs),
            speedup(z.total_secs / d.total_secs),
        ]);
    }
    format!(
        "== Figure 7: iteration breakdown, full CPU offload (paper: 2-2.5x) ==\n{}",
        t.render()
    )
}

/// Figure 8: aggregate update throughput (billions of params/s).
pub fn fig8_update_throughput() -> String {
    let world = HardwareProfile::jlse_h100().num_gpus;
    let mut t = TextTable::new(["model", "zero3 (B P/s)", "dos (B P/s)", "gain"]);
    let mut gains = Vec::new();
    for m in ModelSpec::table2_zoo() {
        let z = zero3_report(&m);
        let d = dos_report(&m, 0.0);
        let gain = d.update_pps_per_rank / z.update_pps_per_rank;
        gains.push(gain);
        t.row([
            m.name.clone(),
            bpps(z.update_pps_aggregate(world)),
            bpps(d.update_pps_aggregate(world)),
            speedup(gain),
        ]);
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    format!(
        "== Figure 8: update throughput (paper: ~70% higher on average) ==\n{}\naverage gain: {}\n",
        t.render(),
        speedup(avg)
    )
}

/// Figure 9: end-to-end runtime over 100 iterations.
pub fn fig9_end_to_end() -> String {
    let profile = HardwareProfile::jlse_h100();
    let mut t = TextTable::new([
        "model",
        "zero3 100-iter (s)",
        "dos 100-iter (s)",
        "speedup",
        "dos stable?",
    ]);
    for m in ModelSpec::table2_zoo() {
        let zcfg = TrainConfig::baseline(m.clone(), profile.clone());
        let z = simulate_training(&zcfg, &Zero3Offload, 100).unwrap();
        let dcfg = TrainConfig::deep_optimizer_states(m.clone(), profile.clone());
        let d = simulate_training(&dcfg, &DeepOptimizerStates::default(), 100).unwrap();
        t.row([
            m.name.clone(),
            secs(z.total_secs),
            secs(d.total_secs),
            speedup(z.total_secs / d.total_secs),
            if d.is_stable(2, 0.05) { "yes".to_string() } else { "NO".to_string() },
        ]);
    }
    format!(
        "== Figure 9: end-to-end 100 iterations (paper: same ~2.5x as per-iteration;\n\
         \x20  spilled transfers do not destabilize subsequent iterations) ==\n{}",
        t.render()
    )
}

/// Figure 10: update time vs TwinFlow static-GPU ratio (20B).
pub fn fig10_ratio_update_time() -> String {
    let m = ModelSpec::by_name("20B").unwrap();
    let mut t = TextTable::new(["static GPU ratio", "twinflow upd (s)", "dos upd (s)", "gain"]);
    for ratio in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let tw = twinflow_report(&m, ratio);
        let d = dos_report(&m, ratio);
        t.row([
            format!("{:.0}%", ratio * 100.0),
            secs(tw.update_secs),
            secs(d.update_secs),
            speedup(tw.update_secs / d.update_secs),
        ]);
    }
    format!(
        "== Figure 10: update time vs static ratio, 20B (paper: >=1.7x at every ratio) ==\n{}",
        t.render()
    )
}

/// Figure 11: full-iteration breakdown vs TwinFlow ratio (20B).
pub fn fig11_ratio_iteration() -> String {
    let m = ModelSpec::by_name("20B").unwrap();
    let mut t = TextTable::new([
        "static GPU ratio",
        "twinflow total (s)",
        "dos total (s)",
        "speedup",
        "dos@0% vs twin@this",
    ]);
    let dos_at_zero = dos_report(&m, 0.0).total_secs;
    for ratio in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let tw = twinflow_report(&m, ratio);
        let d = dos_report(&m, ratio);
        t.row([
            format!("{:.0}%", ratio * 100.0),
            secs(tw.total_secs),
            secs(d.total_secs),
            speedup(tw.total_secs / d.total_secs),
            speedup(tw.total_secs / dos_at_zero),
        ]);
    }
    format!(
        "== Figure 11: iteration vs static ratio, 20B (paper: ~2x even at 50%;\n\
         \x20  DOS at 0% beats TwinFlow at 50% by ~40% with ~35 GB/GPU less memory) ==\n{}",
        t.render()
    )
}

/// Figure 12: fixed 20 % ratio across model sizes.
pub fn fig12_ratio20_models() -> String {
    let mut t = TextTable::new(["model", "twinflow total (s)", "dos total (s)", "speedup"]);
    for m in ModelSpec::table2_zoo() {
        let tw = twinflow_report(&m, 0.2);
        let d = dos_report(&m, 0.2);
        t.row([
            m.name.clone(),
            secs(tw.total_secs),
            secs(d.total_secs),
            speedup(tw.total_secs / d.total_secs),
        ]);
    }
    format!(
        "== Figure 12: TwinFlow ratio = 20% across models (paper: 1.7-2.3x) ==\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speedups_from(s: &str, col_contains: &str) -> Vec<f64> {
        s.lines()
            .filter(|l| l.contains('x') && !l.contains(col_contains) && !l.contains("=="))
            .filter_map(|l| {
                l.split_whitespace()
                    .rev()
                    .find(|w| w.ends_with('x'))
                    .and_then(|w| w.trim_end_matches('x').parse().ok())
            })
            .collect()
    }

    #[test]
    fn fig7_speedups_in_band() {
        let s = fig7_iteration_breakdown();
        let v = speedups_from(&s, "speedup");
        assert_eq!(v.len(), 5);
        for sp in v {
            assert!((1.8..3.0).contains(&sp), "fig7 speedup {sp}");
        }
    }

    #[test]
    fn fig9_matches_fig7_scale_and_is_stable() {
        let s = fig9_end_to_end();
        assert!(!s.contains("NO"), "unstable run detected:\n{s}");
        let v = speedups_from(&s, "speedup");
        for sp in v {
            assert!((1.8..3.0).contains(&sp), "fig9 speedup {sp}");
        }
    }

    #[test]
    fn fig10_gains_exceed_1_5() {
        let s = fig10_ratio_update_time();
        let v = speedups_from(&s, "gain");
        assert_eq!(v.len(), 6);
        for sp in v {
            assert!(sp > 1.5, "fig10 gain {sp}");
        }
    }

    #[test]
    fn fig11_dos_at_zero_beats_twinflow_at_50() {
        let s = fig11_ratio_iteration();
        let last = s.lines().rev().find(|l| l.trim_start().starts_with("50%")).unwrap();
        let cross: f64 = last
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(cross > 1.0, "DOS@0% should beat TwinFlow@50%, got {cross}x");
    }
}
