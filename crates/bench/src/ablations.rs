//! Ablations of the individual design choices DESIGN.md calls out.

use dos::core::{DeepOptimizerStates, StridePolicy, Zero3Offload};
use dos::hal::HardwareProfile;
use dos::nn::ModelSpec;
use dos::sim::{simulate_iteration, GradientPath, TrainConfig};

use crate::support::{secs, speedup, TextTable};

fn spec() -> ModelSpec {
    ModelSpec::by_name("20B").unwrap()
}

/// Ablation: legacy FP16 gradient flush vs the FP32-on-GPU conversion
/// (§4.1 "PCIe transfers with higher precision"), everything else equal.
pub fn ablation_gradient_path() -> String {
    let profile = HardwareProfile::jlse_h100();
    let mut t = TextTable::new(["gradient path", "backward (s)", "iteration (s)"]);
    for (label, path) in [
        ("legacy FP16 flush", GradientPath::LegacyFp16Flush),
        ("FP32-on-GPU", GradientPath::Fp32OnGpu),
    ] {
        let mut cfg = TrainConfig::deep_optimizer_states(spec(), profile.clone());
        cfg.gradient_path = path;
        let r = simulate_iteration(&cfg, &DeepOptimizerStates::default()).unwrap();
        t.row([label.to_string(), secs(r.backward_secs), secs(r.total_secs)]);
    }
    format!("== Ablation: gradient flush path (20B, DOS scheduler) ==\n{}", t.render())
}

/// Ablation: overlapping the gradient flush with backward compute vs
/// blocking it on the compute stream.
pub fn ablation_overlap() -> String {
    let profile = HardwareProfile::jlse_h100();
    let mut t = TextTable::new(["backward flushes", "backward (s)", "iteration (s)"]);
    for (label, overlap) in [("blocking", false), ("overlapped", true)] {
        let mut cfg = TrainConfig::deep_optimizer_states(spec(), profile.clone());
        cfg.overlap_backward = overlap;
        let r = simulate_iteration(&cfg, &DeepOptimizerStates::default()).unwrap();
        t.row([label.to_string(), secs(r.backward_secs), secs(r.total_secs)]);
    }
    format!("== Ablation: backward-flush overlap (20B, DOS scheduler) ==\n{}", t.render())
}

/// Ablation: static residents at the head of the subgroup order (TwinFlow
/// style) vs the paper's tail placement (§4.1).
pub fn ablation_static_placement() -> String {
    let profile = HardwareProfile::jlse_h100();
    let mut t = TextTable::new(["resident placement", "update (s)", "iteration (s)"]);
    for (label, tail) in [("head (TwinFlow style)", false), ("tail (paper)", true)] {
        let mut cfg = TrainConfig::deep_optimizer_states(spec(), profile.clone());
        cfg.offload.gpu_resident_ratio = 0.2;
        let sched =
            DeepOptimizerStates { stride: StridePolicy::Auto, residents_at_tail: tail };
        let r = simulate_iteration(&cfg, &sched).unwrap();
        t.row([label.to_string(), secs(r.update_secs), secs(r.total_secs)]);
    }
    format!(
        "== Ablation: static-resident placement (20B, ratio 20%) ==\n{}",
        t.render()
    )
}

/// Ablation: pinned vs pageable host memory for the optimizer-state
/// staging traffic (§5.1 lists both rates).
pub fn ablation_pinned() -> String {
    let base = HardwareProfile::jlse_h100();
    let mut t = TextTable::new(["host memory", "update (s)", "iteration (s)", "slowdown"]);
    let pinned_cfg = TrainConfig::deep_optimizer_states(spec(), base.clone());
    let pinned = simulate_iteration(&pinned_cfg, &DeepOptimizerStates::default()).unwrap();
    // Pageable: the update-phase effective B degrades by the pageable/pinned
    // H2D ratio (9/55 on this machine).
    let mut pageable_profile = base.clone();
    pageable_profile.update_b_pps *= base.pcie_h2d_pageable / base.pcie_h2d;
    let pageable_cfg = TrainConfig::deep_optimizer_states(spec(), pageable_profile);
    let pageable = simulate_iteration(&pageable_cfg, &DeepOptimizerStates::default()).unwrap();
    t.row(["pinned".to_string(), secs(pinned.update_secs), secs(pinned.total_secs), "-".into()]);
    t.row([
        "pageable".to_string(),
        secs(pageable.update_secs),
        secs(pageable.total_secs),
        speedup(pageable.update_secs / pinned.update_secs),
    ]);
    format!("== Ablation: pinned vs pageable staging buffers (20B) ==\n{}", t.render())
}

/// Ablation: what each DOS ingredient contributes, stacked from the ZeRO-3
/// baseline to the full system.
pub fn ablation_stacked() -> String {
    let profile = HardwareProfile::jlse_h100();
    let mut t = TextTable::new(["configuration", "iteration (s)", "cumulative speedup"]);
    let base_cfg = TrainConfig::baseline(spec(), profile.clone());
    let base = simulate_iteration(&base_cfg, &Zero3Offload).unwrap();
    t.row(["ZeRO-3 baseline".to_string(), secs(base.total_secs), "1.00x".into()]);

    let mut cfg = TrainConfig::baseline(spec(), profile.clone());
    cfg.gradient_path = GradientPath::Fp32OnGpu;
    let r = simulate_iteration(&cfg, &Zero3Offload).unwrap();
    t.row([
        "+ FP32-on-GPU gradient path".to_string(),
        secs(r.total_secs),
        speedup(base.total_secs / r.total_secs),
    ]);

    cfg.overlap_backward = true;
    let r = simulate_iteration(&cfg, &Zero3Offload).unwrap();
    t.row([
        "+ overlapped backward flushes".to_string(),
        secs(r.total_secs),
        speedup(base.total_secs / r.total_secs),
    ]);

    let r = simulate_iteration(&cfg, &DeepOptimizerStates::default()).unwrap();
    t.row([
        "+ interleaved update scheduling (full DOS)".to_string(),
        secs(r.total_secs),
        speedup(base.total_secs / r.total_secs),
    ]);
    format!(
        "== Ablation: stacked contributions (20B; paper: backward path = 1.9x of the\n\
         \x20  2.5x total, update interleaving adds the remaining ~60%) ==\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(s: &str, row_contains: &str, idx_from_end: usize) -> f64 {
        let line = s
            .lines()
            .filter(|l| !l.contains("==") && !l.contains("(s)"))
            .find(|l| l.contains(row_contains))
            .unwrap();
        let w: Vec<&str> = line.split_whitespace().collect();
        w[w.len() - 1 - idx_from_end].trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn fp32_path_speeds_backward() {
        let s = ablation_gradient_path();
        assert!(col(&s, "legacy", 1) > col(&s, "FP32-on-GPU", 1));
    }

    #[test]
    fn overlap_speeds_backward() {
        let s = ablation_overlap();
        assert!(col(&s, "blocking", 1) > col(&s, "overlapped", 1));
    }

    #[test]
    fn tail_placement_is_no_worse() {
        let s = ablation_static_placement();
        assert!(col(&s, "tail", 1) <= col(&s, "head", 1) + 1e-9, "{s}");
    }

    #[test]
    fn pageable_memory_slows_updates() {
        let s = ablation_pinned();
        assert!(col(&s, "pageable", 0) > 1.5, "{s}");
    }

    #[test]
    fn stacked_contributions_are_monotone() {
        let s = ablation_stacked();
        let v: Vec<f64> = s
            .lines()
            .filter_map(|l| {
                l.split_whitespace()
                    .last()
                    .filter(|w| w.ends_with('x'))
                    .and_then(|w| w.trim_end_matches('x').parse().ok())
            })
            .collect();
        assert_eq!(v.len(), 4);
        assert!(v.windows(2).all(|w| w[1] >= w[0] - 1e-9), "not monotone: {v:?}");
        assert!(v[3] > 1.9, "full stack {}", v[3]);
    }
}

/// Ablation: where does the iteration's critical path spend its time?
/// Uses the engine's binding-predecessor chains to attribute the makespan
/// to resources, for the baseline and for Deep Optimizer States.
pub fn ablation_critical_path() -> String {
    use dos::core::Zero3Offload as Z3;
    use dos::sim::{IterationScenario, UpdateScheduler};
    let profile = HardwareProfile::jlse_h100();
    let mut out = String::from("== Ablation: critical-path attribution (20B iteration) ==\n");
    let schedulers: [(&str, &dyn UpdateScheduler, TrainConfig); 2] = [
        ("zero3-offload", &Z3, TrainConfig::baseline(spec(), profile.clone())),
        (
            "deep-optimizer-states",
            &DeepOptimizerStates::default(),
            TrainConfig::deep_optimizer_states(spec(), profile),
        ),
    ];
    for (name, sched, cfg) in schedulers {
        let mut scn = IterationScenario::new(cfg);
        let fwd = scn.run_forward(None).unwrap();
        let bwd = scn.run_backward(fwd).unwrap();
        let upd = sched.schedule_update(&mut scn, bwd).unwrap();
        let total = scn.rank.sim.finish_time(upd).as_secs();
        out.push_str(&format!("\n{name} (total {total:.2}s):\n"));
        for (resource, secs) in scn.rank.sim.critical_path_breakdown(upd) {
            if secs > 0.01 {
                out.push_str(&format!(
                    "  {resource:>10}: {secs:7.2}s ({:4.1}%)\n",
                    secs / total * 100.0
                ));
            }
        }
    }
    out.push_str(
        "\n(the baseline's path runs through the CPU and the staging chain; DOS moves\n\
         most of it onto the PCIe link it deliberately saturates)\n",
    );
    out
}

#[cfg(test)]
mod critical_path_tests {
    use super::*;

    #[test]
    fn critical_path_covers_most_of_the_makespan() {
        let s = ablation_critical_path();
        // Both schedulers' per-resource shares should be reported and the
        // dominant resource should hold a large chunk of the time.
        for block in s.split("==").filter(|b| b.contains("total")) {
            let pcts: Vec<f64> = block
                .lines()
                .filter_map(|l| l.split('(').nth(1))
                .filter_map(|x| x.trim_end_matches(['%', ')']).trim().parse().ok())
                .collect();
            let sum: f64 = pcts.iter().sum();
            assert!(sum > 80.0, "critical path only explains {sum}% of:\n{block}");
        }
    }
}
