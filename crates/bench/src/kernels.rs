//! Measured kernel and pipeline throughput — the numbers behind
//! `BENCH_7.json`.
//!
//! Unlike the simulator-driven figures, everything here is wall-clock
//! measured on the host running the benchmark: the scalar oracle loops
//! versus the chunked autovectorizable kernels for the Adam update
//! (`U_c`) and the FP32↔FP16 conversions (`D_c`), plus the end-to-end
//! [`hybrid_update_pooled`] pipeline with its staging arena. The JSON
//! schema is documented in `DESIGN.md` §11; `kernel_bench --baseline`
//! gates CI on the end-to-end number.

use std::time::Instant;

use dos::core::{hybrid_update_pooled, ArenaPool, PipelineConfig, StridePolicy};
use dos::optim::{kernels as optim_kernels, MixedPrecisionState, UpdateRule};
use dos::tensor::{kernels as tensor_kernels, F16};
use dos::zero::partition_into_subgroups;
use serde::{Deserialize, Serialize};

/// Schema tag committed alongside the numbers so a reader (or the CI
/// gate) can tell at a glance which generation of the document it holds.
pub const SCHEMA: &str = "dos-bench/kernels-v1";

/// Relative end-to-end throughput loss the regression gate tolerates.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// Largest fraction of end-to-end throughput the always-on monitoring
/// path (flight-only tracer on the pooled pipeline) may cost before the
/// gate fails the build.
pub const OVERHEAD_BUDGET: f64 = 0.03;

/// One scalar-versus-vectorized measurement, params/s.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelPair {
    /// Scalar oracle loop throughput.
    pub scalar_pps: f64,
    /// Chunked autovectorizable kernel throughput.
    pub vectorized_pps: f64,
    /// `vectorized_pps / scalar_pps`.
    pub speedup: f64,
}

impl KernelPair {
    fn new(scalar_pps: f64, vectorized_pps: f64) -> KernelPair {
        KernelPair { scalar_pps, vectorized_pps, speedup: vectorized_pps / scalar_pps }
    }
}

/// Arena-pool counters observed over the end-to-end run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArenaStats {
    /// Peak concurrently-leased logical bytes.
    pub high_water_bytes: u64,
    /// Leases served from the freelists.
    pub reuse_hits: u64,
    /// Leases that had to allocate.
    pub allocation_misses: u64,
}

/// End-to-end pooled pipeline throughput.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EndToEnd {
    /// Flat parameter count per step.
    pub params: usize,
    /// Subgroup size of the partition.
    pub subgroup: usize,
    /// Fixed update stride.
    pub stride: usize,
    /// Steps per timed round.
    pub iters: usize,
    /// Median throughput, params/s.
    pub pps: f64,
    /// Arena counters after the run.
    pub arena: ArenaStats,
}

/// Cost of always-on flight recording on the end-to-end pipeline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OverheadStats {
    /// End-to-end throughput with no tracer attached, params/s.
    pub untraced_pps: f64,
    /// End-to-end throughput with a bounded flight-only tracer, params/s.
    pub flight_pps: f64,
    /// `1 - flight_pps / untraced_pps`, clamped at zero (timing jitter can
    /// make the traced arm come out marginally faster on tiny shapes).
    pub overhead_fraction: f64,
}

impl OverheadStats {
    fn new(untraced_pps: f64, flight_pps: f64) -> OverheadStats {
        OverheadStats {
            untraced_pps,
            flight_pps,
            overhead_fraction: (1.0 - flight_pps / untraced_pps).max(0.0),
        }
    }
}

/// The whole `BENCH_7.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelBenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Elements per kernel invocation.
    pub elements: usize,
    /// Timed rounds behind each median.
    pub rounds: usize,
    /// Adam update: scalar oracle vs [`optim_kernels::apply`] (`U_c`).
    pub u_c: KernelPair,
    /// FP32→FP16 downscale: scalar vs [`tensor_kernels::downscale`] (`D_c`).
    pub d_c: KernelPair,
    /// FP16→FP32 upscale: scalar vs [`tensor_kernels::upscale`].
    pub upscale: KernelPair,
    /// End-to-end [`hybrid_update_pooled`] throughput.
    pub hybrid_update: EndToEnd,
    /// Traced-vs-untraced cost of the production monitoring path. Absent
    /// in pre-monitoring baseline documents, so those still parse.
    #[serde(default)]
    pub monitoring_overhead: Option<OverheadStats>,
}

/// One warmup invocation, then the median of `rounds` timed rounds of
/// `iters` invocations each, in seconds per invocation.
fn median_secs<F: FnMut()>(mut f: F, iters: usize, rounds: usize) -> f64 {
    f();
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[rounds / 2]
}

/// Runs the whole suite.
///
/// # Panics
///
/// Panics if `elements`, `rounds`, or `iters` is zero.
pub fn run_kernel_bench(elements: usize, rounds: usize, iters: usize) -> KernelBenchReport {
    assert!(elements > 0 && rounds > 0 && iters > 0, "bench shape must be positive");
    let pps = |secs: f64| elements as f64 / secs;

    // U_c — one Adam step over the flat element range, both loops primed
    // with identical state so they do identical arithmetic.
    let grads: Vec<f32> = (0..elements).map(|i| ((i % 101) as f32 / 101.0) - 0.5).collect();
    let rule = UpdateRule::adam();
    let mut p = vec![0.5f32; elements];
    let mut m = vec![0.0f32; elements];
    let mut v = vec![0.0f32; elements];
    let scalar = median_secs(
        || optim_kernels::apply_reference(&rule, 1, 1e-3, &mut p, &grads, &mut m, &mut v),
        2,
        rounds,
    );
    let vectorized = median_secs(
        || optim_kernels::apply(&rule, 1, 1e-3, &mut p, &grads, &mut m, &mut v),
        2,
        rounds,
    );
    let u_c = KernelPair::new(pps(scalar), pps(vectorized));

    // D_c — FP32→FP16 downscale over sin() data (full exponent spread;
    // monotone ramps flatter branch predictors and overstate the scalar
    // path).
    let src: Vec<f32> = (0..elements).map(|i| (i as f32).sin()).collect();
    let mut dst = vec![F16::ZERO; elements];
    let scalar = median_secs(|| tensor_kernels::downscale_reference(&src, &mut dst), 4, rounds);
    let vectorized = median_secs(|| tensor_kernels::downscale(&src, &mut dst), 4, rounds);
    let d_c = KernelPair::new(pps(scalar), pps(vectorized));

    // Upscale — FP16→FP32 (the prefetch-side conversion).
    let src16 = dst.clone();
    let mut dst32 = vec![0.0f32; elements];
    let scalar = median_secs(|| tensor_kernels::upscale_reference(&src16, &mut dst32), 4, rounds);
    let vectorized = median_secs(|| tensor_kernels::upscale(&src16, &mut dst32), 4, rounds);
    let upscale = KernelPair::new(pps(scalar), pps(vectorized));

    // End to end — the pooled hybrid-update pipeline at the paper-default
    // stride 2 with one static resident, sharing a single arena across
    // all timed steps (the production configuration).
    let params = elements;
    let subgroup = (elements / 8).max(1);
    let subgroups = partition_into_subgroups(params, subgroup);
    let cfg = PipelineConfig {
        stride: StridePolicy::Fixed(2),
        static_residents: 1,
        fault_injection: None,
    };
    let pool = ArenaPool::new();
    let mut state = MixedPrecisionState::new(vec![0.5; params], UpdateRule::adam(), 1e-3);
    let secs = median_secs(
        || {
            // The shapes are pre-validated, so the pipeline cannot reject
            // the step; an error here is a bench bug worth crashing on.
            #[allow(clippy::unwrap_used)]
            hybrid_update_pooled(&mut state, &grads, &subgroups, cfg, None, &pool).unwrap();
        },
        iters,
        rounds,
    );
    let hybrid_update = EndToEnd {
        params,
        subgroup,
        stride: 2,
        iters,
        pps: params as f64 / secs,
        arena: ArenaStats {
            high_water_bytes: pool.high_water_bytes() as u64,
            reuse_hits: pool.reuse_hits(),
            allocation_misses: pool.allocation_misses(),
        },
    };

    // Monitoring overhead — the identical pipeline with the production
    // always-on configuration attached: a bounded flight-only tracer
    // (ring recording, interned ids, no unbounded event store). Fresh
    // state and arena so both arms start cold from the same shape.
    let tracer = dos::telemetry::Tracer::flight_only(4096);
    let traced_pool = ArenaPool::with_metrics(tracer.metrics().clone());
    let mut traced_state = MixedPrecisionState::new(vec![0.5; params], UpdateRule::adam(), 1e-3);
    let traced_secs = median_secs(
        || {
            // Same pre-validated shapes as the untraced arm.
            #[allow(clippy::unwrap_used)]
            hybrid_update_pooled(&mut traced_state, &grads, &subgroups, cfg, Some(&tracer), &traced_pool)
                .unwrap();
        },
        iters,
        rounds,
    );
    let monitoring_overhead =
        Some(OverheadStats::new(hybrid_update.pps, params as f64 / traced_secs));

    KernelBenchReport {
        schema: SCHEMA.to_string(),
        elements,
        rounds,
        u_c,
        d_c,
        upscale,
        hybrid_update,
        monitoring_overhead,
    }
}

/// Gates `new` against `baseline`: the end-to-end pooled throughput may
/// not regress by more than [`REGRESSION_TOLERANCE`].
///
/// # Errors
///
/// Returns a rendered explanation when the schema differs or the
/// end-to-end throughput falls below the tolerance band.
pub fn regression_gate(
    new: &KernelBenchReport,
    baseline: &KernelBenchReport,
) -> Result<(), String> {
    if new.schema != baseline.schema {
        return Err(format!("schema mismatch: {} vs baseline {}", new.schema, baseline.schema));
    }
    let floor = baseline.hybrid_update.pps * (1.0 - REGRESSION_TOLERANCE);
    if new.hybrid_update.pps < floor {
        return Err(format!(
            "end-to-end hybrid_update regressed: {:.3e} pps < floor {:.3e} (baseline {:.3e}, \
             tolerance {:.0}%)",
            new.hybrid_update.pps,
            floor,
            baseline.hybrid_update.pps,
            REGRESSION_TOLERANCE * 100.0
        ));
    }
    if let Some(overhead) = &new.monitoring_overhead {
        if overhead.overhead_fraction > OVERHEAD_BUDGET {
            return Err(format!(
                "always-on monitoring overhead over budget: {:.1}% > {:.0}% \
                 ({:.3e} pps traced vs {:.3e} untraced)",
                overhead.overhead_fraction * 100.0,
                OVERHEAD_BUDGET * 100.0,
                overhead.flight_pps,
                overhead.untraced_pps
            ));
        }
    }
    Ok(())
}

/// Renders the human-readable block (`kernel_bench` without `--json`).
pub fn render(report: &KernelBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "kernel bench ({} elements, median of {} rounds)\n",
        report.elements, report.rounds
    ));
    for (name, pair) in
        [("U_c adam", &report.u_c), ("D_c downscale", &report.d_c), ("upscale", &report.upscale)]
    {
        out.push_str(&format!(
            "  {name:<13} scalar {:>10.3e} pps   vectorized {:>10.3e} pps   {:>5.2}x\n",
            pair.scalar_pps, pair.vectorized_pps, pair.speedup
        ));
    }
    let e = &report.hybrid_update;
    out.push_str(&format!(
        "  hybrid_update {:.3e} pps ({} params, subgroup {}, stride {}, arena high-water {} B, \
         {} hits / {} misses)\n",
        e.pps,
        e.params,
        e.subgroup,
        e.stride,
        e.arena.high_water_bytes,
        e.arena.reuse_hits,
        e.arena.allocation_misses
    ));
    if let Some(o) = &report.monitoring_overhead {
        out.push_str(&format!(
            "  monitoring overhead {:.1}% (budget {:.0}%): {:.3e} pps flight-traced vs \
             {:.3e} untraced\n",
            o.overhead_fraction * 100.0,
            OVERHEAD_BUDGET * 100.0,
            o.flight_pps,
            o.untraced_pps
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> KernelBenchReport {
        run_kernel_bench(1 << 12, 3, 2)
    }

    #[test]
    fn report_round_trips_and_carries_the_schema() {
        let report = tiny();
        assert_eq!(report.schema, SCHEMA);
        assert!(report.u_c.scalar_pps > 0.0 && report.d_c.vectorized_pps > 0.0);
        assert!(report.hybrid_update.pps > 0.0);
        assert!(report.hybrid_update.arena.reuse_hits > 0, "steps after the first reuse leases");
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: KernelBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, report.schema);
        assert_eq!(back.hybrid_update.params, report.hybrid_update.params);
    }

    #[test]
    fn gate_passes_against_itself_and_fails_against_an_inflated_baseline() {
        let mut report = tiny();
        // Tiny shapes make the traced-vs-untraced split pure timing noise;
        // pin a healthy value so this test exercises the pps floor only.
        report.monitoring_overhead =
            Some(OverheadStats { untraced_pps: 1e9, flight_pps: 0.99e9, overhead_fraction: 0.01 });
        assert!(regression_gate(&report, &report).is_ok());
        let mut inflated = report.clone();
        inflated.hybrid_update.pps *= 100.0;
        let err = regression_gate(&report, &inflated).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        let mut wrong_schema = report.clone();
        wrong_schema.schema = "dos-bench/kernels-v0".to_string();
        assert!(regression_gate(&report, &wrong_schema).is_err());
    }

    #[test]
    fn overhead_budget_gates_and_tolerates_within_budget() {
        let mut report = tiny();
        assert!(report.monitoring_overhead.is_some(), "bench must measure the traced arm");
        let baseline = report.clone();
        report.monitoring_overhead =
            Some(OverheadStats { untraced_pps: 1e9, flight_pps: 0.99e9, overhead_fraction: 0.01 });
        assert!(regression_gate(&report, &baseline).is_ok());
        report.monitoring_overhead =
            Some(OverheadStats { untraced_pps: 1e9, flight_pps: 0.90e9, overhead_fraction: 0.10 });
        let err = regression_gate(&report, &baseline).unwrap_err();
        assert!(err.contains("overhead"), "{err}");
        // Pre-monitoring documents (no overhead field) still gate cleanly.
        report.monitoring_overhead = None;
        assert!(regression_gate(&report, &baseline).is_ok());
        let legacy = r#"{ "schema": "dos-bench/kernels-v1", "elements": 16, "rounds": 1,
            "u_c": { "scalar_pps": 1.0, "vectorized_pps": 2.0, "speedup": 2.0 },
            "d_c": { "scalar_pps": 1.0, "vectorized_pps": 2.0, "speedup": 2.0 },
            "upscale": { "scalar_pps": 1.0, "vectorized_pps": 2.0, "speedup": 2.0 },
            "hybrid_update": { "params": 16, "subgroup": 2, "stride": 2, "iters": 1,
                "pps": 1.0, "arena": { "high_water_bytes": 0, "reuse_hits": 0,
                "allocation_misses": 0 } } }"#;
        let parsed: KernelBenchReport = serde_json::from_str(legacy).unwrap();
        assert!(parsed.monitoring_overhead.is_none());
    }

    #[test]
    fn overhead_fraction_clamps_at_zero() {
        let o = OverheadStats::new(1.0e9, 1.1e9);
        assert_eq!(o.overhead_fraction, 0.0);
        let o = OverheadStats::new(1.0e9, 0.95e9);
        assert!((o.overhead_fraction - 0.05).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_every_throughput() {
        let block = render(&tiny());
        for needle in [
            "U_c adam",
            "D_c downscale",
            "upscale",
            "hybrid_update",
            "high-water",
            "monitoring overhead",
        ] {
            assert!(block.contains(needle), "missing {needle}:\n{block}");
        }
    }
}
