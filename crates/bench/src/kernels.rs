//! Measured kernel and pipeline throughput — the numbers behind
//! `BENCH_6.json`.
//!
//! Unlike the simulator-driven figures, everything here is wall-clock
//! measured on the host running the benchmark: the scalar oracle loops
//! versus the chunked autovectorizable kernels for the Adam update
//! (`U_c`) and the FP32↔FP16 conversions (`D_c`), plus the end-to-end
//! [`hybrid_update_pooled`] pipeline with its staging arena. The JSON
//! schema is documented in `DESIGN.md` §11; `kernel_bench --baseline`
//! gates CI on the end-to-end number.

use std::time::Instant;

use dos::core::{hybrid_update_pooled, ArenaPool, PipelineConfig, StridePolicy};
use dos::optim::{kernels as optim_kernels, MixedPrecisionState, UpdateRule};
use dos::tensor::{kernels as tensor_kernels, F16};
use dos::zero::partition_into_subgroups;
use serde::{Deserialize, Serialize};

/// Schema tag committed alongside the numbers so a reader (or the CI
/// gate) can tell at a glance which generation of the document it holds.
pub const SCHEMA: &str = "dos-bench/kernels-v1";

/// Relative end-to-end throughput loss the regression gate tolerates.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// One scalar-versus-vectorized measurement, params/s.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KernelPair {
    /// Scalar oracle loop throughput.
    pub scalar_pps: f64,
    /// Chunked autovectorizable kernel throughput.
    pub vectorized_pps: f64,
    /// `vectorized_pps / scalar_pps`.
    pub speedup: f64,
}

impl KernelPair {
    fn new(scalar_pps: f64, vectorized_pps: f64) -> KernelPair {
        KernelPair { scalar_pps, vectorized_pps, speedup: vectorized_pps / scalar_pps }
    }
}

/// Arena-pool counters observed over the end-to-end run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ArenaStats {
    /// Peak concurrently-leased logical bytes.
    pub high_water_bytes: u64,
    /// Leases served from the freelists.
    pub reuse_hits: u64,
    /// Leases that had to allocate.
    pub allocation_misses: u64,
}

/// End-to-end pooled pipeline throughput.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EndToEnd {
    /// Flat parameter count per step.
    pub params: usize,
    /// Subgroup size of the partition.
    pub subgroup: usize,
    /// Fixed update stride.
    pub stride: usize,
    /// Steps per timed round.
    pub iters: usize,
    /// Median throughput, params/s.
    pub pps: f64,
    /// Arena counters after the run.
    pub arena: ArenaStats,
}

/// The whole `BENCH_6.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelBenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Elements per kernel invocation.
    pub elements: usize,
    /// Timed rounds behind each median.
    pub rounds: usize,
    /// Adam update: scalar oracle vs [`optim_kernels::apply`] (`U_c`).
    pub u_c: KernelPair,
    /// FP32→FP16 downscale: scalar vs [`tensor_kernels::downscale`] (`D_c`).
    pub d_c: KernelPair,
    /// FP16→FP32 upscale: scalar vs [`tensor_kernels::upscale`].
    pub upscale: KernelPair,
    /// End-to-end [`hybrid_update_pooled`] throughput.
    pub hybrid_update: EndToEnd,
}

/// One warmup invocation, then the median of `rounds` timed rounds of
/// `iters` invocations each, in seconds per invocation.
fn median_secs<F: FnMut()>(mut f: F, iters: usize, rounds: usize) -> f64 {
    f();
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[rounds / 2]
}

/// Runs the whole suite.
///
/// # Panics
///
/// Panics if `elements`, `rounds`, or `iters` is zero.
pub fn run_kernel_bench(elements: usize, rounds: usize, iters: usize) -> KernelBenchReport {
    assert!(elements > 0 && rounds > 0 && iters > 0, "bench shape must be positive");
    let pps = |secs: f64| elements as f64 / secs;

    // U_c — one Adam step over the flat element range, both loops primed
    // with identical state so they do identical arithmetic.
    let grads: Vec<f32> = (0..elements).map(|i| ((i % 101) as f32 / 101.0) - 0.5).collect();
    let rule = UpdateRule::adam();
    let mut p = vec![0.5f32; elements];
    let mut m = vec![0.0f32; elements];
    let mut v = vec![0.0f32; elements];
    let scalar = median_secs(
        || optim_kernels::apply_reference(&rule, 1, 1e-3, &mut p, &grads, &mut m, &mut v),
        2,
        rounds,
    );
    let vectorized = median_secs(
        || optim_kernels::apply(&rule, 1, 1e-3, &mut p, &grads, &mut m, &mut v),
        2,
        rounds,
    );
    let u_c = KernelPair::new(pps(scalar), pps(vectorized));

    // D_c — FP32→FP16 downscale over sin() data (full exponent spread;
    // monotone ramps flatter branch predictors and overstate the scalar
    // path).
    let src: Vec<f32> = (0..elements).map(|i| (i as f32).sin()).collect();
    let mut dst = vec![F16::ZERO; elements];
    let scalar = median_secs(|| tensor_kernels::downscale_reference(&src, &mut dst), 4, rounds);
    let vectorized = median_secs(|| tensor_kernels::downscale(&src, &mut dst), 4, rounds);
    let d_c = KernelPair::new(pps(scalar), pps(vectorized));

    // Upscale — FP16→FP32 (the prefetch-side conversion).
    let src16 = dst.clone();
    let mut dst32 = vec![0.0f32; elements];
    let scalar = median_secs(|| tensor_kernels::upscale_reference(&src16, &mut dst32), 4, rounds);
    let vectorized = median_secs(|| tensor_kernels::upscale(&src16, &mut dst32), 4, rounds);
    let upscale = KernelPair::new(pps(scalar), pps(vectorized));

    // End to end — the pooled hybrid-update pipeline at the paper-default
    // stride 2 with one static resident, sharing a single arena across
    // all timed steps (the production configuration).
    let params = elements;
    let subgroup = (elements / 8).max(1);
    let subgroups = partition_into_subgroups(params, subgroup);
    let cfg = PipelineConfig {
        stride: StridePolicy::Fixed(2),
        static_residents: 1,
        fault_injection: None,
    };
    let pool = ArenaPool::new();
    let mut state = MixedPrecisionState::new(vec![0.5; params], UpdateRule::adam(), 1e-3);
    let secs = median_secs(
        || {
            // The shapes are pre-validated, so the pipeline cannot reject
            // the step; an error here is a bench bug worth crashing on.
            #[allow(clippy::unwrap_used)]
            hybrid_update_pooled(&mut state, &grads, &subgroups, cfg, None, &pool).unwrap();
        },
        iters,
        rounds,
    );
    let hybrid_update = EndToEnd {
        params,
        subgroup,
        stride: 2,
        iters,
        pps: params as f64 / secs,
        arena: ArenaStats {
            high_water_bytes: pool.high_water_bytes() as u64,
            reuse_hits: pool.reuse_hits(),
            allocation_misses: pool.allocation_misses(),
        },
    };

    KernelBenchReport {
        schema: SCHEMA.to_string(),
        elements,
        rounds,
        u_c,
        d_c,
        upscale,
        hybrid_update,
    }
}

/// Gates `new` against `baseline`: the end-to-end pooled throughput may
/// not regress by more than [`REGRESSION_TOLERANCE`].
///
/// # Errors
///
/// Returns a rendered explanation when the schema differs or the
/// end-to-end throughput falls below the tolerance band.
pub fn regression_gate(
    new: &KernelBenchReport,
    baseline: &KernelBenchReport,
) -> Result<(), String> {
    if new.schema != baseline.schema {
        return Err(format!("schema mismatch: {} vs baseline {}", new.schema, baseline.schema));
    }
    let floor = baseline.hybrid_update.pps * (1.0 - REGRESSION_TOLERANCE);
    if new.hybrid_update.pps < floor {
        return Err(format!(
            "end-to-end hybrid_update regressed: {:.3e} pps < floor {:.3e} (baseline {:.3e}, \
             tolerance {:.0}%)",
            new.hybrid_update.pps,
            floor,
            baseline.hybrid_update.pps,
            REGRESSION_TOLERANCE * 100.0
        ));
    }
    Ok(())
}

/// Renders the human-readable block (`kernel_bench` without `--json`).
pub fn render(report: &KernelBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "kernel bench ({} elements, median of {} rounds)\n",
        report.elements, report.rounds
    ));
    for (name, pair) in
        [("U_c adam", &report.u_c), ("D_c downscale", &report.d_c), ("upscale", &report.upscale)]
    {
        out.push_str(&format!(
            "  {name:<13} scalar {:>10.3e} pps   vectorized {:>10.3e} pps   {:>5.2}x\n",
            pair.scalar_pps, pair.vectorized_pps, pair.speedup
        ));
    }
    let e = &report.hybrid_update;
    out.push_str(&format!(
        "  hybrid_update {:.3e} pps ({} params, subgroup {}, stride {}, arena high-water {} B, \
         {} hits / {} misses)\n",
        e.pps,
        e.params,
        e.subgroup,
        e.stride,
        e.arena.high_water_bytes,
        e.arena.reuse_hits,
        e.arena.allocation_misses
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> KernelBenchReport {
        run_kernel_bench(1 << 12, 3, 2)
    }

    #[test]
    fn report_round_trips_and_carries_the_schema() {
        let report = tiny();
        assert_eq!(report.schema, SCHEMA);
        assert!(report.u_c.scalar_pps > 0.0 && report.d_c.vectorized_pps > 0.0);
        assert!(report.hybrid_update.pps > 0.0);
        assert!(report.hybrid_update.arena.reuse_hits > 0, "steps after the first reuse leases");
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: KernelBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, report.schema);
        assert_eq!(back.hybrid_update.params, report.hybrid_update.params);
    }

    #[test]
    fn gate_passes_against_itself_and_fails_against_an_inflated_baseline() {
        let report = tiny();
        assert!(regression_gate(&report, &report).is_ok());
        let mut inflated = report.clone();
        inflated.hybrid_update.pps *= 100.0;
        let err = regression_gate(&report, &inflated).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        let mut wrong_schema = report.clone();
        wrong_schema.schema = "dos-bench/kernels-v0".to_string();
        assert!(regression_gate(&report, &wrong_schema).is_err());
    }

    #[test]
    fn render_mentions_every_throughput() {
        let block = render(&tiny());
        for needle in ["U_c adam", "D_c downscale", "upscale", "hybrid_update", "high-water"] {
            assert!(block.contains(needle), "missing {needle}:\n{block}");
        }
    }
}
