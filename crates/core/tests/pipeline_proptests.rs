//! Property tests of the functional interleaved pipeline: for *any*
//! gradients, subgroup size, stride, and resident set, the threaded
//! hybrid update is bitwise identical to the sequential baseline.

use dos_core::{hybrid_update, PipelineConfig, StridePolicy};
use dos_optim::{MixedPrecisionState, UpdateRule};
use dos_tensor::F16;
use dos_zero::partition_into_subgroups;
use proptest::prelude::*;

fn rules() -> impl Strategy<Value = UpdateRule> {
    prop_oneof![
        Just(UpdateRule::adam()),
        Just(UpdateRule::adamw(0.05)),
        Just(UpdateRule::adagrad()),
        Just(UpdateRule::rmsprop()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hybrid_is_bitwise_equal_to_sequential(
        n in 1usize..600,
        sg_size in 1usize..100,
        stride in 1usize..8,
        residents in 0usize..4,
        lr in 1e-4f32..0.1,
        rule in rules(),
        seed in any::<u32>(),
    ) {
        let init: Vec<f32> =
            (0..n).map(|i| (((i as u32).wrapping_mul(seed) % 1000) as f32 / 1000.0) - 0.5).collect();
        let grads: Vec<f32> =
            (0..n).map(|i| (((i as u32).wrapping_add(seed) % 997) as f32 / 997.0) - 0.5).collect();
        let subgroups = partition_into_subgroups(n, sg_size);

        let mut reference = MixedPrecisionState::new(init.clone(), rule, lr);
        reference.full_step(&grads);
        let ref_fp16: Vec<F16> = reference.downscale_range(0..n);

        let mut hybrid = MixedPrecisionState::new(init, rule, lr);
        let cfg = PipelineConfig {
            stride: StridePolicy::Fixed(stride),
            static_residents: residents.min(subgroups.len()),
            ..PipelineConfig::default()
        };
        let report = hybrid_update(&mut hybrid, &grads, &subgroups, cfg).unwrap();

        prop_assert_eq!(reference.params(), hybrid.params());
        prop_assert_eq!(reference.momentum(), hybrid.momentum());
        prop_assert_eq!(reference.variance(), hybrid.variance());
        prop_assert_eq!(report.fp16_params, ref_fp16);
        prop_assert_eq!(
            report.device_subgroups + report.cpu_subgroups,
            subgroups.len()
        );
    }

    /// Multiple consecutive hybrid steps with changing strides track the
    /// sequential trajectory exactly.
    #[test]
    fn multi_step_stride_changes_are_safe(
        n in 8usize..200,
        sg_size in 2usize..40,
        steps in 1usize..5,
    ) {
        let init: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin()).collect();
        let subgroups = partition_into_subgroups(n, sg_size);
        let mut seq = MixedPrecisionState::new(init.clone(), UpdateRule::adam(), 0.01);
        let mut hyb = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
        for s in 0..steps {
            let grads: Vec<f32> = (0..n).map(|i| ((i + s) as f32 * 0.7).cos() * 0.1).collect();
            seq.full_step(&grads);
            let cfg = PipelineConfig {
                stride: StridePolicy::Fixed(1 + (s % 4)),
                static_residents: s % 3,
                ..PipelineConfig::default()
            };
            hybrid_update(&mut hyb, &grads, &subgroups, cfg).unwrap();
        }
        prop_assert_eq!(seq.params(), hyb.params());
    }
}
