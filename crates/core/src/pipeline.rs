//! Functional interleaved-update pipeline: real threads, real numerics.
//!
//! The simulator (`schedulers`) reproduces the paper's *timing*; this module
//! reproduces its *mechanism* with real concurrency: a device worker thread
//! ("the GPU"), DMA channels carrying subgroup state back and forth, and the
//! calling thread playing the CPU — exactly Algorithm 1's structure. The
//! correctness claim under test is §4.1's: out-of-order, cross-device
//! subgroup updates produce results identical to a sequential CPU update.
//!
//! Buffers move through `crossbeam` channels by value, mirroring the fact
//! that a subgroup's (p, m, v) is staged on exactly one device at a time.
//! Channels and threads come from the [`crate::sync`] facade: real
//! crossbeam/std primitives in production, schedule-controlled twins under
//! `dos-check`'s deterministic exploration.

use crate::arena::{ArenaPool, PooledF16, PooledF32};
use crate::sync;

use dos_optim::MixedPrecisionState;
use dos_telemetry::Tracer;
use dos_tensor::{kernels, F16};
use dos_zero::SubgroupSpec;

use crate::schedulers::StridePolicy;

/// Track name for the calling (CPU) thread's spans.
const CPU_TRACK: &str = "cpu";
/// Track name for the spawned device worker's spans.
const DEVICE_TRACK: &str = "device-worker";

/// Typed precondition failures of the hybrid pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// `grads.len()` does not match the optimizer state's flat length.
    GradientLengthMismatch {
        /// The state's flat parameter count.
        expected: usize,
        /// The gradient slice's length.
        got: usize,
    },
    /// The subgroup list does not tile `0..state.len()` contiguously.
    SubgroupTiling {
        /// Human-readable description of the tiling violation.
        detail: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::GradientLengthMismatch { expected, got } => {
                write!(f, "gradient length mismatch: state holds {expected} params, got {got}")
            }
            PipelineError::SubgroupTiling { detail } => {
                write!(f, "invalid subgroup tiling: {detail}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// An injected device-worker fault, for chaos campaigns. The fault fires
/// after the worker has fully processed the given number of jobs, so the
/// earlier subgroups' results are already on their way back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceFault {
    /// The worker thread panics (a crashed CUDA context). The panic is
    /// contained by the pipeline and surfaces as a degradation, never as a
    /// caller-visible panic.
    PanicAfter(usize),
    /// The worker returns silently, disconnecting both DMA channels (a hung
    /// device that stops answering).
    DisconnectAfter(usize),
}

/// Configuration of the functional hybrid pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Update stride: every k-th subgroup goes to the device worker
    /// (`Fixed(k)`); `CpuOnly` keeps everything on the calling thread;
    /// `Auto` behaves as `Fixed(2)`, the paper's measured optimum.
    pub stride: StridePolicy,
    /// Number of trailing subgroups treated as static device residents
    /// (updated on the device without staging transfers).
    pub static_residents: usize,
    /// Optional injected device fault (chaos testing). `None` in
    /// production use.
    pub fault_injection: Option<DeviceFault>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { stride: StridePolicy::Auto, static_residents: 0, fault_injection: None }
    }
}

/// How a hybrid update degraded when the device worker was lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineDegradation {
    /// What happened to the device worker (panic message or disconnect).
    pub reason: String,
    /// Subgroups that were shipped to the device but never came back, and
    /// were re-run on the CPU from their still-unmodified host state.
    pub lost_jobs_retried_on_cpu: usize,
}

/// Result of a hybrid update step.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Downscaled FP16 parameters for the whole flat space (what the GPU
    /// trains the next iteration with).
    pub fp16_params: Vec<F16>,
    /// How many subgroups were updated on the device worker.
    pub device_subgroups: usize,
    /// How many subgroups were updated on the calling (CPU) thread
    /// (including any lost device jobs re-run there).
    pub cpu_subgroups: usize,
    /// Set when the device worker was lost mid-step and the pipeline
    /// degraded the remainder to the CPU-only path. The step's numerics are
    /// unaffected: every subgroup is still updated exactly once.
    pub degraded: Option<PipelineDegradation>,
}

/// One staged subgroup travelling to the device worker. The buffers are
/// arena leases ("pinned" staging memory), not fresh allocations; they
/// return to the pool wherever the subgroup is dropped.
struct StagedSubgroup {
    sg: SubgroupSpec,
    p: PooledF32,
    m: PooledF32,
    v: PooledF32,
    g: PooledF32,
}

/// An updated subgroup travelling back, carrying the same leased buffers.
struct UpdatedSubgroup {
    sg: SubgroupSpec,
    p: PooledF32,
    m: PooledF32,
    v: PooledF32,
    p16: PooledF16,
}

/// Runs one interleaved hybrid optimizer step over `state` with `grads`,
/// scheduling subgroups across the calling thread and a spawned device
/// worker per `cfg`.
///
/// Equivalent to `state.full_step(grads)` followed by a full downscale —
/// bitwise, for any stride and resident set (verified by the crate's
/// property tests) — but executed with the paper's interleaved concurrency.
///
/// The pipeline is panic-safe: if the device worker dies mid-step (a real
/// panic or a channel disconnect, injectable via
/// [`PipelineConfig::fault_injection`]), the remaining subgroups degrade to
/// the CPU-only path, any shipped-but-lost jobs are re-run on the CPU from
/// their still-unmodified host state, and the step completes byte-exact
/// with [`PipelineReport::degraded`] set.
///
/// # Errors
///
/// Returns [`PipelineError`] if `grads.len() != state.len()` or if
/// `subgroups` do not tile `0..state.len()` contiguously. `state` is not
/// modified on error.
pub fn hybrid_update(
    state: &mut MixedPrecisionState,
    grads: &[f32],
    subgroups: &[SubgroupSpec],
    cfg: PipelineConfig,
) -> Result<PipelineReport, PipelineError> {
    hybrid_update_inner(state, grads, subgroups, cfg, None, None)
}

/// [`hybrid_update`] with wall-clock tracing: every pipeline stage emits a
/// real-time span into `tracer` — `prefetch:sg{id}` (H2D staging) /
/// `update:sg{id}` / `downscale:sg{id}` (FP32→FP16, `D_c`) /
/// `flush:sg{id}` (D2H write-back) on the `"cpu"` track, and
/// `update:sg{id}` / `flush:sg{id}` (on-device downscale + send) on the
/// `"device-worker"` track — plus byte counters in the tracer's metrics
/// registry. Numerics are identical to the untraced path (tracing only
/// observes).
///
/// # Errors
///
/// Fails under the same conditions as [`hybrid_update`].
pub fn hybrid_update_traced(
    state: &mut MixedPrecisionState,
    grads: &[f32],
    subgroups: &[SubgroupSpec],
    cfg: PipelineConfig,
    tracer: &Tracer,
) -> Result<PipelineReport, PipelineError> {
    hybrid_update_inner(state, grads, subgroups, cfg, Some(tracer), None)
}

/// [`hybrid_update_traced`] with a caller-owned [`ArenaPool`] for the
/// staging buffers, so steady-state steps recycle the same leases instead
/// of allocating per subgroup. Trainers hold one pool across iterations;
/// the pool's high-water gauge is what the resident-sizing policy observes.
///
/// Pass `tracer: None` for an untraced pooled step. Numerics are identical
/// to [`hybrid_update`] either way.
///
/// # Errors
///
/// Fails under the same conditions as [`hybrid_update`].
pub fn hybrid_update_pooled(
    state: &mut MixedPrecisionState,
    grads: &[f32],
    subgroups: &[SubgroupSpec],
    cfg: PipelineConfig,
    tracer: Option<&Tracer>,
    pool: &ArenaPool,
) -> Result<PipelineReport, PipelineError> {
    hybrid_update_inner(state, grads, subgroups, cfg, tracer, Some(pool))
}

/// Renders the payload of a worker panic for the degradation report.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn hybrid_update_inner(
    state: &mut MixedPrecisionState,
    grads: &[f32],
    subgroups: &[SubgroupSpec],
    cfg: PipelineConfig,
    tracer: Option<&Tracer>,
    pool: Option<&ArenaPool>,
) -> Result<PipelineReport, PipelineError> {
    if grads.len() != state.len() {
        return Err(PipelineError::GradientLengthMismatch {
            expected: state.len(),
            got: grads.len(),
        });
    }
    let mut cursor = 0;
    for sg in subgroups {
        if sg.start != cursor {
            return Err(PipelineError::SubgroupTiling {
                detail: format!(
                    "subgroups must tile the space contiguously: subgroup {} starts at {} but \
                     the previous one ended at {cursor}",
                    sg.id, sg.start
                ),
            });
        }
        cursor = sg.end;
    }
    if cursor != state.len() {
        return Err(PipelineError::SubgroupTiling {
            detail: format!(
                "subgroups must cover the space: tiled 0..{cursor} but the state holds {} params",
                state.len()
            ),
        });
    }

    let stride = match cfg.stride {
        // The controller-driven trainer rewrites `Adaptive` to `Fixed(k)`
        // every iteration; reaching the pipeline unresolved, it falls back
        // to the same paper-default seed as `Auto`.
        StridePolicy::Auto | StridePolicy::Adaptive => Some(2),
        StridePolicy::Fixed(k) => Some(k.max(1)),
        StridePolicy::CpuOnly => None,
    };
    let n = subgroups.len();
    let n_static = cfg.static_residents.min(n);
    let dynamic = &subgroups[..n - n_static];
    let residents = &subgroups[n - n_static..];

    state.begin_step();
    let step = state.step_count();
    let rule = state.rule();
    let lr = state.lr();

    // DMA channels: H2D staging in, D2H updated state out.
    let (h2d_tx, h2d_rx) = sync::unbounded::<StagedSubgroup>();
    let (d2h_tx, d2h_rx) = sync::unbounded::<UpdatedSubgroup>();

    let mut device_count = 0usize;
    let mut cpu_count = 0usize;
    let mut lost_retried = 0usize;
    // Shipped subgroups whose results have not been written back yet. If
    // the worker dies, whatever is left here re-runs on the CPU: write-back
    // never happened, so the host state for those ranges is untouched and a
    // CPU update from it is byte-exact.
    let mut pending: Vec<SubgroupSpec> = Vec::new();
    let mut worker_lost: Option<String> = None;
    let mut fp16 = vec![F16::ZERO; state.len()];
    let fault = cfg.fault_injection;
    // Staging buffers come from an arena: the caller's long-lived pool when
    // provided, otherwise a step-local one (still zero-copy *within* the
    // step once the first stride's buffers cycle back).
    let local_pool;
    let pool = match pool {
        Some(p) => p,
        None => {
            local_pool = ArenaPool::new();
            &local_pool
        }
    };
    let worker_pool = pool.clone();

    sync::scope(|scope| {
        // The device worker: applies the same element-wise rule, then
        // produces the FP16 copy on-device (the D2D `.half()` of Alg. 1).
        let worker = scope.spawn(|| {
            let mut processed = 0usize;
            while let Ok(mut job) = h2d_rx.recv() {
                match fault {
                    Some(DeviceFault::PanicAfter(n)) if processed == n => {
                        panic!("injected device fault after {n} jobs")
                    }
                    Some(DeviceFault::DisconnectAfter(n)) if processed == n => return,
                    _ => {}
                }
                let label = format!("update:sg{}", job.sg.id);
                {
                    let mut guard =
                        tracer.map(|t| t.span_on(DEVICE_TRACK, "gpu", &label, "update"));
                    if let Some(g) = guard.as_mut() {
                        g.set_work(job.sg.len() as f64);
                    }
                    rule.apply(step, lr, &mut job.p, &job.g, &mut job.m, &mut job.v);
                }
                let flush = format!("flush:sg{}", job.sg.id);
                let _guard = tracer.map(|t| t.span_on(DEVICE_TRACK, "gpu", &flush, "update"));
                let p16 = worker_pool.lease_f16_downscaled(&job.p);
                let echo = UpdatedSubgroup { sg: job.sg, p: job.p, m: job.m, v: job.v, p16 };
                if d2h_tx.send(echo).is_err() {
                    return; // main thread is gone; nothing left to do
                }
                processed += 1;
            }
            drop(d2h_tx);
        });

        // The CPU side: walk dynamic subgroups, shipping every k-th to the
        // device (prefetch = send), updating the rest locally and
        // downscaling them.
        let prefetch = |state: &MixedPrecisionState, sg: &SubgroupSpec| {
            let label = format!("prefetch:sg{}", sg.id);
            let mut guard = tracer.map(|t| t.span_on(CPU_TRACK, "pcie.h2d", &label, "update"));
            let (p, m, v) = state.snapshot_range(sg.range());
            let bytes = 4 * (3 * sg.len() + sg.len()); // p, m, v + grads, f32
            if let Some(g) = guard.as_mut() {
                g.set_work(bytes as f64);
            }
            if let Some(t) = tracer {
                t.metrics().inc_counter("pipeline.h2d.bytes", bytes as u64);
            }
            StagedSubgroup {
                sg: *sg,
                p: pool.lease_f32_copy(p),
                m: pool.lease_f32_copy(m),
                v: pool.lease_f32_copy(v),
                g: pool.lease_f32_copy(&grads[sg.range()]),
            }
        };

        // Local (CPU) update of one subgroup; also the degraded fallback
        // path when the device worker is gone. The FP32→FP16 downscale is a
        // distinct pipeline stage (`D_c` in Eq. 1), so it gets its own span
        // — folding it into the update span would inflate the tuner's `U_c`
        // estimate and leave `D_c` unobservable.
        let cpu_apply =
            |state: &mut MixedPrecisionState, fp16: &mut Vec<F16>, sg: &SubgroupSpec| {
                {
                    let label = format!("update:sg{}", sg.id);
                    let mut guard = tracer.map(|t| t.span_on(CPU_TRACK, "cpu", &label, "update"));
                    if let Some(g) = guard.as_mut() {
                        g.set_work(sg.len() as f64);
                    }
                    state.update_range(sg.range(), &grads[sg.range()]);
                }
                let label = format!("downscale:sg{}", sg.id);
                let mut guard = tracer.map(|t| t.span_on(CPU_TRACK, "cpu", &label, "update"));
                if let Some(g) = guard.as_mut() {
                    g.set_work(sg.len() as f64);
                }
                kernels::downscale(&state.params()[sg.range()], &mut fp16[sg.range()]);
            };

        for (i, sg) in dynamic.iter().enumerate() {
            let on_device =
                worker_lost.is_none() && stride.is_some_and(|k| (i + 1) % k == 0);
            if on_device {
                match h2d_tx.send(prefetch(state, sg)) {
                    Ok(()) => {
                        pending.push(*sg);
                        device_count += 1;
                    }
                    Err(_) => {
                        // Worker hung up: this job never left the host.
                        worker_lost = Some("device worker disconnected".to_string());
                        cpu_apply(state, &mut fp16, sg);
                        cpu_count += 1;
                        lost_retried += 1;
                    }
                }
            } else {
                cpu_apply(state, &mut fp16, sg);
                cpu_count += 1;
            }
        }
        // Static residents: updated on the device without staging; here the
        // state is conceptually already device-resident, so ship them too —
        // unless the device is gone, in which case they fall back to the
        // CPU like everything else.
        for sg in residents {
            if worker_lost.is_none() {
                match h2d_tx.send(prefetch(state, sg)) {
                    Ok(()) => {
                        pending.push(*sg);
                        device_count += 1;
                        continue;
                    }
                    Err(_) => {
                        worker_lost = Some("device worker disconnected".to_string());
                        lost_retried += 1;
                        cpu_apply(state, &mut fp16, sg);
                        cpu_count += 1;
                        continue;
                    }
                }
            }
            cpu_apply(state, &mut fp16, sg);
            cpu_count += 1;
        }
        drop(h2d_tx); // signal the worker to finish

        // Drain the D2H channel: write back out-of-order arrivals. Ends
        // when the worker drops its sender — normal completion, early
        // return, or unwinding alike.
        while let Ok(upd) = d2h_rx.recv() {
            let label = format!("flush:sg{}", upd.sg.id);
            let mut guard = tracer.map(|t| t.span_on(CPU_TRACK, "pcie.d2h", &label, "update"));
            let bytes = 4 * 3 * upd.sg.len() + 2 * upd.sg.len(); // f32 state + f16 params
            if let Some(g) = guard.as_mut() {
                g.set_work(bytes as f64);
            }
            if let Some(t) = tracer {
                t.metrics().inc_counter("pipeline.d2h.bytes", bytes as u64);
            }
            pending.retain(|p| p.id != upd.sg.id);
            state.write_back_range(upd.sg.range(), &upd.p, &upd.m, &upd.v);
            fp16[upd.sg.range()].copy_from_slice(&upd.p16);
        }

        // Contain a worker panic instead of letting the scope re-raise it.
        if let Err(payload) = worker.join() {
            worker_lost = Some(format!("device worker panicked: {}", panic_message(payload)));
        } else if !pending.is_empty() && worker_lost.is_none() {
            worker_lost = Some("device worker disconnected".to_string());
        }

        // Re-run shipped-but-lost jobs on the CPU. Their host ranges were
        // never written back, so the result is byte-identical to what the
        // device would have produced.
        for sg in std::mem::take(&mut pending) {
            cpu_apply(state, &mut fp16, &sg);
            device_count -= 1;
            cpu_count += 1;
            lost_retried += 1;
        }
    });

    if let Some(t) = tracer {
        t.metrics().inc_counter("pipeline.device_subgroups", device_count as u64);
        t.metrics().inc_counter("pipeline.cpu_subgroups", cpu_count as u64);
        if worker_lost.is_some() {
            t.metrics().inc_counter("pipeline.degraded_steps", 1);
            // A `fault:` instant triggers the tracer's automatic
            // flight-recorder dump, shipping the last-N-events context of
            // the degradation alongside the counters.
            t.instant_at("faults", "fault:device-worker", "fault", t.now());
        }
    }

    Ok(PipelineReport {
        fp16_params: fp16,
        device_subgroups: device_count,
        cpu_subgroups: cpu_count,
        degraded: worker_lost
            .map(|reason| PipelineDegradation { reason, lost_jobs_retried_on_cpu: lost_retried }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_optim::UpdateRule;
    use dos_zero::partition_into_subgroups;

    fn setup(n: usize) -> (MixedPrecisionState, Vec<f32>) {
        let init: Vec<f32> = (0..n).map(|i| ((i * 13 + 5) % 31) as f32 / 31.0).collect();
        let grads: Vec<f32> = (0..n).map(|i| ((i * 7 + 1) % 29) as f32 / 29.0 - 0.5).collect();
        (MixedPrecisionState::new(init, UpdateRule::adam(), 0.01), grads)
    }

    fn reference(n: usize) -> (Vec<f32>, Vec<F16>) {
        let (mut state, grads) = setup(n);
        state.full_step(&grads);
        let p16 = state.downscale_range(0..n);
        (state.params().to_vec(), p16)
    }

    #[test]
    fn hybrid_matches_sequential_bitwise() {
        let n = 1000;
        let (expected_p, expected_16) = reference(n);
        let (mut state, grads) = setup(n);
        let sgs = partition_into_subgroups(n, 64);
        let report = hybrid_update(&mut state, &grads, &sgs, PipelineConfig::default()).unwrap();
        assert_eq!(state.params(), &expected_p[..]);
        assert_eq!(report.fp16_params, expected_16);
        assert!(report.device_subgroups > 0);
        assert!(report.cpu_subgroups > 0);
        assert!(report.degraded.is_none());
    }

    #[test]
    fn all_strides_agree() {
        let n = 500;
        let (expected_p, _) = reference(n);
        for stride in [
            StridePolicy::CpuOnly,
            StridePolicy::Fixed(1),
            StridePolicy::Fixed(2),
            StridePolicy::Fixed(3),
            StridePolicy::Fixed(7),
        ] {
            let (mut state, grads) = setup(n);
            let sgs = partition_into_subgroups(n, 33);
            let cfg = PipelineConfig { stride, ..PipelineConfig::default() };
            let report = hybrid_update(&mut state, &grads, &sgs, cfg).unwrap();
            assert_eq!(state.params(), &expected_p[..], "stride {stride:?} diverged");
            if matches!(stride, StridePolicy::CpuOnly) {
                assert_eq!(report.device_subgroups, 0);
            }
            if matches!(stride, StridePolicy::Fixed(1)) {
                assert_eq!(report.cpu_subgroups, 0);
            }
        }
    }

    #[test]
    fn static_residents_update_on_device() {
        let n = 300;
        let (expected_p, _) = reference(n);
        let (mut state, grads) = setup(n);
        let sgs = partition_into_subgroups(n, 50);
        let cfg = PipelineConfig {
            stride: StridePolicy::CpuOnly,
            static_residents: 2,
            ..PipelineConfig::default()
        };
        let report = hybrid_update(&mut state, &grads, &sgs, cfg).unwrap();
        assert_eq!(report.device_subgroups, 2);
        assert_eq!(report.cpu_subgroups, 4);
        assert_eq!(state.params(), &expected_p[..]);
    }

    #[test]
    fn repeated_steps_track_sequential_trajectory() {
        let n = 200;
        let (mut seq, grads) = setup(n);
        let (mut hyb, _) = setup(n);
        let sgs = partition_into_subgroups(n, 17);
        for step in 0..5 {
            let g: Vec<f32> = grads.iter().map(|x| x * (step as f32 + 1.0)).collect();
            seq.full_step(&g);
            hybrid_update(&mut hyb, &g, &sgs, PipelineConfig::default()).unwrap();
        }
        assert_eq!(seq.params(), hyb.params());
        assert_eq!(seq.momentum(), hyb.momentum());
        assert_eq!(seq.variance(), hyb.variance());
    }

    #[test]
    fn traced_update_is_bitwise_identical_and_emits_both_tracks() {
        let n = 1000;
        let (expected_p, expected_16) = reference(n);
        let (mut state, grads) = setup(n);
        let sgs = partition_into_subgroups(n, 64);
        let tracer = Tracer::new();
        let report =
            hybrid_update_traced(&mut state, &grads, &sgs, PipelineConfig::default(), &tracer)
                .unwrap();
        assert_eq!(state.params(), &expected_p[..]);
        assert_eq!(report.fp16_params, expected_16);

        let events = tracer.events();
        let on = |track: &str, prefix: &str| {
            events.iter().filter(|e| e.track == track && e.name.starts_with(prefix)).count()
        };
        // CPU track: prefetch per shipped subgroup, update + downscale per
        // local one, flush per write-back.
        assert_eq!(on(super::CPU_TRACK, "prefetch:sg"), report.device_subgroups);
        assert_eq!(on(super::CPU_TRACK, "update:sg"), report.cpu_subgroups);
        assert_eq!(on(super::CPU_TRACK, "downscale:sg"), report.cpu_subgroups);
        assert_eq!(on(super::CPU_TRACK, "flush:sg"), report.device_subgroups);
        // Device-worker track: update + flush per shipped subgroup.
        assert_eq!(on(super::DEVICE_TRACK, "update:sg"), report.device_subgroups);
        assert_eq!(on(super::DEVICE_TRACK, "flush:sg"), report.device_subgroups);
        // All wall-clock spans carry the update phase and real durations.
        assert!(events.iter().all(|e| e.phase == "update" && e.dur >= 0.0));
        // Byte counters rode along in the metrics registry.
        assert!(tracer.metrics().counter("pipeline.h2d.bytes") > 0);
        assert!(tracer.metrics().counter("pipeline.d2h.bytes") > 0);
        assert_eq!(
            tracer.metrics().counter("pipeline.device_subgroups"),
            report.device_subgroups as u64
        );
    }

    #[test]
    fn incomplete_subgroups_rejected_with_typed_error() {
        let (mut state, grads) = setup(100);
        let before = state.params().to_vec();
        let sgs = partition_into_subgroups(90, 30);
        let err = hybrid_update(&mut state, &grads, &sgs, PipelineConfig::default()).unwrap_err();
        match &err {
            PipelineError::SubgroupTiling { detail } => {
                assert!(detail.contains("cover the space"), "unexpected detail: {detail}")
            }
            other => panic!("expected SubgroupTiling, got {other:?}"),
        }
        // Failed preconditions leave the state untouched.
        assert_eq!(state.params(), &before[..]);
    }

    #[test]
    fn mismatched_gradients_rejected_with_typed_error() {
        let (mut state, _) = setup(100);
        let sgs = partition_into_subgroups(100, 25);
        let short = vec![0.0f32; 60];
        let err = hybrid_update(&mut state, &short, &sgs, PipelineConfig::default()).unwrap_err();
        assert_eq!(err, PipelineError::GradientLengthMismatch { expected: 100, got: 60 });
    }

    /// Every kill point of both fault kinds must leave the step byte-exact
    /// with the sequential reference and report the degradation honestly.
    #[test]
    fn worker_loss_degrades_to_cpu_byte_exact() {
        let n = 600;
        let (expected_p, expected_16) = reference(n);
        let sgs = partition_into_subgroups(n, 40); // 15 subgroups, ~7 shipped
        for kill_after in [0usize, 1, 3, 6] {
            for fault in
                [DeviceFault::PanicAfter(kill_after), DeviceFault::DisconnectAfter(kill_after)]
            {
                let (mut state, grads) = setup(n);
                let cfg = PipelineConfig { fault_injection: Some(fault), ..Default::default() };
                let report = hybrid_update(&mut state, &grads, &sgs, cfg).unwrap();
                assert_eq!(state.params(), &expected_p[..], "{fault:?} diverged");
                assert_eq!(report.fp16_params, expected_16, "{fault:?} fp16 diverged");
                let deg = report.degraded.expect("worker loss must be reported");
                assert!(deg.lost_jobs_retried_on_cpu > 0, "{fault:?} lost nothing?");
                if matches!(fault, DeviceFault::PanicAfter(_)) {
                    assert!(deg.reason.contains("panicked"), "reason: {}", deg.reason);
                }
                // Jobs completed before the kill point stay on the device
                // side of the ledger; everything still sums to the tiling.
                assert_eq!(report.device_subgroups, kill_after);
                assert_eq!(report.device_subgroups + report.cpu_subgroups, sgs.len());
            }
        }
    }

    #[test]
    fn worker_loss_with_residents_still_matches_reference() {
        let n = 400;
        let (expected_p, _) = reference(n);
        let (mut state, grads) = setup(n);
        let sgs = partition_into_subgroups(n, 40);
        let cfg = PipelineConfig {
            stride: StridePolicy::Fixed(2),
            static_residents: 3,
            fault_injection: Some(DeviceFault::DisconnectAfter(1)),
        };
        let report = hybrid_update(&mut state, &grads, &sgs, cfg).unwrap();
        assert_eq!(state.params(), &expected_p[..]);
        assert!(report.degraded.is_some());
        assert_eq!(report.device_subgroups + report.cpu_subgroups, sgs.len());
    }

    #[test]
    fn degraded_traced_step_keeps_span_accounting_consistent() {
        let n = 500;
        let (mut state, grads) = setup(n);
        let sgs = partition_into_subgroups(n, 50);
        let tracer = Tracer::new();
        let cfg = PipelineConfig {
            fault_injection: Some(DeviceFault::PanicAfter(2)),
            ..Default::default()
        };
        let report = hybrid_update_traced(&mut state, &grads, &sgs, cfg, &tracer).unwrap();
        assert!(report.degraded.is_some());
        let events = tracer.events();
        let on = |track: &str, prefix: &str| {
            events.iter().filter(|e| e.track == track && e.name.starts_with(prefix)).count()
        };
        // Write-backs happened only for jobs the worker finished; CPU
        // updates cover the rest (locals + lost retries).
        assert_eq!(on(super::CPU_TRACK, "flush:sg"), report.device_subgroups);
        assert_eq!(on(super::CPU_TRACK, "update:sg"), report.cpu_subgroups);
        assert_eq!(on(super::CPU_TRACK, "downscale:sg"), report.cpu_subgroups);
        assert_eq!(tracer.metrics().counter("pipeline.degraded_steps"), 1);
    }

    #[test]
    fn pooled_steps_recycle_buffers_and_stay_bitwise_exact() {
        let n = 1000;
        let (mut seq, grads) = setup(n);
        let (mut hyb, _) = setup(n);
        let sgs = partition_into_subgroups(n, 64);
        let pool = crate::ArenaPool::new();
        for _ in 0..4 {
            seq.full_step(&grads);
            hybrid_update_pooled(&mut hyb, &grads, &sgs, PipelineConfig::default(), None, &pool)
                .unwrap();
        }
        assert_eq!(seq.params(), hyb.params());
        assert_eq!(seq.momentum(), hyb.momentum());
        assert_eq!(seq.variance(), hyb.variance());
        // Every lease came back: the pool owns all buffers again.
        assert_eq!(pool.in_use_bytes(), 0);
        // Steady state recycles: later steps hit the free lists instead of
        // allocating (first step can only miss).
        assert!(
            pool.reuse_hits() > pool.allocation_misses(),
            "hits {} vs misses {}",
            pool.reuse_hits(),
            pool.allocation_misses()
        );
        assert!(pool.high_water_bytes() > 0);
    }

    #[test]
    fn pooled_degraded_step_returns_all_leases() {
        let n = 600;
        let (expected_p, _) = reference(n);
        let (mut state, grads) = setup(n);
        let sgs = partition_into_subgroups(n, 40);
        let pool = crate::ArenaPool::new();
        let cfg = PipelineConfig {
            fault_injection: Some(DeviceFault::PanicAfter(2)),
            ..Default::default()
        };
        let report = hybrid_update_pooled(&mut state, &grads, &sgs, cfg, None, &pool).unwrap();
        assert!(report.degraded.is_some());
        assert_eq!(state.params(), &expected_p[..]);
        assert_eq!(pool.in_use_bytes(), 0, "worker loss must not leak leases");
    }
}

#[cfg(all(test, feature = "check"))]
mod check_tests {
    use crate::sync::sched::{run_with_scheduler, PendingOp, Pick, Tid};
    use crate::{hybrid_update, PipelineConfig};
    use dos_optim::{MixedPrecisionState, UpdateRule};
    use dos_zero::partition_into_subgroups;

    #[test]
    fn hybrid_update_matches_sequential_under_default_and_reversed_schedules() {
        let n = 48;
        let init: Vec<f32> = (0..n).map(|i| ((i * 13 + 5) % 31) as f32 / 31.0).collect();
        let grads: Vec<f32> = (0..n).map(|i| ((i * 7 + 1) % 29) as f32 / 29.0 - 0.5).collect();
        let mut seq = MixedPrecisionState::new(init.clone(), UpdateRule::adam(), 0.01);
        seq.full_step(&grads);
        let expected = seq.params().to_vec();

        for reversed in [false, true] {
            let init = init.clone();
            let grads = grads.clone();
            let outcome = run_with_scheduler(
                move || {
                    let mut state = MixedPrecisionState::new(init, UpdateRule::adam(), 0.01);
                    let sgs = partition_into_subgroups(n, 8);
                    let report =
                        hybrid_update(&mut state, &grads, &sgs, PipelineConfig::default())
                            .unwrap();
                    (state.params().to_vec(), report.device_subgroups)
                },
                |_, enabled: &[(Tid, PendingOp)]| {
                    let idx = if reversed { enabled.len() - 1 } else { 0 };
                    Pick::Run(enabled[idx].0)
                },
                100_000,
            );
            assert!(outcome.error.is_none(), "teardown: {:?}", outcome.error);
            let (params, on_device) = outcome.result.unwrap();
            assert_eq!(params, expected, "reversed={reversed} diverged");
            assert!(on_device > 0);
        }
    }
}
