//! Functional interleaved-update pipeline: real threads, real numerics.
//!
//! The simulator (`schedulers`) reproduces the paper's *timing*; this module
//! reproduces its *mechanism* with real concurrency: a device worker thread
//! ("the GPU"), DMA channels carrying subgroup state back and forth, and the
//! calling thread playing the CPU — exactly Algorithm 1's structure. The
//! correctness claim under test is §4.1's: out-of-order, cross-device
//! subgroup updates produce results identical to a sequential CPU update.
//!
//! Buffers move through `crossbeam` channels by value, mirroring the fact
//! that a subgroup's (p, m, v) is staged on exactly one device at a time.

use crossbeam::channel;

use dos_optim::MixedPrecisionState;
use dos_telemetry::Tracer;
use dos_tensor::F16;
use dos_zero::SubgroupSpec;

use crate::schedulers::StridePolicy;

/// Track name for the calling (CPU) thread's spans.
const CPU_TRACK: &str = "cpu";
/// Track name for the spawned device worker's spans.
const DEVICE_TRACK: &str = "device-worker";

/// Configuration of the functional hybrid pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Update stride: every k-th subgroup goes to the device worker
    /// (`Fixed(k)`); `CpuOnly` keeps everything on the calling thread;
    /// `Auto` behaves as `Fixed(2)`, the paper's measured optimum.
    pub stride: StridePolicy,
    /// Number of trailing subgroups treated as static device residents
    /// (updated on the device without staging transfers).
    pub static_residents: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { stride: StridePolicy::Auto, static_residents: 0 }
    }
}

/// Result of a hybrid update step.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Downscaled FP16 parameters for the whole flat space (what the GPU
    /// trains the next iteration with).
    pub fp16_params: Vec<F16>,
    /// How many subgroups were updated on the device worker.
    pub device_subgroups: usize,
    /// How many subgroups were updated on the calling (CPU) thread.
    pub cpu_subgroups: usize,
}

/// One staged subgroup travelling to the device worker.
struct StagedSubgroup {
    sg: SubgroupSpec,
    p: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    g: Vec<f32>,
}

/// An updated subgroup travelling back.
struct UpdatedSubgroup {
    sg: SubgroupSpec,
    p: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    p16: Vec<F16>,
}

/// Runs one interleaved hybrid optimizer step over `state` with `grads`,
/// scheduling subgroups across the calling thread and a spawned device
/// worker per `cfg`.
///
/// Equivalent to `state.full_step(grads)` followed by a full downscale —
/// bitwise, for any stride and resident set (verified by the crate's
/// property tests) — but executed with the paper's interleaved concurrency.
///
/// # Panics
///
/// Panics if `grads.len() != state.len()`, if `subgroups` do not tile
/// `0..state.len()` contiguously, or if a worker thread panics.
pub fn hybrid_update(
    state: &mut MixedPrecisionState,
    grads: &[f32],
    subgroups: &[SubgroupSpec],
    cfg: PipelineConfig,
) -> PipelineReport {
    hybrid_update_inner(state, grads, subgroups, cfg, None)
}

/// [`hybrid_update`] with wall-clock tracing: every pipeline stage emits a
/// real-time span into `tracer` — `prefetch:sg{id}` (H2D staging) /
/// `update:sg{id}` / `flush:sg{id}` (D2H write-back) on the `"cpu"` track,
/// and `update:sg{id}` / `flush:sg{id}` (on-device downscale + send) on the
/// `"device-worker"` track — plus byte counters in the tracer's metrics
/// registry. Numerics are identical to the untraced path (tracing only
/// observes).
///
/// # Panics
///
/// Panics under the same conditions as [`hybrid_update`].
pub fn hybrid_update_traced(
    state: &mut MixedPrecisionState,
    grads: &[f32],
    subgroups: &[SubgroupSpec],
    cfg: PipelineConfig,
    tracer: &Tracer,
) -> PipelineReport {
    hybrid_update_inner(state, grads, subgroups, cfg, Some(tracer))
}

fn hybrid_update_inner(
    state: &mut MixedPrecisionState,
    grads: &[f32],
    subgroups: &[SubgroupSpec],
    cfg: PipelineConfig,
    tracer: Option<&Tracer>,
) -> PipelineReport {
    assert_eq!(grads.len(), state.len(), "gradient length mismatch");
    let mut cursor = 0;
    for sg in subgroups {
        assert_eq!(sg.start, cursor, "subgroups must tile the space contiguously");
        cursor = sg.end;
    }
    assert_eq!(cursor, state.len(), "subgroups must cover the space");

    let stride = match cfg.stride {
        StridePolicy::Auto => Some(2),
        StridePolicy::Fixed(k) => Some(k.max(1)),
        StridePolicy::CpuOnly => None,
    };
    let n = subgroups.len();
    let n_static = cfg.static_residents.min(n);
    let dynamic = &subgroups[..n - n_static];
    let residents = &subgroups[n - n_static..];

    state.begin_step();
    let step = state.step_count();
    let rule = state.rule();
    let lr = state.lr();

    // DMA channels: H2D staging in, D2H updated state out.
    let (h2d_tx, h2d_rx) = channel::unbounded::<StagedSubgroup>();
    let (d2h_tx, d2h_rx) = channel::unbounded::<UpdatedSubgroup>();

    let mut device_count = 0usize;
    let mut cpu_count = 0usize;
    let mut fp16 = vec![F16::ZERO; state.len()];

    std::thread::scope(|scope| {
        // The device worker: applies the same element-wise rule, then
        // produces the FP16 copy on-device (the D2D `.half()` of Alg. 1).
        scope.spawn(|| {
            while let Ok(mut job) = h2d_rx.recv() {
                let label = format!("update:sg{}", job.sg.id);
                {
                    let mut guard =
                        tracer.map(|t| t.span_on(DEVICE_TRACK, "gpu", &label, "update"));
                    if let Some(g) = guard.as_mut() {
                        g.set_work(job.sg.len() as f64);
                    }
                    rule.apply(step, lr, &mut job.p, &job.g, &mut job.m, &mut job.v);
                }
                let flush = format!("flush:sg{}", job.sg.id);
                let _guard = tracer.map(|t| t.span_on(DEVICE_TRACK, "gpu", &flush, "update"));
                let p16 = job.p.iter().map(|&x| F16::from_f32(x)).collect();
                d2h_tx
                    .send(UpdatedSubgroup { sg: job.sg, p: job.p, m: job.m, v: job.v, p16 })
                    .expect("main thread receives until disconnect");
            }
            drop(d2h_tx);
        });

        // The CPU side: walk dynamic subgroups, shipping every k-th to the
        // device (prefetch = send), updating the rest locally and
        // downscaling them.
        let prefetch = |state: &MixedPrecisionState, sg: &SubgroupSpec| {
            let label = format!("prefetch:sg{}", sg.id);
            let mut guard = tracer.map(|t| t.span_on(CPU_TRACK, "pcie.h2d", &label, "update"));
            let (p, m, v) = state.snapshot_range(sg.range());
            let bytes = 4 * (3 * sg.len() + sg.len()); // p, m, v + grads, f32
            if let Some(g) = guard.as_mut() {
                g.set_work(bytes as f64);
            }
            if let Some(t) = tracer {
                t.metrics().inc_counter("pipeline.h2d.bytes", bytes as u64);
            }
            StagedSubgroup {
                sg: *sg,
                p: p.to_vec(),
                m: m.to_vec(),
                v: v.to_vec(),
                g: grads[sg.range()].to_vec(),
            }
        };

        for (i, sg) in dynamic.iter().enumerate() {
            let on_device = stride.is_some_and(|k| (i + 1) % k == 0);
            if on_device {
                h2d_tx.send(prefetch(state, sg)).expect("device worker alive");
                device_count += 1;
            } else {
                let label = format!("update:sg{}", sg.id);
                let mut guard =
                    tracer.map(|t| t.span_on(CPU_TRACK, "cpu", &label, "update"));
                if let Some(g) = guard.as_mut() {
                    g.set_work(sg.len() as f64);
                }
                state.update_range(sg.range(), &grads[sg.range()]);
                for (dst, src) in
                    fp16[sg.range()].iter_mut().zip(state.downscale_range(sg.range()))
                {
                    *dst = src;
                }
                cpu_count += 1;
            }
        }
        // Static residents: updated on the device without staging; here the
        // state is conceptually already device-resident, so ship them too.
        for sg in residents {
            h2d_tx.send(prefetch(state, sg)).expect("device worker alive");
            device_count += 1;
        }
        drop(h2d_tx); // signal the worker to finish

        // Drain the D2H channel: write back out-of-order arrivals.
        while let Ok(upd) = d2h_rx.recv() {
            let label = format!("flush:sg{}", upd.sg.id);
            let mut guard = tracer.map(|t| t.span_on(CPU_TRACK, "pcie.d2h", &label, "update"));
            let bytes = 4 * 3 * upd.sg.len() + 2 * upd.sg.len(); // f32 state + f16 params
            if let Some(g) = guard.as_mut() {
                g.set_work(bytes as f64);
            }
            if let Some(t) = tracer {
                t.metrics().inc_counter("pipeline.d2h.bytes", bytes as u64);
            }
            state.write_back_range(upd.sg.range(), &upd.p, &upd.m, &upd.v);
            fp16[upd.sg.range()].copy_from_slice(&upd.p16);
        }
    });

    if let Some(t) = tracer {
        t.metrics().inc_counter("pipeline.device_subgroups", device_count as u64);
        t.metrics().inc_counter("pipeline.cpu_subgroups", cpu_count as u64);
    }

    PipelineReport { fp16_params: fp16, device_subgroups: device_count, cpu_subgroups: cpu_count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_optim::UpdateRule;
    use dos_zero::partition_into_subgroups;

    fn setup(n: usize) -> (MixedPrecisionState, Vec<f32>) {
        let init: Vec<f32> = (0..n).map(|i| ((i * 13 + 5) % 31) as f32 / 31.0).collect();
        let grads: Vec<f32> = (0..n).map(|i| ((i * 7 + 1) % 29) as f32 / 29.0 - 0.5).collect();
        (MixedPrecisionState::new(init, UpdateRule::adam(), 0.01), grads)
    }

    fn reference(n: usize) -> (Vec<f32>, Vec<F16>) {
        let (mut state, grads) = setup(n);
        state.full_step(&grads);
        let p16 = state.downscale_range(0..n);
        (state.params().to_vec(), p16)
    }

    #[test]
    fn hybrid_matches_sequential_bitwise() {
        let n = 1000;
        let (expected_p, expected_16) = reference(n);
        let (mut state, grads) = setup(n);
        let sgs = partition_into_subgroups(n, 64);
        let report = hybrid_update(&mut state, &grads, &sgs, PipelineConfig::default());
        assert_eq!(state.params(), &expected_p[..]);
        assert_eq!(report.fp16_params, expected_16);
        assert!(report.device_subgroups > 0);
        assert!(report.cpu_subgroups > 0);
    }

    #[test]
    fn all_strides_agree() {
        let n = 500;
        let (expected_p, _) = reference(n);
        for stride in [
            StridePolicy::CpuOnly,
            StridePolicy::Fixed(1),
            StridePolicy::Fixed(2),
            StridePolicy::Fixed(3),
            StridePolicy::Fixed(7),
        ] {
            let (mut state, grads) = setup(n);
            let sgs = partition_into_subgroups(n, 33);
            let cfg = PipelineConfig { stride, static_residents: 0 };
            let report = hybrid_update(&mut state, &grads, &sgs, cfg);
            assert_eq!(state.params(), &expected_p[..], "stride {stride:?} diverged");
            if matches!(stride, StridePolicy::CpuOnly) {
                assert_eq!(report.device_subgroups, 0);
            }
            if matches!(stride, StridePolicy::Fixed(1)) {
                assert_eq!(report.cpu_subgroups, 0);
            }
        }
    }

    #[test]
    fn static_residents_update_on_device() {
        let n = 300;
        let (expected_p, _) = reference(n);
        let (mut state, grads) = setup(n);
        let sgs = partition_into_subgroups(n, 50);
        let cfg = PipelineConfig { stride: StridePolicy::CpuOnly, static_residents: 2 };
        let report = hybrid_update(&mut state, &grads, &sgs, cfg);
        assert_eq!(report.device_subgroups, 2);
        assert_eq!(report.cpu_subgroups, 4);
        assert_eq!(state.params(), &expected_p[..]);
    }

    #[test]
    fn repeated_steps_track_sequential_trajectory() {
        let n = 200;
        let (mut seq, grads) = setup(n);
        let (mut hyb, _) = setup(n);
        let sgs = partition_into_subgroups(n, 17);
        for step in 0..5 {
            let g: Vec<f32> = grads.iter().map(|x| x * (step as f32 + 1.0)).collect();
            seq.full_step(&g);
            hybrid_update(&mut hyb, &g, &sgs, PipelineConfig::default());
        }
        assert_eq!(seq.params(), hyb.params());
        assert_eq!(seq.momentum(), hyb.momentum());
        assert_eq!(seq.variance(), hyb.variance());
    }

    #[test]
    fn traced_update_is_bitwise_identical_and_emits_both_tracks() {
        let n = 1000;
        let (expected_p, expected_16) = reference(n);
        let (mut state, grads) = setup(n);
        let sgs = partition_into_subgroups(n, 64);
        let tracer = Tracer::new();
        let report = hybrid_update_traced(&mut state, &grads, &sgs, PipelineConfig::default(), &tracer);
        assert_eq!(state.params(), &expected_p[..]);
        assert_eq!(report.fp16_params, expected_16);

        let events = tracer.events();
        let on = |track: &str, prefix: &str| {
            events.iter().filter(|e| e.track == track && e.name.starts_with(prefix)).count()
        };
        // CPU track: prefetch per shipped subgroup, update per local one,
        // flush per write-back.
        assert_eq!(on(super::CPU_TRACK, "prefetch:sg"), report.device_subgroups);
        assert_eq!(on(super::CPU_TRACK, "update:sg"), report.cpu_subgroups);
        assert_eq!(on(super::CPU_TRACK, "flush:sg"), report.device_subgroups);
        // Device-worker track: update + flush per shipped subgroup.
        assert_eq!(on(super::DEVICE_TRACK, "update:sg"), report.device_subgroups);
        assert_eq!(on(super::DEVICE_TRACK, "flush:sg"), report.device_subgroups);
        // All wall-clock spans carry the update phase and real durations.
        assert!(events.iter().all(|e| e.phase == "update" && e.dur >= 0.0));
        // Byte counters rode along in the metrics registry.
        assert!(tracer.metrics().counter("pipeline.h2d.bytes") > 0);
        assert!(tracer.metrics().counter("pipeline.d2h.bytes") > 0);
        assert_eq!(
            tracer.metrics().counter("pipeline.device_subgroups"),
            report.device_subgroups as u64
        );
    }

    #[test]
    #[should_panic(expected = "cover the space")]
    fn incomplete_subgroups_rejected() {
        let (mut state, grads) = setup(100);
        let sgs = partition_into_subgroups(90, 30);
        hybrid_update(&mut state, &grads, &sgs, PipelineConfig::default());
    }
}
