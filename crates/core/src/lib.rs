//! # dos-core — Deep Optimizer States
//!
//! The primary contribution of *"Deep Optimizer States: Towards Scalable
//! Training of Transformer Models Using Interleaved Offloading"* (Maurya,
//! Ye, Rafique, Cappello, Nicolae — MIDDLEWARE 2024), reproduced in Rust:
//!
//! * [`PerfModel`] — Equation 1's closed-form *update stride* `k`: how many
//!   subgroup updates to leave on the CPU for every one scheduled on the
//!   GPU, balancing CPU update + downscale time against PCIe staging and
//!   GPU update time (§4.2);
//! * [`DeepOptimizerStates`] — Algorithm 1 as an update scheduler for the
//!   `dos-sim` engine: every k-th subgroup prefetched over dedicated
//!   p/m/v streams, updated on the GPU, and flushed back, fully overlapped
//!   with CPU updates, downscales, and parameter H2D copies; static
//!   residents placed at the tail (§4.1, §4.3, Figure 5 bottom);
//! * the baselines it is evaluated against — [`Zero3Offload`] (DeepSpeed
//!   ZeRO-3 CPU optimizer offload) and [`TwinFlow`] (ZeRO-Offload++ static
//!   GPU/CPU split, Figure 5 top);
//! * [`hybrid_update`] — the same interleaved schedule executed with *real
//!   threads and real Adam numerics*, demonstrating the §4.1 correctness
//!   claim: out-of-order, cross-device subgroup updates are bitwise
//!   identical to a sequential CPU update.
//!
//! ```
//! use dos_core::PerfModel;
//! use dos_hal::PerfModelInputs;
//!
//! // The paper's V100 validation (§5.4): k = 2, i.e. every alternate
//! // subgroup updates on the GPU.
//! let model = PerfModel::new(PerfModelInputs {
//!     b: 3.0e9, ug: 35.0e9, uc: 2.0e9, dc: 8.7e9,
//! });
//! assert_eq!(model.optimal_stride(), Some(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code on the fault-tolerant update path must surface failures as
// typed errors, never die on a stray unwrap; tests may assert freely.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
mod calibration;
mod explain;
mod nvme;
mod perf_model;
mod pipeline;
mod schedulers;
mod zenflow;
pub use dos_sync as sync;

pub use arena::{ArenaPool, PooledF16, PooledF32};
pub use calibration::{calibrate, calibrate_with, CalibrationReport, CalibrationSpread};
pub use explain::{explain_schedule, ScheduleExplanation};
pub use nvme::NvmeOffload;
pub use perf_model::PerfModel;
pub use pipeline::{
    hybrid_update, hybrid_update_pooled, hybrid_update_traced, DeviceFault, PipelineConfig,
    PipelineDegradation, PipelineError, PipelineReport,
};
pub use schedulers::{DeepOptimizerStates, StridePolicy, TwinFlow, ZenFlowAsync, Zero3Offload};
pub use zenflow::{zenflow_reference, ZenFlowConfig, ZenFlowPipeline, ZenFlowStepReport};
