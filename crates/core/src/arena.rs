//! Pinned-buffer arena pool for zero-copy pipeline stage handoffs.
//!
//! Every subgroup the hybrid pipeline ships to the device worker needs
//! staging buffers (`p`, `m`, `v`, `g` in FP32 plus the FP16 parameter
//! copy coming back). Allocating those per subgroup per step is exactly
//! the churn the paper's pinned-buffer design avoids: real DMA requires
//! page-locked memory, which is expensive to register, so implementations
//! keep a fixed arena of pinned buffers and recycle them. [`ArenaPool`]
//! is that arena's functional analogue: leased buffers hand themselves
//! back on drop — wherever the drop happens, CPU thread or device worker
//! — so a steady-state `hybrid_update` allocates nothing per subgroup.
//!
//! The pool is the pipeline's *host memory meter*: its in-use/high-water
//! gauges (exported through `dos-telemetry` as `arena.in_use_bytes` /
//! `arena.high_water_bytes`) are what `ResidentPolicy::Headroom` observes
//! on the functional path to size static residents — the host-RSS
//! analogue of the simulator's HBM headroom signal.

use std::sync::Arc;

use parking_lot::Mutex;

use dos_telemetry::MetricsRegistry;
use dos_tensor::{kernels, F16};

/// Gauge name for bytes currently leased from the pool.
pub const GAUGE_IN_USE: &str = "arena.in_use_bytes";
/// Gauge name for the peak of [`GAUGE_IN_USE`] since the last reset.
pub const GAUGE_HIGH_WATER: &str = "arena.high_water_bytes";

#[derive(Debug, Default)]
struct Inner {
    free_f32: Vec<Vec<f32>>,
    free_f16: Vec<Vec<F16>>,
    in_use_bytes: usize,
    high_water_bytes: usize,
    hits: u64,
    misses: u64,
}

/// A shared, thread-safe pool of reusable `f32`/`F16` staging buffers.
///
/// Clones share storage, so one handle can stay on the CPU thread while
/// another travels into the device worker. Leases are accounted in bytes
/// (logical length × element size); the high-water mark is the peak
/// concurrent lease footprint and can be read-and-reset per iteration.
///
/// # Examples
///
/// ```
/// use dos_core::ArenaPool;
///
/// let pool = ArenaPool::new();
/// let a = pool.lease_f32_copy(&[1.0, 2.0, 3.0]);
/// assert_eq!(&a[..], &[1.0, 2.0, 3.0]);
/// assert_eq!(pool.in_use_bytes(), 12);
/// drop(a);
/// assert_eq!(pool.in_use_bytes(), 0);
/// let b = pool.lease_f32_copy(&[4.0]); // recycles a's buffer
/// assert_eq!(pool.reuse_hits(), 1);
/// # drop(b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArenaPool {
    inner: Arc<Mutex<Inner>>,
    metrics: Option<MetricsRegistry>,
}

impl ArenaPool {
    /// Creates an empty pool with no metrics export.
    pub fn new() -> ArenaPool {
        ArenaPool::default()
    }

    /// Creates an empty pool that mirrors its in-use/high-water bytes into
    /// `metrics` as the [`GAUGE_IN_USE`] and [`GAUGE_HIGH_WATER`] gauges on
    /// every lease and return.
    pub fn with_metrics(metrics: MetricsRegistry) -> ArenaPool {
        ArenaPool { inner: Arc::default(), metrics: Some(metrics) }
    }

    fn publish(&self, inner: &Inner) {
        if let Some(m) = &self.metrics {
            m.set_gauge(GAUGE_IN_USE, inner.in_use_bytes as f64);
            m.set_gauge(GAUGE_HIGH_WATER, inner.high_water_bytes as f64);
        }
    }

    fn lease_raw_f32(&self, bytes: usize) -> Vec<f32> {
        let mut inner = self.inner.lock();
        let buf = match inner.free_f32.pop() {
            Some(b) => {
                inner.hits += 1;
                b
            }
            None => {
                inner.misses += 1;
                Vec::new()
            }
        };
        inner.in_use_bytes += bytes;
        inner.high_water_bytes = inner.high_water_bytes.max(inner.in_use_bytes);
        self.publish(&inner);
        buf
    }

    /// Leases a buffer holding a copy of `src` (Algorithm 1's prefetch
    /// staging: the subgroup state is copied into a pinned buffer, not
    /// reallocated).
    pub fn lease_f32_copy(&self, src: &[f32]) -> PooledF32 {
        let mut buf = self.lease_raw_f32(src.len() * 4);
        buf.clear();
        buf.extend_from_slice(src);
        PooledF32 { buf, pool: self.clone() }
    }

    /// Leases an FP16 buffer filled with the downscaled contents of `src`
    /// (the device-side `.half()` copy), using the vectorized conversion
    /// kernel.
    pub fn lease_f16_downscaled(&self, src: &[f32]) -> PooledF16 {
        let bytes = src.len() * 2;
        let mut inner = self.inner.lock();
        let mut buf = match inner.free_f16.pop() {
            Some(b) => {
                inner.hits += 1;
                b
            }
            None => {
                inner.misses += 1;
                Vec::new()
            }
        };
        inner.in_use_bytes += bytes;
        inner.high_water_bytes = inner.high_water_bytes.max(inner.in_use_bytes);
        self.publish(&inner);
        drop(inner);
        buf.clear();
        buf.resize(src.len(), F16::ZERO);
        kernels::downscale(src, &mut buf);
        PooledF16 { buf, pool: self.clone() }
    }

    fn return_f32(&self, buf: Vec<f32>, bytes: usize) {
        let mut inner = self.inner.lock();
        inner.in_use_bytes = inner.in_use_bytes.saturating_sub(bytes);
        inner.free_f32.push(buf);
        self.publish(&inner);
    }

    fn return_f16(&self, buf: Vec<F16>, bytes: usize) {
        let mut inner = self.inner.lock();
        inner.in_use_bytes = inner.in_use_bytes.saturating_sub(bytes);
        inner.free_f16.push(buf);
        self.publish(&inner);
    }

    /// Bytes currently leased out.
    pub fn in_use_bytes(&self) -> usize {
        self.inner.lock().in_use_bytes
    }

    /// Peak concurrent lease footprint since creation or the last
    /// [`ArenaPool::take_high_water_bytes`].
    pub fn high_water_bytes(&self) -> usize {
        self.inner.lock().high_water_bytes
    }

    /// Returns the high-water mark and resets it to the current in-use
    /// level — the per-iteration read the resident-sizing policy consumes.
    pub fn take_high_water_bytes(&self) -> usize {
        let mut inner = self.inner.lock();
        let peak = inner.high_water_bytes;
        inner.high_water_bytes = inner.in_use_bytes;
        self.publish(&inner);
        peak
    }

    /// Leases served by recycling a previously returned buffer.
    pub fn reuse_hits(&self) -> u64 {
        self.inner.lock().hits
    }

    /// Leases that had to allocate a fresh buffer.
    pub fn allocation_misses(&self) -> u64 {
        self.inner.lock().misses
    }
}

/// A leased `f32` buffer; returns itself to the pool on drop.
#[derive(Debug)]
pub struct PooledF32 {
    buf: Vec<f32>,
    pool: ArenaPool,
}

impl std::ops::Deref for PooledF32 {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledF32 {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for PooledF32 {
    fn drop(&mut self) {
        let bytes = self.buf.len() * 4;
        self.pool.clone().return_f32(std::mem::take(&mut self.buf), bytes);
    }
}

/// A leased `F16` buffer; returns itself to the pool on drop.
#[derive(Debug)]
pub struct PooledF16 {
    buf: Vec<F16>,
    pool: ArenaPool,
}

impl std::ops::Deref for PooledF16 {
    type Target = [F16];
    fn deref(&self) -> &[F16] {
        &self.buf
    }
}

impl Drop for PooledF16 {
    fn drop(&mut self) {
        let bytes = self.buf.len() * 2;
        self.pool.clone().return_f16(std::mem::take(&mut self.buf), bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_copy_round_trips_and_accounts_bytes() {
        let pool = ArenaPool::new();
        let a = pool.lease_f32_copy(&[1.0, 2.0]);
        let b = pool.lease_f32_copy(&[3.0; 10]);
        assert_eq!(&a[..], &[1.0, 2.0]);
        assert_eq!(pool.in_use_bytes(), 8 + 40);
        assert_eq!(pool.high_water_bytes(), 48);
        drop(a);
        assert_eq!(pool.in_use_bytes(), 40);
        assert_eq!(pool.high_water_bytes(), 48, "high water is sticky");
        drop(b);
        assert_eq!(pool.in_use_bytes(), 0);
    }

    #[test]
    fn buffers_are_recycled_not_reallocated() {
        let pool = ArenaPool::new();
        drop(pool.lease_f32_copy(&[0.0; 64]));
        drop(pool.lease_f32_copy(&[1.0; 32])); // reuses the 64-cap buffer
        assert_eq!(pool.reuse_hits(), 1);
        assert_eq!(pool.allocation_misses(), 1);
        drop(pool.lease_f16_downscaled(&[1.0; 16]));
        drop(pool.lease_f16_downscaled(&[2.0; 16]));
        assert_eq!(pool.reuse_hits(), 2);
    }

    #[test]
    fn downscaled_lease_matches_scalar_oracle() {
        let src: Vec<f32> = (0..100).map(|i| (i as f32).sin() * 70000.0).collect();
        let pool = ArenaPool::new();
        let got = pool.lease_f16_downscaled(&src);
        for (x, h) in src.iter().zip(got.iter()) {
            assert_eq!(h.to_bits(), F16::from_f32(*x).to_bits());
        }
    }

    #[test]
    fn take_high_water_resets_to_current_in_use() {
        let pool = ArenaPool::new();
        let a = pool.lease_f32_copy(&[0.0; 100]);
        drop(pool.lease_f32_copy(&[0.0; 100]));
        assert_eq!(pool.take_high_water_bytes(), 800);
        assert_eq!(pool.high_water_bytes(), 400, "reset lands on live leases");
        drop(a);
    }

    #[test]
    fn gauges_are_published_through_telemetry() {
        let metrics = MetricsRegistry::new();
        let pool = ArenaPool::with_metrics(metrics.clone());
        let a = pool.lease_f32_copy(&[0.0; 25]);
        assert_eq!(metrics.gauge(GAUGE_IN_USE), Some(100.0));
        assert_eq!(metrics.gauge(GAUGE_HIGH_WATER), Some(100.0));
        drop(a);
        assert_eq!(metrics.gauge(GAUGE_IN_USE), Some(0.0));
        assert_eq!(metrics.gauge(GAUGE_HIGH_WATER), Some(100.0));
    }

    #[test]
    fn clones_share_the_pool_across_threads() {
        let pool = ArenaPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        drop(pool.lease_f32_copy(&[1.0; 128]));
                    }
                });
            }
        });
        assert_eq!(pool.in_use_bytes(), 0);
        assert!(pool.reuse_hits() + pool.allocation_misses() == 200);
        assert!(pool.allocation_misses() <= 4, "at most one fresh buffer per thread");
    }
}
