//! The performance model of §4.2 (Equation 1).
//!
//! Balances the time the CPU spends updating and downscaling `k` subgroups
//! against the time to stage one subgroup on the GPU (3·S/B of FP32 state in
//! each PCIe direction), ship the CPU-updated FP16 parameters (k·S/(2B)),
//! and run the GPU update (S/U_g):
//!
//! ```text
//! k (S/U_c + S/D_c) = max{3S/B (D2H), 3S/B (H2D)} + k·S/(2B) + S/U_g
//!
//!          3/B + 1/U_g
//! k = ─────────────────────────
//!     1/U_c + 1/D_c − 1/(2B)
//! ```
//!
//! `k` is the **update stride**: every k-th subgroup is scheduled on the
//! GPU, so the fraction of updates on the GPU is `1/k`. Note that `k` is
//! independent of the subgroup size `S` — which is why Figure 2 sees no
//! effect from varying subgroup sizes.

use serde::{Deserialize, Serialize};

use dos_hal::PerfModelInputs;

/// Solver for the optimal CPU-to-GPU update stride.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    inputs: PerfModelInputs,
    cpu_contention: f64,
}

impl PerfModel {
    /// Creates a model from measured machine throughputs.
    ///
    /// # Panics
    ///
    /// Panics if any throughput is not positive.
    pub fn new(inputs: PerfModelInputs) -> PerfModel {
        assert!(inputs.b > 0.0, "B must be positive");
        assert!(inputs.ug > 0.0, "U_g must be positive");
        assert!(inputs.uc > 0.0, "U_c must be positive");
        assert!(inputs.dc > 0.0, "D_c must be positive");
        PerfModel { inputs, cpu_contention: 1.0 }
    }

    /// Adds a DRAM-contention factor (< 1) applied to `U_c` by the
    /// *prediction* when PCIe traffic runs concurrently with CPU updates.
    /// Equation 1 itself (the stride solver) uses the uncontended inputs,
    /// exactly as the paper derives it from standalone measurements.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn with_contention(mut self, factor: f64) -> PerfModel {
        assert!(factor > 0.0 && factor <= 1.0, "contention factor must be in (0, 1]");
        self.cpu_contention = factor;
        self
    }

    /// The model's inputs.
    pub fn inputs(&self) -> PerfModelInputs {
        self.inputs
    }

    /// The real-valued solution of Equation 1, or `None` if the denominator
    /// is non-positive (the CPU side is so fast that GPU offloading never
    /// pays for its transfers).
    pub fn raw_stride(&self) -> Option<f64> {
        let PerfModelInputs { b, ug, uc, dc } = self.inputs;
        let denom = 1.0 / uc + 1.0 / dc - 1.0 / (2.0 * b);
        if denom <= 0.0 {
            return None;
        }
        Some((3.0 / b + 1.0 / ug) / denom)
    }

    /// The integer update stride `k ≥ 1`: every k-th subgroup updates on
    /// the GPU. Rounds the Equation 1 solution to the nearest integer (the
    /// paper's k = 2.29 → 2); `None` means all subgroups stay on the CPU.
    pub fn optimal_stride(&self) -> Option<usize> {
        self.raw_stride().map(|k| (k.round() as usize).max(1))
    }

    /// Fraction of subgroup updates scheduled on the GPU (`1/k`).
    pub fn gpu_fraction(&self) -> f64 {
        match self.optimal_stride() {
            Some(k) => 1.0 / k as f64,
            None => 0.0,
        }
    }

    /// Predicted update-phase seconds for `params` parameters partitioned
    /// into subgroups of `subgroup` parameters under stride `k`
    /// (`None` = CPU-only). Uses the Equation 1 cost terms per stride
    /// cycle; the per-cycle time is the max of the CPU side and the
    /// GPU/transfer side.
    pub fn predicted_update_secs(
        &self,
        params: f64,
        subgroup: f64,
        k: Option<usize>,
    ) -> f64 {
        let PerfModelInputs { b, ug, uc, dc } = self.inputs;
        let s = subgroup;
        match k {
            None => params * (1.0 / uc + 1.0 / dc + 1.0 / (2.0 * b)),
            Some(k) => {
                let k = k.max(1) as f64;
                let cycles = params / (s * k);
                // Per cycle: k-1 CPU subgroups + 1 GPU subgroup. Concurrent
                // PCIe traffic slows the CPU by the contention factor.
                let uc_eff = uc * self.cpu_contention;
                let cpu_side = (k - 1.0) * (s / uc_eff + s / dc);
                let xfer_side = 3.0 * s / b + (k - 1.0) * s / (2.0 * b) + s / ug;
                cycles * cpu_side.max(xfer_side)
            }
        }
    }

    /// Sweeps strides `1..=max_k` (plus CPU-only) and returns the stride
    /// with the lowest predicted update time.
    pub fn best_stride_by_prediction(&self, params: f64, subgroup: f64, max_k: usize) -> Option<usize> {
        let mut best: (Option<usize>, f64) =
            (None, self.predicted_update_secs(params, subgroup, None));
        for k in 1..=max_k {
            let t = self.predicted_update_secs(params, subgroup, Some(k));
            if t < best.1 {
                best = (Some(k), t);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_hal::HardwareProfile;

    #[test]
    fn v100_inputs_give_k_2() {
        // §5.4: B = 3 B P/s, U_g = 35, U_c = 2, D_c = 8.7 => k = 2.
        let m = PerfModel::new(PerfModelInputs { b: 3.0e9, ug: 35.0e9, uc: 2.0e9, dc: 8.7e9 });
        let raw = m.raw_stride().unwrap();
        assert!((raw - 2.295).abs() < 0.01, "raw k = {raw}");
        assert_eq!(m.optimal_stride(), Some(2));
        assert!((m.gpu_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn h100_profile_gives_k_2() {
        let m = PerfModel::new(HardwareProfile::jlse_h100().perf_model_inputs());
        assert_eq!(m.optimal_stride(), Some(2), "raw = {:?}", m.raw_stride());
    }

    #[test]
    fn stride_is_independent_of_subgroup_size() {
        // Equation 1 has no S: predictions scale linearly with params but the
        // argmin over k is unchanged.
        let m = PerfModel::new(PerfModelInputs { b: 3.0e9, ug: 35.0e9, uc: 2.0e9, dc: 8.7e9 });
        let a = m.best_stride_by_prediction(5e9, 1e8, 6);
        let b = m.best_stride_by_prediction(5e9, 1e9, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn fast_cpu_disables_gpu_offload() {
        // CPU + downscale faster than half a subgroup transfer: denominator
        // goes non-positive.
        let m = PerfModel::new(PerfModelInputs { b: 100.0e9, ug: 25.0e9, uc: 1e12, dc: 1e12 });
        assert_eq!(m.raw_stride(), None);
        assert_eq!(m.optimal_stride(), None);
        assert_eq!(m.gpu_fraction(), 0.0);
    }

    #[test]
    fn interleaving_beats_cpu_only_in_prediction() {
        let m = PerfModel::new(HardwareProfile::jlse_h100().perf_model_inputs());
        let p = 5.4e9; // 20B model, 4 ranks
        let cpu_only = m.predicted_update_secs(p, 1e8, None);
        let k2 = m.predicted_update_secs(p, 1e8, Some(2));
        assert!(k2 < cpu_only, "k=2 {k2}s should beat CPU-only {cpu_only}s");
        // And the paper's ~1.7x+ update speedup shows up.
        assert!(cpu_only / k2 > 1.5, "speedup only {}", cpu_only / k2);
    }

    #[test]
    fn prediction_matches_v100_throughput_ordering() {
        // §5.4: measured update throughputs were 1.67 (k=3), 1.62 (k=4),
        // 1.28 (k=5) billion P/s, with k=2 best. Our predictions must order
        // the same way.
        let profile = HardwareProfile::v100_node();
        let m = PerfModel::new(profile.perf_model_inputs())
            .with_contention(profile.dram_contention_cpu_factor);
        let p = 1.75e9; // 7B model across 4 ranks
        let t: Vec<f64> =
            (2..=5).map(|k| m.predicted_update_secs(p, 1e8, Some(k))).collect();
        assert!(t[0] < t[1], "k=2 {} should beat k=3 {}", t[0], t[1]);
        assert!(t[1] < t[3], "k=3 {} should beat k=5 {}", t[1], t[3]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn inputs_validated() {
        let _ = PerfModel::new(PerfModelInputs { b: 0.0, ug: 1.0, uc: 1.0, dc: 1.0 });
    }
}
