//! ZenFlow-style stall-free cross-iteration updates (functional clock).
//!
//! The paper's update phase — and [`crate::hybrid_update`], its functional
//! twin — runs *inside* the iteration barrier: the next forward pass waits
//! for every subgroup update. ZenFlow (arXiv 2505.12242) breaks that
//! barrier with an **importance partition**: the top-p subgroups by
//! gradient norm update immediately (they would drift the most if
//! delayed), while the cold bulk accumulates gradients and is updated
//! asynchronously by CPU workers that run concurrently with the *next*
//! iteration's forward/backward, under a **bounded staleness** window `S`.
//!
//! [`ZenFlowPipeline`] is that algorithm on the [`crate::sync`] facade, so
//! `dos-check` can exhaustively explore the cross-iteration rendezvous:
//!
//! * `step(state, grads)` — rank the subgroups by `Σ g²`, update the hot
//!   set synchronously via [`MixedPrecisionState::update_range`], and for
//!   each cold subgroup accumulate the gradient; once a subgroup's
//!   accumulated age reaches `S`, snapshot its `p/m/v` lanes and dispatch
//!   a detached [`sync::spawn`] worker that applies the update off-thread
//!   (the "during iteration i+1" CPU work).
//! * the **rendezvous-before-touch** rule: a range with an in-flight
//!   worker is never read, snapshotted, or re-dispatched until its handle
//!   is joined and written back. Every worker's inputs are therefore
//!   schedule-invariant, and because disjoint-range writes commute
//!   bitwise, the post-[`ZenFlowPipeline::drain`] state is identical
//!   across *all* thread schedules — the property the `zf` check scenario
//!   proves against [`zenflow_reference`].
//! * `poll_pending(state)` — an optional harvest of already-finished
//!   workers (an [`is_finished`](sync::JoinHandle::is_finished) yield
//!   point). `step` itself never harvests opportunistically, so
//!   mid-run master state depends only on the algorithm, not the
//!   schedule.
//!
//! [`zenflow_reference`] is the sequential bounded-staleness oracle: the
//! same selection/accumulation/flush decisions executed inline on one
//! thread. The pipeline must match it bit-for-bit on every schedule.

use dos_optim::MixedPrecisionState;
use dos_zero::SubgroupSpec;

use crate::sync;

/// Knobs of the asynchronous update policy (mirrors the `dos-train`
/// config fields `importance_ratio` / `staleness_bound`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZenFlowConfig {
    /// Fraction of subgroups updated synchronously on the "GPU" path each
    /// step (top-p by squared gradient norm). Clamped to [0, 1]; at least
    /// one subgroup is always hot.
    pub importance_ratio: f64,
    /// Bounded staleness window `S`: a cold subgroup's gradient may be
    /// delayed at most `S` steps before its update is forced. Treated as
    /// at least 1 (S = 0 degenerates to every subgroup hot-path
    /// synchronous anyway).
    pub staleness_bound: usize,
}

impl Default for ZenFlowConfig {
    fn default() -> Self {
        ZenFlowConfig { importance_ratio: 0.1, staleness_bound: 1 }
    }
}

impl ZenFlowConfig {
    /// Number of hot (synchronously updated) subgroups for `n` subgroups:
    /// `ceil(ratio · n)`, at least 1, at most `n`.
    pub fn hot_count(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let h = (self.importance_ratio.clamp(0.0, 1.0) * n as f64).ceil() as usize;
        h.clamp(1, n)
    }

    /// The effective staleness window (`max(S, 1)`).
    pub fn effective_staleness(&self) -> usize {
        self.staleness_bound.max(1)
    }
}

/// What one [`ZenFlowPipeline::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZenFlowStepReport {
    /// Subgroup ids updated synchronously this step (the importance set),
    /// ascending.
    pub hot: Vec<usize>,
    /// Subgroup ids whose accumulated update was dispatched to an
    /// asynchronous worker this step, ascending.
    pub flushed: Vec<usize>,
}

/// Selects the hot (synchronous) subgroup ids for one step: the top
/// [`ZenFlowConfig::hot_count`] subgroups by `Σ g²` over their range,
/// ties broken toward the lower id, returned ascending.
///
/// Shared between [`ZenFlowPipeline`] and [`zenflow_reference`] so both
/// clocks make bit-identical partition decisions.
fn select_hot(subgroups: &[SubgroupSpec], cfg: &ZenFlowConfig, grads: &[f32]) -> Vec<usize> {
    let mut scored: Vec<(f64, usize)> = subgroups
        .iter()
        .enumerate()
        .map(|(j, sg)| {
            let score: f64 =
                grads[sg.range()].iter().map(|g| (*g as f64) * (*g as f64)).sum();
            (score, j)
        })
        .collect();
    // Highest importance first; lower id wins ties so the partition is a
    // pure function of the gradient.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut hot: Vec<usize> = scored
        .into_iter()
        .take(cfg.hot_count(subgroups.len()))
        .map(|(_, j)| j)
        .collect();
    hot.sort_unstable();
    hot
}

/// The result a cold-update worker hands back: the updated `(p, m, v)`
/// lanes for its range.
type Lanes = (Vec<f32>, Vec<f32>, Vec<f32>);

/// Cross-iteration asynchronous update driver (see module docs).
#[derive(Debug)]
pub struct ZenFlowPipeline {
    subgroups: Vec<SubgroupSpec>,
    cfg: ZenFlowConfig,
    /// Per-subgroup accumulated (summed) gradient since its last applied
    /// update; empty = nothing pending.
    accum: Vec<Vec<f32>>,
    /// Steps since the subgroup's gradient was last applied (0 = fresh).
    age: Vec<usize>,
    /// In-flight asynchronous worker per subgroup (rendezvous-before-touch:
    /// the range is untouchable until this is joined and written back).
    inflight: Vec<Option<sync::JoinHandle<Lanes>>>,
    max_age_seen: usize,
}

impl ZenFlowPipeline {
    /// Builds a pipeline over `subgroups` (the partition of the state the
    /// steps will drive).
    pub fn new(subgroups: Vec<SubgroupSpec>, cfg: ZenFlowConfig) -> ZenFlowPipeline {
        let n = subgroups.len();
        ZenFlowPipeline {
            subgroups,
            cfg,
            accum: vec![Vec::new(); n],
            age: vec![0; n],
            inflight: (0..n).map(|_| None).collect(),
            max_age_seen: 0,
        }
    }

    /// The configured policy.
    pub fn config(&self) -> &ZenFlowConfig {
        &self.cfg
    }

    /// Number of subgroups updated synchronously each step.
    pub fn hot_count(&self) -> usize {
        self.cfg.hot_count(self.subgroups.len())
    }

    /// The maximum staleness (in steps) any cold subgroup's gradient has
    /// reached so far. The bounded-staleness invariant is
    /// `max_age_seen() <= config().effective_staleness()`.
    pub fn max_age_seen(&self) -> usize {
        self.max_age_seen
    }

    /// Number of asynchronous workers currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.iter().filter(|h| h.is_some()).count()
    }

    /// Joins subgroup `j`'s in-flight worker (if any) and writes its lanes
    /// back — the rendezvous that must precede any touch of the range.
    fn join_subgroup(&mut self, state: &mut MixedPrecisionState, j: usize) {
        if let Some(handle) = self.inflight[j].take() {
            match handle.join() {
                Ok((p, m, v)) => {
                    state.write_back_range(self.subgroups[j].range(), &p, &m, &v)
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    }

    /// Runs one training step: hot subgroups update synchronously, cold
    /// subgroups accumulate, and any cold subgroup whose age reaches the
    /// staleness window is dispatched to an asynchronous worker.
    ///
    /// Deliberately performs **no** opportunistic harvest of finished
    /// workers — use [`ZenFlowPipeline::poll_pending`] between steps or
    /// [`ZenFlowPipeline::drain`] at the end — so the master state after
    /// any step is a pure function of the inputs, never of the thread
    /// schedule.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != state.len()` or if an asynchronous worker
    /// panicked (the panic is propagated).
    pub fn step(
        &mut self,
        state: &mut MixedPrecisionState,
        grads: &[f32],
    ) -> ZenFlowStepReport {
        assert_eq!(
            grads.len(),
            state.len(),
            "gradient length must match parameter count"
        );
        state.begin_step();
        let step = state.step_count();
        let lr = state.lr();
        let rule = state.rule();

        let hot = select_hot(&self.subgroups, &self.cfg, grads);
        let window = self.cfg.effective_staleness();
        let mut flushed: Vec<usize> = Vec::new();

        let mut hot_iter = hot.iter().copied().peekable();
        for j in 0..self.subgroups.len() {
            let range = self.subgroups[j].range();
            let is_hot = hot_iter.peek() == Some(&j);
            if is_hot {
                hot_iter.next();
                // Rendezvous before touching the range, then apply the
                // accumulated + current gradient in one synchronous update.
                self.join_subgroup(state, j);
                if self.age[j] > 0 {
                    let mut eff = std::mem::take(&mut self.accum[j]);
                    for (e, g) in eff.iter_mut().zip(&grads[range.clone()]) {
                        *e += *g;
                    }
                    state.update_range(range, &eff);
                    self.age[j] = 0;
                } else {
                    state.update_range(range.clone(), &grads[range]);
                }
            } else {
                // Cold: accumulate and age.
                if self.accum[j].is_empty() {
                    self.accum[j] = grads[range.clone()].to_vec();
                } else {
                    for (e, g) in self.accum[j].iter_mut().zip(&grads[range.clone()]) {
                        *e += *g;
                    }
                }
                self.age[j] += 1;
                self.max_age_seen = self.max_age_seen.max(self.age[j]);
                if self.age[j] >= window {
                    // Drain barrier: the bound would be exceeded next
                    // step, so flush now via an asynchronous worker.
                    self.join_subgroup(state, j);
                    let (p, m, v) = state.snapshot_range(range.clone());
                    let (mut p, mut m, mut v) = (p.to_vec(), m.to_vec(), v.to_vec());
                    let eff = std::mem::take(&mut self.accum[j]);
                    self.inflight[j] = Some(sync::spawn(move || {
                        rule.apply(step, lr, &mut p, &eff, &mut m, &mut v);
                        (p, m, v)
                    }));
                    self.age[j] = 0;
                    flushed.push(j);
                }
            }
        }
        ZenFlowStepReport { hot, flushed }
    }

    /// Harvests workers that have already finished (via
    /// [`sync::JoinHandle::is_finished`] — a scheduling yield point under
    /// `dos-check`) and writes their lanes back. Returns how many were
    /// collected. Optional: correctness never depends on calling this,
    /// only [`ZenFlowPipeline::drain`] is mandatory before reading the
    /// final state.
    pub fn poll_pending(&mut self, state: &mut MixedPrecisionState) -> usize {
        let mut collected = 0;
        for j in 0..self.subgroups.len() {
            if self.inflight[j].as_ref().is_some_and(|h| h.is_finished()) {
                self.join_subgroup(state, j);
                collected += 1;
            }
        }
        collected
    }

    /// Joins every in-flight worker and applies any residual accumulated
    /// gradient inline (at the current step count), leaving the state
    /// exactly where the sequential oracle lands. Must be called before
    /// the final state is read or checkpointed.
    pub fn drain(&mut self, state: &mut MixedPrecisionState) {
        for j in 0..self.subgroups.len() {
            self.join_subgroup(state, j);
            if self.age[j] > 0 {
                let eff = std::mem::take(&mut self.accum[j]);
                state.update_range(self.subgroups[j].range(), &eff);
                self.age[j] = 0;
            }
        }
    }
}

/// The sequential bounded-staleness oracle: executes exactly the decisions
/// of [`ZenFlowPipeline`] — same importance partition, same accumulation,
/// same flush-at-`S` points, same drain residue — inline on one thread.
/// Returns the maximum staleness any cold gradient reached.
///
/// Because the pipeline's workers receive schedule-invariant inputs and
/// write back disjoint ranges, every terminal (drained) pipeline state is
/// bitwise equal to the state this function leaves behind.
///
/// # Panics
///
/// Panics if any step's gradient length differs from `state.len()`.
pub fn zenflow_reference(
    state: &mut MixedPrecisionState,
    subgroups: &[SubgroupSpec],
    cfg: &ZenFlowConfig,
    steps: &[Vec<f32>],
) -> usize {
    let n = subgroups.len();
    let mut accum: Vec<Vec<f32>> = vec![Vec::new(); n];
    let mut age = vec![0usize; n];
    let mut max_age = 0usize;
    let window = cfg.effective_staleness();

    for grads in steps {
        assert_eq!(
            grads.len(),
            state.len(),
            "gradient length must match parameter count"
        );
        state.begin_step();
        let hot = select_hot(subgroups, cfg, grads);
        let mut hot_iter = hot.iter().copied().peekable();
        for (j, sg) in subgroups.iter().enumerate() {
            let range = sg.range();
            let is_hot = hot_iter.peek() == Some(&j);
            if is_hot {
                hot_iter.next();
                if age[j] > 0 {
                    let mut eff = std::mem::take(&mut accum[j]);
                    for (e, g) in eff.iter_mut().zip(&grads[range.clone()]) {
                        *e += *g;
                    }
                    state.update_range(range, &eff);
                    age[j] = 0;
                } else {
                    state.update_range(range.clone(), &grads[range]);
                }
            } else {
                if accum[j].is_empty() {
                    accum[j] = grads[range.clone()].to_vec();
                } else {
                    for (e, g) in accum[j].iter_mut().zip(&grads[range.clone()]) {
                        *e += *g;
                    }
                }
                age[j] += 1;
                max_age = max_age.max(age[j]);
                if age[j] >= window {
                    let eff = std::mem::take(&mut accum[j]);
                    state.update_range(range, &eff);
                    age[j] = 0;
                }
            }
        }
    }
    // Drain residue, mirroring `ZenFlowPipeline::drain`.
    for (j, sg) in subgroups.iter().enumerate() {
        if age[j] > 0 {
            let eff = std::mem::take(&mut accum[j]);
            state.update_range(sg.range(), &eff);
            age[j] = 0;
        }
    }
    max_age
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_optim::UpdateRule;
    use dos_zero::partition_into_subgroups;

    fn init(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 13 + 5) % 31) as f32 / 31.0).collect()
    }

    fn grads(n: usize, step: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 7 + step * 11 + 1) % 29) as f32 / 29.0 - 0.5)
            .collect()
    }

    fn fresh(n: usize) -> MixedPrecisionState {
        MixedPrecisionState::new(init(n), UpdateRule::adam(), 0.01)
    }

    fn run_pipeline(
        n: usize,
        subgroup: usize,
        cfg: ZenFlowConfig,
        steps: usize,
        poll: bool,
    ) -> (MixedPrecisionState, usize) {
        let subgroups = partition_into_subgroups(n, subgroup);
        let mut state = fresh(n);
        let mut pipe = ZenFlowPipeline::new(subgroups, cfg);
        for t in 0..steps {
            pipe.step(&mut state, &grads(n, t));
            if poll {
                pipe.poll_pending(&mut state);
            }
        }
        pipe.drain(&mut state);
        (state, pipe.max_age_seen())
    }

    fn run_reference(
        n: usize,
        subgroup: usize,
        cfg: ZenFlowConfig,
        steps: usize,
    ) -> (MixedPrecisionState, usize) {
        let subgroups = partition_into_subgroups(n, subgroup);
        let mut state = fresh(n);
        let all: Vec<Vec<f32>> = (0..steps).map(|t| grads(n, t)).collect();
        let max_age = zenflow_reference(&mut state, &subgroups, &cfg, &all);
        (state, max_age)
    }

    fn assert_bitwise(a: &MixedPrecisionState, b: &MixedPrecisionState) {
        for (lane, (xs, ys)) in [
            ("params", (a.params(), b.params())),
            ("momentum", (a.momentum(), b.momentum())),
            ("variance", (a.variance(), b.variance())),
        ] {
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{lane}[{i}] diverged: {x} vs {y}"
                );
            }
        }
        assert_eq!(a.step_count(), b.step_count());
    }

    #[test]
    fn pipeline_matches_reference_bitwise() {
        for (ratio, s) in [(0.25, 1), (0.25, 2), (0.5, 1), (0.34, 3)] {
            let cfg = ZenFlowConfig { importance_ratio: ratio, staleness_bound: s };
            let (p_state, p_age) = run_pipeline(48, 8, cfg, 5, false);
            let (r_state, r_age) = run_reference(48, 8, cfg, 5);
            assert_bitwise(&p_state, &r_state);
            assert_eq!(p_age, r_age, "staleness bookkeeping diverged");
        }
    }

    #[test]
    fn polling_between_steps_does_not_change_the_terminal_state() {
        let cfg = ZenFlowConfig { importance_ratio: 0.25, staleness_bound: 2 };
        let (polled, _) = run_pipeline(48, 8, cfg, 6, true);
        let (unpolled, _) = run_pipeline(48, 8, cfg, 6, false);
        assert_bitwise(&polled, &unpolled);
    }

    #[test]
    fn staleness_never_exceeds_the_bound() {
        for s in 1..=3 {
            let cfg = ZenFlowConfig { importance_ratio: 0.2, staleness_bound: s };
            let (_, max_age) = run_pipeline(40, 8, cfg, 8, false);
            assert!(max_age <= s, "max age {max_age} exceeded bound {s}");
            assert!(max_age > 0, "cold path never exercised");
        }
    }

    #[test]
    fn ratio_one_is_fully_synchronous_adam() {
        // Every subgroup hot every step: identical to plain full steps.
        let cfg = ZenFlowConfig { importance_ratio: 1.0, staleness_bound: 3 };
        let (zen, max_age) = run_pipeline(32, 8, cfg, 4, false);
        let mut plain = fresh(32);
        for t in 0..4 {
            plain.full_step(&grads(32, t));
        }
        assert_bitwise(&zen, &plain);
        assert_eq!(max_age, 0);
    }

    #[test]
    fn hot_count_clamps_and_rounds_up() {
        let cfg = ZenFlowConfig { importance_ratio: 0.1, staleness_bound: 1 };
        assert_eq!(cfg.hot_count(6), 1);
        assert_eq!(cfg.hot_count(0), 0);
        let third = ZenFlowConfig { importance_ratio: 0.34, staleness_bound: 1 };
        assert_eq!(third.hot_count(6), 3);
        let all = ZenFlowConfig { importance_ratio: 1.0, staleness_bound: 1 };
        assert_eq!(all.hot_count(6), 6);
        let zero = ZenFlowConfig { importance_ratio: 0.0, staleness_bound: 1 };
        assert_eq!(zero.hot_count(6), 1, "at least one subgroup stays hot");
    }

    #[test]
    fn hot_selection_tracks_gradient_magnitude() {
        // Put all the gradient energy in the last subgroup: it must be hot.
        let subgroups = partition_into_subgroups(24, 8);
        let mut g = vec![1e-3f32; 24];
        for x in &mut g[16..24] {
            *x = 0.9;
        }
        let cfg = ZenFlowConfig { importance_ratio: 0.34, staleness_bound: 1 };
        let hot = select_hot(&subgroups, &cfg, &g);
        assert!(hot.contains(&2), "high-energy subgroup not selected: {hot:?}");
    }

    #[test]
    fn drain_flushes_inflight_and_residue() {
        let cfg = ZenFlowConfig { importance_ratio: 0.25, staleness_bound: 3 };
        let subgroups = partition_into_subgroups(32, 8);
        let mut state = fresh(32);
        let mut pipe = ZenFlowPipeline::new(subgroups, cfg);
        pipe.step(&mut state, &grads(32, 0));
        // One step with S=3: cold subgroups hold residue, nothing flushed.
        assert_eq!(pipe.in_flight(), 0);
        pipe.drain(&mut state);
        let (ref_state, _) = run_reference(32, 8, cfg, 1);
        assert_bitwise(&state, &ref_state);
    }
}
