//! Update-phase schedulers: the two baselines, the paper's contribution,
//! and the ZenFlow-style asynchronous extension.
//!
//! All four implement [`UpdateScheduler`] over the update primitives of
//! [`IterationScenario`]; Figure 5 of the paper illustrates the first three
//! schedules (TwinFlow on top, Deep Optimizer States below), and
//! [`ZenFlowAsync`] breaks the iteration barrier entirely (arXiv
//! 2505.12242): the important subgroups update on-GPU inside the
//! iteration while the cold bulk's CPU updates spill into the next
//! iteration's forward/backward under a bounded-staleness window.

use std::cell::RefCell;
use std::collections::VecDeque;

use dos_hal::{OpId, SimError};
use dos_sim::{IterationScenario, UpdateScheduler};
use dos_zero::SubgroupSpec;

use crate::perf_model::PerfModel;

/// How Deep Optimizer States chooses its update stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StridePolicy {
    /// Solve Equation 1 for the scenario's hardware profile (§4.2).
    Auto,
    /// Force a fixed stride `k` (every k-th subgroup on the GPU) — used by
    /// the Figure 15/16 sweeps and the §5.4 V100 validation.
    Fixed(usize),
    /// Never schedule dynamic subgroups on the GPU.
    CpuOnly,
    /// Let the `dos-control` feedback controller retune the stride online
    /// from observed throughputs. Standalone (no controller attached, e.g.
    /// a single-shot `simulate_iteration`) this seeds itself exactly like
    /// [`StridePolicy::Auto`]; controller-driven loops re-resolve it every
    /// iteration through a hysteresis band.
    Adaptive,
}

/// DeepSpeed ZeRO-3 with the optimizer fully offloaded to the CPU: every
/// subgroup is updated on the CPU, downscaled, and its FP16 parameters
/// H2D-copied *blocking* — the CPU idles during each transfer (Figure 5
/// top, with zero static residents).
#[derive(Debug, Clone, Copy, Default)]
pub struct Zero3Offload;

/// DeepSpeed TwinFlow (ZeRO-Offload++): the first
/// `ratio × n` subgroups (from the scenario's
/// `offload.gpu_resident_ratio`) live statically on the GPU and update
/// there first — the CPU idling meanwhile — then the host-resident
/// remainder updates on the CPU with blocking H2D copies (Figure 5 top).
#[derive(Debug, Clone, Copy, Default)]
pub struct TwinFlow;

/// Deep Optimizer States (§4): every k-th subgroup is prefetched to the
/// GPU, updated there, and flushed back, fully overlapped with the CPU
/// updates/downscales of the others and with the H2D copies of CPU-updated
/// parameters; static residents are placed *last* so their GPU updates
/// overlap the trailing transfers (Figure 5 bottom).
#[derive(Debug, Clone, Copy)]
pub struct DeepOptimizerStates {
    /// Stride selection policy.
    pub stride: StridePolicy,
    /// Place static residents at the tail of the subgroup order (the
    /// paper's improvement over TwinFlow's head placement, §4.1). Setting
    /// this to `false` is the `ablation_static_placement` configuration.
    pub residents_at_tail: bool,
}

impl Default for DeepOptimizerStates {
    fn default() -> Self {
        DeepOptimizerStates { stride: StridePolicy::Auto, residents_at_tail: true }
    }
}

impl DeepOptimizerStates {
    /// Resolves the stride for a scenario.
    pub fn resolve_stride(&self, scn: &IterationScenario) -> Option<usize> {
        match self.stride {
            StridePolicy::Auto | StridePolicy::Adaptive => {
                PerfModel::new(scn.cfg.profile.perf_model_inputs()).optimal_stride()
            }
            StridePolicy::Fixed(k) => Some(k.max(1)),
            StridePolicy::CpuOnly => None,
        }
    }
}

/// ZenFlow-style stall-free updates (arXiv 2505.12242): the importance
/// partition's hot subset (top-p gradient norm; the first
/// `ceil(importance_ratio × n)` subgroups stand in for it here, since
/// same-sized subgroups make the timing identical) updates on the GPU
/// inside the iteration, while the cold bulk's CPU update + downscale +
/// H2D chains are *not* joined into the returned op — under
/// [`dos_sim::simulate_training`]'s shared engine they run during the next
/// iteration's forward/backward. A bounded-staleness window `S` limits how
/// many cold batches may be in flight: pushing past it inserts a drain
/// barrier that joins the oldest batch into the iteration boundary, so the
/// cold update of iteration *i* always lands before the forward pass of
/// iteration *i + S + 1*. `S = 0` degenerates to a fully synchronous
/// schedule.
///
/// Unlike [`DeepOptimizerStates`] this scheduler never toggles the DRAM
/// contention factor: its CPU work runs under the next iteration's
/// forward/backward, whose PCIe traffic pattern the single-phase
/// contention model does not describe.
///
/// The pending-batch window lives inside the scheduler value, so one
/// instance must drive one engine: [`dos_sim::simulate_training`] (one
/// shared engine) is the intended driver, and single-shot
/// [`dos_sim::simulate_iteration`] calls are fine because each constructs
/// a fresh scheduler. Do not reuse an instance across
/// `simulate_training_controlled`'s per-iteration engines — the stashed
/// [`OpId`]s would not survive the engine swap.
#[derive(Debug, Clone)]
pub struct ZenFlowAsync {
    /// Fraction of subgroups in the hot (GPU-updated, in-iteration)
    /// importance subset. Clamped to `[0, 1]`; at least one subgroup goes
    /// hot for any positive ratio.
    pub importance_ratio: f64,
    /// Bounded-staleness window `S`: how many cold update batches may
    /// remain un-joined past their iteration boundary. `0` is synchronous.
    pub staleness_bound: usize,
    /// Cold-batch completion ops not yet joined into an iteration
    /// boundary, oldest first.
    pending: RefCell<VecDeque<Vec<OpId>>>,
}

impl Default for ZenFlowAsync {
    fn default() -> Self {
        ZenFlowAsync {
            importance_ratio: 0.1,
            staleness_bound: 1,
            pending: RefCell::new(VecDeque::new()),
        }
    }
}

impl ZenFlowAsync {
    /// Creates the scheduler with an explicit importance ratio and
    /// staleness bound.
    pub fn new(importance_ratio: f64, staleness_bound: usize) -> ZenFlowAsync {
        ZenFlowAsync { importance_ratio, staleness_bound, ..Default::default() }
    }
}

impl UpdateScheduler for ZenFlowAsync {
    fn name(&self) -> &str {
        "zenflow-async"
    }

    fn schedule_update(
        &self,
        scn: &mut IterationScenario,
        grads_ready: OpId,
    ) -> Result<OpId, SimError> {
        let ratio = self.importance_ratio.clamp(0.0, 1.0);
        let (hot, cold) = split_residents(scn.subgroups(), ratio, true);

        let mut completion: Vec<OpId> = Vec::new();
        // Hot subset: GPU-resident importance set, updated immediately —
        // the only update work inside the iteration barrier.
        for sg in &hot {
            completion.push(scn.gpu_update(sg, &[grads_ready])?);
        }

        // Cold bulk: per-subgroup CPU update → downscale → H2D chains.
        // Their terminal ops form this iteration's batch, deliberately not
        // joined into the returned op so they overlap the next iteration.
        let mut batch: Vec<OpId> = Vec::with_capacity(cold.len());
        for sg in &cold {
            let u = scn.cpu_update(sg, &[grads_ready])?;
            let d = scn.cpu_downscale(sg, &[u])?;
            batch.push(scn.h2d_updated_params(sg, &[d])?);
        }

        let mut pending = self.pending.borrow_mut();
        if !batch.is_empty() {
            pending.push_back(batch);
        }
        // Drain barrier: joining the oldest batch(es) here gates the next
        // forward on their completion, enforcing the staleness bound.
        while pending.len() > self.staleness_bound {
            if let Some(oldest) = pending.pop_front() {
                completion.extend(oldest);
            }
        }
        drop(pending);

        let streams = scn.rank.streams;
        scn.rank.sim.join(streams.compute, completion)
    }
}

/// Splits subgroups into static GPU residents and dynamic ones.
/// `residents_first` picks TwinFlow's head placement; Deep Optimizer States
/// places residents at the tail (§4.1).
fn split_residents(
    subgroups: &[SubgroupSpec],
    ratio: f64,
    residents_first: bool,
) -> (Vec<SubgroupSpec>, Vec<SubgroupSpec>) {
    let n = subgroups.len();
    let n_static = ((ratio * n as f64).ceil() as usize).min(n);
    if residents_first {
        let (r, d) = subgroups.split_at(n_static);
        (r.to_vec(), d.to_vec())
    } else {
        let (d, r) = subgroups.split_at(n - n_static);
        (r.to_vec(), d.to_vec())
    }
}

/// The blocking CPU chain shared by both baselines: update → downscale →
/// H2D, each subgroup fully serialized behind the previous one's transfer.
fn blocking_cpu_chain(
    scn: &mut IterationScenario,
    subgroups: &[SubgroupSpec],
    mut last: OpId,
) -> Result<OpId, SimError> {
    for sg in subgroups {
        let u = scn.cpu_update(sg, &[last])?;
        let d = scn.cpu_downscale(sg, &[u])?;
        last = scn.h2d_updated_params(sg, &[d])?;
    }
    Ok(last)
}

impl UpdateScheduler for Zero3Offload {
    fn name(&self) -> &str {
        "zero3-offload"
    }

    fn schedule_update(
        &self,
        scn: &mut IterationScenario,
        grads_ready: OpId,
    ) -> Result<OpId, SimError> {
        let sgs = scn.subgroups().to_vec();
        blocking_cpu_chain(scn, &sgs, grads_ready)
    }
}

impl UpdateScheduler for TwinFlow {
    fn name(&self) -> &str {
        "twinflow"
    }

    fn schedule_update(
        &self,
        scn: &mut IterationScenario,
        grads_ready: OpId,
    ) -> Result<OpId, SimError> {
        let ratio = scn.cfg.offload.gpu_resident_ratio;
        let (residents, dynamic) = split_residents(scn.subgroups(), ratio, true);
        // GPU updates the static residents while the CPU idles
        // (§4.1 observation (a)).
        let mut last = grads_ready;
        for sg in &residents {
            last = scn.gpu_update(sg, &[last])?;
        }
        blocking_cpu_chain(scn, &dynamic, last)
    }
}

impl UpdateScheduler for DeepOptimizerStates {
    fn name(&self) -> &str {
        "deep-optimizer-states"
    }

    fn schedule_update(
        &self,
        scn: &mut IterationScenario,
        grads_ready: OpId,
    ) -> Result<OpId, SimError> {
        let ratio = scn.cfg.offload.gpu_resident_ratio;
        let (residents, dynamic) =
            split_residents(scn.subgroups(), ratio, !self.residents_at_tail);
        let stride = self.resolve_stride(scn);

        let interleaving = stride.is_some_and(|k| dynamic.len() > k.saturating_sub(1));
        if interleaving {
            // Concurrent PCIe traffic contends with CPU updates for DRAM
            // bandwidth (Figure 15's CPU-utilization dip).
            scn.apply_update_contention();
        }

        let mut completion: Vec<OpId> = Vec::new();
        // CPU subgroups of the current stride cycle awaiting downscale+H2D.
        let mut cycle_cpu: Vec<(SubgroupSpec, OpId)> = Vec::new();
        let mut prev_gpu_update: Option<OpId> = None;

        if self.residents_at_tail {
            // The paper's placement: the residents are the *last* subgroups
            // in index order, so their updates need no parameter H2D at the
            // end of the phase and simply fill idle GPU gaps between the
            // dynamic subgroups' updates, overlapping all pending transfers
            // (§4.1). They depend only on gradient availability.
            for sg in &residents {
                let upd = scn.gpu_update(sg, &[grads_ready])?;
                completion.push(upd);
            }
        } else {
            // Ablation: TwinFlow-style head placement — the dynamic
            // pipeline cannot start until the residents are done.
            let mut prev = grads_ready;
            for sg in &residents {
                prev = scn.gpu_update(sg, &[prev])?;
                completion.push(prev);
            }
            prev_gpu_update = Some(prev);
        }

        let drain =
            |scn: &mut IterationScenario,
             cycle: &mut Vec<(SubgroupSpec, OpId)>,
             completion: &mut Vec<OpId>|
             -> Result<(), SimError> {
                for (sg, u) in cycle.drain(..) {
                    let d = scn.cpu_downscale(&sg, &[u])?;
                    let t = scn.h2d_updated_params(&sg, &[d])?;
                    completion.push(t);
                }
                Ok(())
            };

        for (i, sg) in dynamic.iter().enumerate() {
            let on_gpu = stride.is_some_and(|k| (i + 1) % k == 0);
            if on_gpu {
                // Prefetch was launched as soon as the previous GPU update
                // finished (Algorithm 1 lines 8–10); the first prefetch
                // starts with the update phase itself.
                let pre_deps = match prev_gpu_update {
                    Some(op) => vec![op],
                    None => vec![grads_ready],
                };
                let pre = scn.prefetch_subgroup(sg, &pre_deps)?;
                let upd = scn.gpu_update(sg, &[pre])?;
                let flush = scn.flush_subgroup(sg, &[upd])?;
                completion.push(flush.params_ready);
                prev_gpu_update = Some(upd);
                // The CPU downscales the cycle's subgroups while the GPU
                // updates (Algorithm 1 line 6).
                drain(scn, &mut cycle_cpu, &mut completion)?;
            } else {
                let u = scn.cpu_update(sg, &[grads_ready])?;
                cycle_cpu.push((*sg, u));
            }
        }
        drain(scn, &mut cycle_cpu, &mut completion)?;


        if interleaving {
            scn.clear_update_contention();
        }
        let streams = scn.rank.streams;
        scn.rank.sim.join(streams.compute, completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_hal::HardwareProfile;
    use dos_nn::ModelSpec;
    use dos_sim::{simulate_iteration, simulate_training, TrainConfig};
    use dos_zero::OffloadConfig;

    fn baseline_cfg(model: &str) -> TrainConfig {
        TrainConfig::baseline(ModelSpec::by_name(model).unwrap(), HardwareProfile::jlse_h100())
    }

    fn dos_cfg(model: &str) -> TrainConfig {
        TrainConfig::deep_optimizer_states(
            ModelSpec::by_name(model).unwrap(),
            HardwareProfile::jlse_h100(),
        )
    }

#[test]
    fn zenflow_defers_cold_updates_past_the_iteration_barrier() {
        // With S >= 1 the cold bulk books as spill (un-joined async work)
        // and the joined update phase is just the hot GPU subset.
        let mut cfg = baseline_cfg("20B");
        cfg.offload.gpu_resident_ratio = 0.1;
        let zf = simulate_iteration(&cfg, &ZenFlowAsync::new(0.1, 1)).unwrap();
        let zero3 = simulate_iteration(&baseline_cfg("20B"), &Zero3Offload).unwrap();
        assert!(zf.spill_secs > 1.0, "cold work not deferred: {:.3}", zf.spill_secs);
        assert!(
            zf.update_secs < 0.1 * zero3.update_secs,
            "hot-only update {:.3}s not stall-free vs zero3 {:.3}s",
            zf.update_secs,
            zero3.update_secs
        );
    }

    #[test]
    fn zenflow_staleness_zero_is_fully_synchronous() {
        // S = 0 drains every batch inside its own iteration: no spill, and
        // the update phase carries the full hot + cold chain.
        let mut cfg = baseline_cfg("20B");
        cfg.offload.gpu_resident_ratio = 0.1;
        let sync = simulate_iteration(&cfg, &ZenFlowAsync::new(0.1, 0)).unwrap();
        assert!(sync.spill_secs < 1e-9, "synchronous run spilled {:.3}s", sync.spill_secs);
        let deferred = simulate_iteration(&cfg, &ZenFlowAsync::new(0.1, 1)).unwrap();
        assert!(sync.update_secs > 10.0 * deferred.update_secs);
    }

    #[test]
    fn zenflow_training_beats_synchronous_and_zero3() {
        // Over a multi-iteration run the deferred cold updates hide under
        // the next iteration's fwd/bwd: ~12% faster than the S=0 drain-
        // every-step schedule and ~25% faster than ZeRO-3 on 20B.
        let mut cfg = baseline_cfg("20B");
        cfg.offload.gpu_resident_ratio = 0.1;
        let async1 = simulate_training(&cfg, &ZenFlowAsync::new(0.1, 1), 6).unwrap();
        let sync0 = simulate_training(&cfg, &ZenFlowAsync::new(0.1, 0), 6).unwrap();
        let zero3 = simulate_training(&baseline_cfg("20B"), &Zero3Offload, 6).unwrap();
        let vs_sync = sync0.avg_iteration_secs / async1.avg_iteration_secs;
        let vs_zero3 = zero3.avg_iteration_secs / async1.avg_iteration_secs;
        assert!((1.05..1.4).contains(&vs_sync), "gain vs synchronous {vs_sync:.2}");
        assert!((1.15..1.6).contains(&vs_zero3), "gain vs zero3 {vs_zero3:.2}");
    }

    #[test]
    fn zenflow_iteration_time_is_monotone_in_staleness() {
        // Looser bounds can only help (or match): S=0 >= S=1 >= S=3.
        let mut cfg = baseline_cfg("20B");
        cfg.offload.gpu_resident_ratio = 0.1;
        let avg = |s: usize| {
            simulate_training(&cfg, &ZenFlowAsync::new(0.1, s), 6)
                .unwrap()
                .avg_iteration_secs
        };
        let (s0, s1, s3) = (avg(0), avg(1), avg(3));
        assert!(s0 >= s1 - 1e-9, "S=0 ({s0:.3}) faster than S=1 ({s1:.3})");
        assert!(s1 >= s3 - 1e-9, "S=1 ({s1:.3}) faster than S=3 ({s3:.3})");
    }

    #[test]
    fn zenflow_cold_updates_run_under_the_next_iterations_fwd_bwd() {
        // The ZenFlow claim, machine-checked on the trace: deferred CPU
        // updates of iteration i overlap the GPU's forward/backward work
        // of iteration i+1. The synchronous baseline shows ~zero overlap.
        use dos_sim::simulate_training_timeline;
        use dos_telemetry::cross_phase_overlap_secs;
        let mut cfg = baseline_cfg("20B");
        cfg.offload.gpu_resident_ratio = 0.1;
        let (_, tl) =
            simulate_training_timeline(&cfg, &ZenFlowAsync::new(0.1, 1), 4).unwrap();
        let covered = cross_phase_overlap_secs(&tl, "update", "cpu", "forward", "gpu")
            + cross_phase_overlap_secs(&tl, "update", "cpu", "backward", "gpu");
        assert!(covered > 1.0, "cold cpu updates not hidden under fwd/bwd: {covered:.3}s");

        let (_, tl3) =
            simulate_training_timeline(&baseline_cfg("20B"), &Zero3Offload, 4).unwrap();
        let covered3 = cross_phase_overlap_secs(&tl3, "update", "cpu", "forward", "gpu")
            + cross_phase_overlap_secs(&tl3, "update", "cpu", "backward", "gpu");
        assert!(
            covered3 < 1e-9,
            "zero3 should have no cross-iteration overlap: {covered3:.3}s"
        );
    }

    #[test]
    fn dos_beats_zero3_by_2x_or_more_on_20b() {
        let zero3 = simulate_iteration(&baseline_cfg("20B"), &Zero3Offload).unwrap();
        let dos =
            simulate_iteration(&dos_cfg("20B"), &DeepOptimizerStates::default()).unwrap();
        let speedup = zero3.total_secs / dos.total_secs;
        assert!(
            (1.9..3.2).contains(&speedup),
            "iteration speedup {speedup:.2} outside the paper's 2-2.5x band \
             (zero3 {:.2}s, dos {:.2}s)",
            zero3.total_secs,
            dos.total_secs
        );
    }

    #[test]
    fn update_throughput_gain_matches_figure8() {
        // Figure 8: ~70% higher update throughput than ZeRO-3 on average.
        let zero3 = simulate_iteration(&baseline_cfg("20B"), &Zero3Offload).unwrap();
        let dos =
            simulate_iteration(&dos_cfg("20B"), &DeepOptimizerStates::default()).unwrap();
        let gain = dos.update_pps_per_rank / zero3.update_pps_per_rank;
        assert!((1.4..2.3).contains(&gain), "update gain {gain:.2}");
    }

    #[test]
    fn twinflow_with_ratio_beats_plain_zero3() {
        let mut cfg = baseline_cfg("20B");
        cfg.offload = OffloadConfig { gpu_resident_ratio: 0.2, ..cfg.offload };
        let twin = simulate_iteration(&cfg, &TwinFlow).unwrap();
        let zero3 = simulate_iteration(&baseline_cfg("20B"), &Zero3Offload).unwrap();
        assert!(twin.update_secs < zero3.update_secs);
        // Figure 12's scale: ~20% faster updates at ratio 0.2.
        let gain = zero3.update_secs / twin.update_secs;
        assert!((1.1..1.5).contains(&gain), "twinflow gain {gain:.2}");
    }

    #[test]
    fn dos_beats_twinflow_at_every_ratio() {
        // Figure 10: at least 1.7x faster updates at every static ratio.
        for ratio in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
            let mut tcfg = baseline_cfg("20B");
            tcfg.offload.gpu_resident_ratio = ratio;
            let mut dcfg = dos_cfg("20B");
            dcfg.offload.gpu_resident_ratio = ratio;
            let twin = simulate_iteration(&tcfg, &TwinFlow).unwrap();
            let dos = simulate_iteration(&dcfg, &DeepOptimizerStates::default()).unwrap();
            let gain = twin.update_secs / dos.update_secs;
            assert!(
                gain > 1.5,
                "ratio {ratio}: gain {gain:.2} (twin {:.2}s, dos {:.2}s)",
                twin.update_secs,
                dos.update_secs
            );
        }
    }

    #[test]
    fn stride_2_is_empirically_optimal_on_h100() {
        // Figure 16: 50% of updates on the GPU (k = 2) maximizes throughput.
        let mut best = (0usize, f64::INFINITY);
        for k in 2..=5 {
            let sched = DeepOptimizerStates { stride: StridePolicy::Fixed(k), ..Default::default() };
            let r = simulate_iteration(&dos_cfg("20B"), &sched).unwrap();
            if r.update_secs < best.1 {
                best = (k, r.update_secs);
            }
        }
        assert_eq!(best.0, 2, "best stride {} at {:.2}s", best.0, best.1);
    }

    /// How much link slack does the interleaved schedule have before
    /// Eq. 1's k* stops being optimal? A mild PCIe H2D degradation is
    /// absorbed (k* = 2 still wins, as in Figure 16); a severe one makes
    /// GPU subgroups too expensive to feed and shifts the empirical
    /// optimum toward sparser interleaving (larger k).
    #[test]
    fn k_star_shifts_only_under_severe_pcie_degradation() {
        use dos_hal::{FaultPlan, SimTime};
        use dos_sim::simulate_iteration_faulted;

        let best_stride = |h2d_scale: f64| -> usize {
            let mut best = (0usize, f64::INFINITY);
            for k in 2..=5 {
                let sched = DeepOptimizerStates {
                    stride: StridePolicy::Fixed(k),
                    ..Default::default()
                };
                let plan = FaultPlan::seeded(0).degrade(
                    "pcie.h2d",
                    SimTime::ZERO,
                    SimTime::from_secs(1e9),
                    h2d_scale,
                );
                let tracer = dos_telemetry::Tracer::new();
                let r = simulate_iteration_faulted(&dos_cfg("20B"), &sched, Some(&plan), &tracer)
                    .unwrap();
                if r.update_secs < best.1 {
                    best = (k, r.update_secs);
                }
            }
            best.0
        };
        assert_eq!(best_stride(1.0), 2, "healthy link: Figure 16's optimum");
        assert_eq!(best_stride(0.85), 2, "15% slower H2D sits inside the schedule's slack");
        assert!(
            best_stride(0.15) > 2,
            "a severely degraded link must push the optimum to sparser interleaving"
        );
    }

    #[test]
    fn cpu_only_policy_matches_zero3_update_shape() {
        let sched = DeepOptimizerStates { stride: StridePolicy::CpuOnly, ..Default::default() };
        let dos = simulate_iteration(&dos_cfg("20B"), &sched).unwrap();
        let zero3 = simulate_iteration(&baseline_cfg("20B"), &Zero3Offload).unwrap();
        // Same work; DOS's pipelined downscale/H2D still overlaps slightly,
        // so allow a band.
        let ratio = dos.update_secs / zero3.update_secs;
        assert!((0.6..1.05).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn residents_split_head_vs_tail() {
        let sgs: Vec<SubgroupSpec> = (0..10)
            .map(|i| SubgroupSpec { id: i, start: i * 10, end: (i + 1) * 10 })
            .collect();
        let (r_head, d_head) = split_residents(&sgs, 0.2, true);
        assert_eq!(r_head.iter().map(|s| s.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(d_head.len(), 8);
        let (r_tail, d_tail) = split_residents(&sgs, 0.2, false);
        assert_eq!(r_tail.iter().map(|s| s.id).collect::<Vec<_>>(), vec![8, 9]);
        assert_eq!(d_tail.len(), 8);
    }

    #[test]
    fn memory_stays_balanced_under_interleaving() {
        let r = simulate_iteration(&dos_cfg("20B"), &DeepOptimizerStates::default()).unwrap();
        assert!(r.oom.is_none(), "unexpected OOM: {:?}", r.oom);
        assert!(r.gpu_peak_bytes > 0);
    }

    /// §5.4 / Figure 4: ZeRO-3 offloading leaves PCIe under 10% busy in
    /// either direction over the iteration — the NVML view the paper
    /// plots. Within the update window itself the only traffic is the
    /// blocking per-subgroup H2D of updated FP16 parameters (gradients
    /// flushed already during backward), so D2H is silent and H2D carries
    /// data less than a quarter of the time.
    #[test]
    fn zero3_leaves_pcie_under_10_percent_busy() {
        let r = simulate_iteration(&baseline_cfg("20B"), &Zero3Offload).unwrap();
        let analysis = dos_telemetry::analyze(&r.timeline);
        assert!(analysis.validate().is_empty(), "{:?}", analysis.validate());
        for dir in ["pcie.h2d", "pcie.d2h"] {
            let overall = r.timeline.overall_utilization(dir);
            assert!(overall < 0.10, "ZeRO-3 {dir} busy {overall:.3} >= 10% of the iteration");
        }
        assert_eq!(analysis.busy_fraction("update", "pcie.d2h"), 0.0);
        let h2d_update = analysis.busy_fraction("update", "pcie.h2d");
        assert!(
            h2d_update > 0.0 && h2d_update < 0.25,
            "ZeRO-3 update-window H2D busy {h2d_update:.3} outside (0, 0.25)"
        );
    }

    /// Figure 15 / §5.4: at the measured optimal stride, the DOS update
    /// runs GPU subgroup updates under cover of the CPU ones — at least
    /// half the GPU's update-phase busy time overlaps CPU busy time.
    #[test]
    fn dos_update_overlaps_cpu_and_gpu_at_least_half() {
        let r =
            simulate_iteration(&dos_cfg("20B"), &DeepOptimizerStates::default()).unwrap();
        let analysis = dos_telemetry::analyze(&r.timeline);
        assert!(analysis.validate().is_empty(), "{:?}", analysis.validate());
        let eff = analysis.overlap_efficiency("update", "cpu", "gpu");
        assert!(eff >= 0.5, "DOS update CPU/GPU overlap efficiency {eff:.3} < 50%");
        // And the interleaving keeps PCIe meaningfully busier than ZeRO-3.
        let zero3 = simulate_iteration(&baseline_cfg("20B"), &Zero3Offload).unwrap();
        let zero3_analysis = dos_telemetry::analyze(&zero3.timeline);
        assert!(
            analysis.busy_fraction("update", "pcie.h2d")
                > zero3_analysis.busy_fraction("update", "pcie.h2d")
        );
    }

    #[test]
    fn update_utilization_rises_with_interleaving() {
        let zero3 = simulate_iteration(&baseline_cfg("20B"), &Zero3Offload).unwrap();
        let dos =
            simulate_iteration(&dos_cfg("20B"), &DeepOptimizerStates::default()).unwrap();
        assert!(
            dos.update_utilization.gpu_nvml > zero3.update_utilization.gpu_nvml + 0.2,
            "gpu util {:?} vs {:?}",
            dos.update_utilization,
            zero3.update_utilization
        );
        assert!(dos.update_utilization.pcie_h2d > zero3.update_utilization.pcie_h2d);
    }
}
