//! Human-readable explanation of the schedule Equation 1 picks.
//!
//! The middleware's decisions are derived, not configured; this module
//! makes them inspectable: which stride was solved, how the subgroups are
//! split across devices, and what the performance model predicts the
//! choice buys over CPU-only updates. Backs the CLI's `--explain` flag.

use std::fmt;

use dos_hal::PerfModelInputs;
use dos_sim::TrainConfig;
use dos_zero::ZeroPartition;

use crate::perf_model::PerfModel;

/// The resolved update schedule for one configuration, with the model's
/// reasoning.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleExplanation {
    /// Machine name.
    pub machine: String,
    /// Model name.
    pub model: String,
    /// Equation 1 inputs (params/s).
    pub inputs: PerfModelInputs,
    /// The real-valued Equation 1 solution, if the denominator is positive.
    pub raw_stride: Option<f64>,
    /// The integer stride (every k-th subgroup on the GPU).
    pub stride: Option<usize>,
    /// Subgroups in this rank's shard.
    pub subgroups: usize,
    /// Static GPU residents (from the TwinFlow-style ratio).
    pub static_residents: usize,
    /// Dynamic subgroups scheduled on the GPU.
    pub gpu_subgroups: usize,
    /// Subgroups updated on the CPU.
    pub cpu_subgroups: usize,
    /// Predicted update seconds if everything stayed on the CPU.
    pub predicted_cpu_only_secs: f64,
    /// Predicted update seconds under the chosen stride.
    pub predicted_chosen_secs: f64,
}

impl ScheduleExplanation {
    /// Predicted speedup of the chosen schedule over CPU-only updates.
    pub fn predicted_speedup(&self) -> f64 {
        if self.predicted_chosen_secs > 0.0 {
            self.predicted_cpu_only_secs / self.predicted_chosen_secs
        } else {
            1.0
        }
    }
}

impl fmt::Display for ScheduleExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule for {} on {}:", self.model, self.machine)?;
        writeln!(
            f,
            "  Eq. 1 inputs: B={:.2} B P/s, Ug={:.1}, Uc={:.2}, Dc={:.2}",
            self.inputs.b / 1e9,
            self.inputs.ug / 1e9,
            self.inputs.uc / 1e9,
            self.inputs.dc / 1e9,
        )?;
        match (self.raw_stride, self.stride) {
            (Some(raw), Some(k)) => writeln!(
                f,
                "  raw k = {raw:.2} -> stride {k}: every {k}th subgroup updates on the GPU"
            )?,
            _ => writeln!(f, "  CPU side outpaces staging: all updates stay on the CPU")?,
        }
        writeln!(
            f,
            "  subgroups: {} total = {} GPU-dynamic + {} CPU + {} static residents",
            self.subgroups, self.gpu_subgroups, self.cpu_subgroups, self.static_residents,
        )?;
        write!(
            f,
            "  predicted update: {:.2}s vs {:.2}s CPU-only ({:.2}x)",
            self.predicted_chosen_secs,
            self.predicted_cpu_only_secs,
            self.predicted_speedup(),
        )
    }
}

/// Explains the schedule Deep Optimizer States would run for `cfg`.
pub fn explain_schedule(cfg: &TrainConfig) -> ScheduleExplanation {
    let inputs = cfg.profile.perf_model_inputs();
    let model = PerfModel::new(inputs);
    let raw_stride = model.raw_stride();
    let stride = model.optimal_stride();

    let part = ZeroPartition::new(cfg.stage, cfg.world, 0);
    let subgroups =
        part.subgroups(cfg.spec.param_count() as usize, cfg.offload.subgroup_params).len();
    let static_residents =
        ((cfg.offload.gpu_resident_ratio * subgroups as f64).ceil() as usize).min(subgroups);
    let dynamic = subgroups - static_residents;
    let gpu_subgroups = match stride {
        Some(k) => dynamic / k,
        None => 0,
    };

    let params = cfg.params_per_rank() as f64 * (dynamic as f64 / subgroups.max(1) as f64);
    let sg = cfg.offload.subgroup_params as f64;
    ScheduleExplanation {
        machine: cfg.profile.name.clone(),
        model: cfg.spec.name.clone(),
        inputs,
        raw_stride,
        stride,
        subgroups,
        static_residents,
        gpu_subgroups,
        cpu_subgroups: dynamic - gpu_subgroups,
        predicted_cpu_only_secs: model.predicted_update_secs(params, sg, None),
        predicted_chosen_secs: model.predicted_update_secs(params, sg, stride),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dos_hal::HardwareProfile;
    use dos_nn::ModelSpec;

    fn cfg() -> TrainConfig {
        TrainConfig::deep_optimizer_states(
            ModelSpec::by_name("20B").unwrap(),
            HardwareProfile::jlse_h100(),
        )
    }

    #[test]
    fn explanation_is_consistent() {
        let e = explain_schedule(&cfg());
        assert_eq!(e.stride, Some(2));
        assert_eq!(e.subgroups, 56);
        assert_eq!(e.static_residents, 0);
        assert_eq!(e.gpu_subgroups + e.cpu_subgroups, 56);
        assert_eq!(e.gpu_subgroups, 28);
        assert!(e.predicted_speedup() > 1.3, "{}", e.predicted_speedup());
    }

    #[test]
    fn residents_reduce_dynamic_subgroups() {
        let mut c = cfg();
        c.offload.gpu_resident_ratio = 0.25;
        let e = explain_schedule(&c);
        assert_eq!(e.static_residents, 14);
        assert_eq!(e.gpu_subgroups + e.cpu_subgroups + e.static_residents, 56);
    }

    #[test]
    fn display_reads_like_an_explanation() {
        let text = explain_schedule(&cfg()).to_string();
        assert!(text.contains("raw k = 1.80 -> stride 2"), "{text}");
        assert!(text.contains("every 2th subgroup"), "{text}");
        assert!(text.contains("predicted update"), "{text}");
    }

    #[test]
    fn grace_hopper_explains_all_gpu() {
        let c = TrainConfig::deep_optimizer_states(
            ModelSpec::by_name("20B").unwrap(),
            HardwareProfile::grace_hopper(),
        );
        let e = explain_schedule(&c);
        assert_eq!(e.stride, Some(1));
        assert_eq!(e.cpu_subgroups, 0);
    }
}
