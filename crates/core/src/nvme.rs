//! NVMe-tier optimizer offloading (the paper's §6 future work, in the
//! spirit of ZeRO-Infinity).
//!
//! When even host DRAM cannot hold the FP32 optimizer state (the paper
//! notes LLaMA-33B already exceeds its 512 GB testbed, §5.3), the state
//! moves to NVMe and subgroups stream through a small host staging window:
//! read from NVMe → update (CPU, or GPU via the interleaved path) → write
//! back. The schedulers here pipeline that stream so NVMe reads of the next
//! subgroup overlap the update of the current one.

use dos_hal::{OpId, SimError};
use dos_sim::{IterationScenario, UpdateScheduler};

use crate::perf_model::PerfModel;
use crate::schedulers::StridePolicy;

/// Update scheduler for NVMe-resident optimizer state.
///
/// With `interleave` disabled this is a ZeRO-Infinity-style CPU update
/// pipeline; enabled, every k-th subgroup additionally hops host→GPU for
/// its update, exactly like [`DeepOptimizerStates`](crate::DeepOptimizerStates)
/// one tier up.
#[derive(Debug, Clone, Copy)]
pub struct NvmeOffload {
    /// Interleave every k-th subgroup onto the GPU.
    pub interleave: bool,
    /// Stride policy when interleaving (`Auto` solves Equation 1 with the
    /// machine's PCIe-side inputs; the NVMe link is usually the binding
    /// constraint anyway).
    pub stride: StridePolicy,
}

impl Default for NvmeOffload {
    fn default() -> Self {
        NvmeOffload { interleave: true, stride: StridePolicy::Auto }
    }
}

impl NvmeOffload {
    fn resolve_stride(&self, scn: &IterationScenario) -> Option<usize> {
        if !self.interleave {
            return None;
        }
        match self.stride {
            StridePolicy::Auto | StridePolicy::Adaptive => {
                // On the NVMe tier the effective staging rate `B` of
                // Equation 1 is bounded by the drive, not PCIe: streaming a
                // subgroup's 12-byte-per-parameter state through NVMe caps
                // B at `nvme_bw / 12` params/s. On spinning-rust-adjacent
                // bandwidths the denominator goes non-positive and the
                // model (correctly) refuses to interleave.
                let mut inputs = scn.cfg.profile.perf_model_inputs();
                let b_nvme = scn.cfg.profile.nvme_read_bw.min(scn.cfg.profile.nvme_write_bw)
                    / 12.0;
                inputs.b = inputs.b.min(b_nvme);
                PerfModel::new(inputs).optimal_stride()
            }
            StridePolicy::Fixed(k) => Some(k.max(1)),
            StridePolicy::CpuOnly => None,
        }
    }
}

impl UpdateScheduler for NvmeOffload {
    fn name(&self) -> &str {
        if self.interleave {
            "dos-nvme-offload"
        } else {
            "zero-infinity-nvme"
        }
    }

    fn schedule_update(
        &self,
        scn: &mut IterationScenario,
        grads_ready: OpId,
    ) -> Result<OpId, SimError> {
        let sgs = scn.subgroups().to_vec();
        let stride = self.resolve_stride(scn);
        let mut completion: Vec<OpId> = Vec::new();
        let mut prev_gpu_update: Option<OpId> = None;
        // The staging window holds 4 subgroups: the read of subgroup i must
        // wait until subgroup i-4 has drained back to NVMe.
        let mut drains: Vec<OpId> = Vec::new();

        for (i, sg) in sgs.iter().enumerate() {
            let mut read_deps = vec![grads_ready];
            if i >= 4 {
                read_deps.push(drains[i - 4]);
            }
            let read = scn.nvme_read_subgroup(sg, &read_deps)?;
            let on_gpu = stride.is_some_and(|k| (i + 1) % k == 0);
            let drained = if on_gpu {
                let mut pre_deps = vec![read];
                if let Some(op) = prev_gpu_update {
                    pre_deps.push(op);
                }
                let pre = scn.prefetch_subgroup(sg, &pre_deps)?;
                let upd = scn.gpu_update(sg, &[pre])?;
                let flush = scn.flush_subgroup(sg, &[upd])?;
                completion.push(flush.params_ready);
                prev_gpu_update = Some(upd);
                scn.nvme_write_subgroup(sg, &[flush.flushed])?
            } else {
                let u = scn.cpu_update(sg, &[read])?;
                let d = scn.cpu_downscale(sg, &[u])?;
                let t = scn.h2d_updated_params(sg, &[d])?;
                completion.push(t);
                scn.nvme_write_subgroup(sg, &[u])?
            };
            drains.push(drained);
        }
        // The next iteration only needs the GPU-side FP16 parameters; NVMe
        // write-back may spill, but the *last* window must drain before the
        // next update phase reuses it — include the final drain.
        if let Some(&last) = drains.last() {
            completion.push(last);
        }
        let streams = scn.rank.streams;
        scn.rank.sim.join(streams.compute, completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulers::Zero3Offload;
    use dos_hal::HardwareProfile;
    use dos_nn::ModelSpec;
    use dos_sim::{simulate_iteration, TrainConfig};

    fn nvme_cfg(model: &str) -> TrainConfig {
        let mut cfg = TrainConfig::deep_optimizer_states(
            ModelSpec::by_name(model).unwrap(),
            HardwareProfile::jlse_h100(),
        );
        cfg.offload.optimizer_on_nvme = true;
        cfg
    }

    #[test]
    fn host_offload_of_33b_overflows_dram_but_nvme_fits() {
        let host_cfg = TrainConfig::deep_optimizer_states(
            ModelSpec::by_name("33B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        let host = simulate_iteration(&host_cfg, &Zero3Offload).unwrap();
        assert!(host.host_oom.is_some(), "33B should overflow 512 GB DRAM");

        let nvme = simulate_iteration(&nvme_cfg("33B"), &NvmeOffload::default()).unwrap();
        assert!(nvme.host_oom.is_none(), "NVMe tier should fit: {:?}", nvme.host_oom);
        assert!(nvme.oom.is_none());
    }

    #[test]
    fn auto_stride_refuses_gpu_on_nvme_tier() {
        let cfg = nvme_cfg("20B");
        let scn = dos_sim::IterationScenario::new(cfg);
        assert_eq!(NvmeOffload::default().resolve_stride(&scn), None);
    }

    #[test]
    fn nvme_is_slower_than_host_offload() {
        let host_cfg = TrainConfig::deep_optimizer_states(
            ModelSpec::by_name("20B").unwrap(),
            HardwareProfile::jlse_h100(),
        );
        let host = simulate_iteration(&host_cfg, &crate::DeepOptimizerStates::default()).unwrap();
        let nvme = simulate_iteration(&nvme_cfg("20B"), &NvmeOffload::default()).unwrap();
        assert!(
            nvme.update_secs > 1.5 * host.update_secs,
            "NVMe {:.2}s vs host {:.2}s",
            nvme.update_secs,
            host.update_secs
        );
    }

    #[test]
    fn interleaving_does_not_pay_when_nvme_bound() {
        // The NVMe drive, not the CPU, is the bottleneck on this tier:
        // forcing GPU interleaving only adds staging dependencies, and the
        // generalized Equation 1 (B capped by the drive) correctly refuses
        // to schedule any subgroup on the GPU.
        let plain = simulate_iteration(
            &nvme_cfg("20B"),
            &NvmeOffload { interleave: false, stride: StridePolicy::CpuOnly },
        )
        .unwrap();
        let forced = simulate_iteration(
            &nvme_cfg("20B"),
            &NvmeOffload { interleave: true, stride: StridePolicy::Fixed(2) },
        )
        .unwrap();
        assert!(
            forced.update_secs > plain.update_secs,
            "forced interleave {:.2}s should lose to plain {:.2}s",
            forced.update_secs,
            plain.update_secs
        );
        let auto = simulate_iteration(&nvme_cfg("20B"), &NvmeOffload::default()).unwrap();
        assert!(
            (auto.update_secs - plain.update_secs).abs() < 0.05 * plain.update_secs,
            "auto ({:.2}s) should match the CPU-only schedule ({:.2}s)",
            auto.update_secs,
            plain.update_secs
        );
    }

    #[test]
    fn staging_window_bounds_host_memory() {
        let r = simulate_iteration(&nvme_cfg("20B"), &NvmeOffload::default()).unwrap();
        assert!(r.host_oom.is_none());
        // Update time is bounded below by streaming all state through NVMe.
        let cfg = nvme_cfg("20B");
        let bytes = 12.0 * cfg.params_per_rank() as f64;
        let floor = bytes / cfg.profile.nvme_read_bw;
        assert!(r.update_secs >= floor * 0.9, "{} < NVMe floor {}", r.update_secs, floor);
    }
}
