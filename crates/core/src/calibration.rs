//! Measuring Equation 1's inputs on the machine at hand.
//!
//! The paper derives the update stride from four *measured* throughputs
//! (§5.4 does exactly this on a second machine to show platform
//! independence). This module performs those measurements with the
//! reproduction's own functional kernels: CPU update throughput `U_c` from
//! real Adam steps, downscale throughput `D_c` from the FP32→FP16
//! converter, and a memory-bandwidth proxy for the staging rate `B`.
//! The "GPU" update rate `U_g` has no hardware to measure here, so it is
//! supplied by the caller (e.g., from a profile).
//!
//! Measurements use `std::time::Instant` and are inherently machine- and
//! load-dependent; tests only assert positivity and model well-formedness.

use std::time::Instant;

use dos_hal::PerfModelInputs;
use dos_optim::{MixedPrecisionState, UpdateRule};
use dos_tensor::convert::downscale_f32_chunked;
use dos_tensor::F16;

use crate::perf_model::PerfModel;

/// Relative spread of the timed rounds behind each median: `(max − min) /
/// median` of the per-round durations. Large values mean the machine was
/// noisy while calibrating and the solved stride deserves less trust —
/// `dos-cli calibrate` prints these next to each input.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CalibrationSpread {
    /// Spread of the `U_c` (CPU Adam update) rounds.
    pub cpu_update: f64,
    /// Spread of the `D_c` (FP32→FP16 downscale) rounds.
    pub cpu_downscale: f64,
    /// Spread of the `B`-proxy (host memcpy) rounds.
    pub staging: f64,
}

impl CalibrationSpread {
    /// The worst (largest) spread across the three measured inputs.
    pub fn max(&self) -> f64 {
        self.cpu_update.max(self.cpu_downscale).max(self.staging)
    }
}

/// Raw measurements from one calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationReport {
    /// Measured CPU Adam-update throughput, params/s.
    pub cpu_update_pps: f64,
    /// Measured FP32→FP16 downscale throughput, params/s.
    pub cpu_downscale_pps: f64,
    /// Measured host memcpy throughput as the staging proxy, params/s of
    /// FP32 state (bytes/s ÷ 4).
    pub staging_pps: f64,
    /// Elements used per measurement.
    pub elements: usize,
    /// Timed rounds behind each median.
    pub rounds: usize,
    /// Relative round-to-round spread behind each median.
    pub spread: CalibrationSpread,
}

impl CalibrationReport {
    /// Builds Equation-1 inputs, supplying the GPU rate externally.
    pub fn perf_model_inputs(&self, gpu_update_pps: f64) -> PerfModelInputs {
        PerfModelInputs {
            b: self.staging_pps,
            ug: gpu_update_pps,
            uc: self.cpu_update_pps,
            dc: self.cpu_downscale_pps,
        }
    }

    /// Solves Equation 1 with the measured inputs.
    pub fn perf_model(&self, gpu_update_pps: f64) -> PerfModel {
        PerfModel::new(self.perf_model_inputs(gpu_update_pps))
    }
}

/// One warmup round, then the median and relative spread of `rounds`
/// timed rounds of `iters` invocations each.
fn time_per_iter<F: FnMut()>(mut f: F, iters: usize, rounds: usize) -> (f64, f64) {
    f();
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[rounds / 2];
    let spread = if median > 0.0 { (samples[rounds - 1] - samples[0]) / median } else { 0.0 };
    (median, spread)
}

/// Measures this machine's Equation-1 CPU-side inputs using `elements`
/// parameters per kernel invocation and the default three timed rounds
/// per input.
///
/// # Panics
///
/// Panics if `elements` is zero.
pub fn calibrate(elements: usize) -> CalibrationReport {
    calibrate_with(elements, 3)
}

/// [`calibrate`], but with `rounds` timed rounds behind each median —
/// more rounds trade calibration time for a tighter spread estimate.
///
/// # Panics
///
/// Panics if `elements` or `rounds` is zero.
pub fn calibrate_with(elements: usize, rounds: usize) -> CalibrationReport {
    assert!(elements > 0, "elements must be positive");
    assert!(rounds > 0, "rounds must be positive");

    // U_c: real Adam steps over a realistic state size.
    let grads: Vec<f32> = (0..elements).map(|i| ((i % 101) as f32 / 101.0) - 0.5).collect();
    let mut state = MixedPrecisionState::new(vec![0.5; elements], UpdateRule::adam(), 1e-3);
    let (update_secs, update_spread) = time_per_iter(|| state.full_step(&grads), 2, rounds);

    // D_c: FP32 -> FP16 downscale.
    let src: Vec<f32> = (0..elements).map(|i| (i as f32).sin()).collect();
    let mut dst = vec![F16::ZERO; elements];
    // src and dst are allocated with the same length, so the conversion
    // cannot fail; the timing loop ignores the Ok.
    let (downscale_secs, downscale_spread) =
        time_per_iter(|| drop(downscale_f32_chunked(&src, &mut dst, 1 << 14)), 4, rounds);

    // B proxy: large memcpy (what pinned-buffer staging costs on the host).
    let src_bytes: Vec<f32> = vec![1.0; elements];
    let mut dst_bytes = vec![0.0f32; elements];
    let (copy_secs, copy_spread) = time_per_iter(
        || dst_bytes.copy_from_slice(std::hint::black_box(&src_bytes)),
        8,
        rounds,
    );

    CalibrationReport {
        cpu_update_pps: elements as f64 / update_secs,
        cpu_downscale_pps: elements as f64 / downscale_secs,
        staging_pps: elements as f64 / copy_secs,
        elements,
        rounds,
        spread: CalibrationSpread {
            cpu_update: update_spread,
            cpu_downscale: downscale_spread,
            staging: copy_spread,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_n_reports_a_finite_spread() {
        let report = calibrate_with(1 << 14, 5);
        assert_eq!(report.rounds, 5);
        for s in [report.spread.cpu_update, report.spread.cpu_downscale, report.spread.staging] {
            assert!(s.is_finite() && s >= 0.0, "spread {s}");
        }
        assert!(report.spread.max() >= report.spread.cpu_update);
    }

    #[test]
    #[should_panic(expected = "rounds must be positive")]
    fn zero_rounds_rejected() {
        let _ = calibrate_with(1 << 10, 0);
    }

    #[test]
    fn calibration_produces_usable_inputs() {
        let report = calibrate(1 << 18);
        assert!(report.cpu_update_pps > 1e5, "update {}", report.cpu_update_pps);
        assert!(report.cpu_downscale_pps > 1e5, "downscale {}", report.cpu_downscale_pps);
        assert!(report.staging_pps > 1e5, "staging {}", report.staging_pps);
        // NOTE: unlike hardware (Table 1), the *software* FP16 converter is
        // not necessarily faster than Adam — no ordering is asserted.

        let model = report.perf_model(25.0e9);
        // Whatever this machine is, the solver returns a well-formed answer
        // (None means the CPU is fast enough that offloading never pays).
        if let Some(k) = model.optimal_stride() {
            assert!(k >= 1);
        }
        let inputs = report.perf_model_inputs(25.0e9);
        assert_eq!(inputs.ug, 25.0e9);
        assert_eq!(inputs.uc, report.cpu_update_pps);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_elements_rejected() {
        let _ = calibrate(0);
    }
}
