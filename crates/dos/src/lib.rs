//! # dos — Deep Optimizer States, the facade crate
//!
//! One-stop re-export of the *Deep Optimizer States* reproduction
//! (Maurya et al., MIDDLEWARE 2024). The workspace is layered:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`hal`] | `dos-hal` | discrete-event hardware simulator + calibrated profiles |
//! | [`tensor`] | `dos-tensor` | tensors, software f16/bf16, conversion kernels |
//! | [`nn`] | `dos-nn` | from-scratch transformer with manual backprop |
//! | [`data`] | `dos-data` | synthetic corpus, BPE tokenizer, data loading |
//! | [`optim`] | `dos-optim` | Adam-family rules, mixed-precision sharded state |
//! | [`collectives`] | `dos-collectives` | thread collectives + ring cost models |
//! | [`zero`] | `dos-zero` | ZeRO stages, subgroups, memory estimation |
//! | [`sim`] | `dos-sim` | training-iteration simulator |
//! | [`core`] | `dos-core` | **the paper**: Eq. 1 perf model, Algorithm 1 schedulers, functional pipeline |
//! | [`check`] | `dos-check` | deterministic schedule exploration + differential fuzzing for the pipeline |
//! | [`control`] | `dos-control` | adaptive control plane: online Eq. 1 re-solving, resident sizing, degradation ladder |
//! | [`telemetry`] | `dos-telemetry` | tracer + metrics, timelines, Chrome/Perfetto export, overlap/stall analyzer, Gantt |
//! | [`train`] | `dos-train` | JSON-configured Trainer facade over the pooled functional pipeline |
//! | [`runtime`] | `dos-runtime` | trainer facade + JSON config |
//! | [`oracle`] | `dos-oracle` | differential conformance harness (Eq. 1 vs simulator vs pipeline) |
//! | [`serve`] | `dos-serve` | multi-tenant control plane: admission, fair-share scheduling, checkpoint preemption |
//!
//! See the repository README for a quickstart and `DESIGN.md` for the full
//! system inventory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dos_check as check;
pub use dos_collectives as collectives;
pub use dos_control as control;
pub use dos_core as core;
pub use dos_data as data;
pub use dos_hal as hal;
pub use dos_nn as nn;
pub use dos_optim as optim;
pub use dos_oracle as oracle;
pub use dos_runtime as runtime;
pub use dos_serve as serve;
pub use dos_sim as sim;
pub use dos_telemetry as telemetry;
pub use dos_tensor as tensor;
pub use dos_train as train;
pub use dos_zero as zero;
