//! The numerics oracle: the functional threaded pipeline vs. a sequential
//! CPU update.
//!
//! §4.1's correctness claim is that out-of-order, cross-device subgroup
//! updates are *bitwise* identical to updating every subgroup sequentially
//! on the CPU. The oracle drives [`dos_core::hybrid_update`] (real threads,
//! real channels) and a sequential [`MixedPrecisionState::full_step`] twin
//! through several steps for every update rule × stride policy × resident
//! count, then compares parameters, momentum, variance, and the downscaled
//! FP16 parameters bit-for-bit.

use serde::{Deserialize, Serialize};

use dos_core::{hybrid_update, PipelineConfig, StridePolicy};
use dos_optim::{MixedPrecisionState, UpdateRule};
use dos_tensor::F16;
use dos_zero::partition_into_subgroups;

use crate::report::{Divergence, DivergenceReport};

/// One numerics-oracle scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericsCase {
    /// Update rule under test.
    pub rule: UpdateRule,
    /// Stride policy driven through the pipeline.
    pub stride: StridePolicy,
    /// Trailing subgroups treated as static device residents.
    pub static_residents: usize,
    /// Flat parameter count (deliberately not a multiple of the subgroup).
    pub params: usize,
    /// Subgroup size.
    pub subgroup: usize,
    /// Optimizer steps to run (catches step-count/bias-correction drift).
    pub steps: usize,
}

impl NumericsCase {
    /// The coordinate string the evaluated cell will carry,
    /// `<rule>/<stride>/residents=<n>` — computable before the case runs,
    /// so `--filter` can skip cases instead of evaluating them.
    pub fn coordinates(&self) -> String {
        format!(
            "{}/{}/residents={}",
            rule_name(self.rule),
            stride_name(self.stride),
            self.static_residents
        )
    }
}

/// The outcome of one evaluated numerics cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericsCell {
    /// Rule name (`adam`, `adamw`, `adagrad`, `rmsprop`).
    pub rule: String,
    /// Stride coordinate (`k=N`, `auto`, `cpu-only`).
    pub stride: String,
    /// Static resident subgroups.
    pub static_residents: usize,
    /// `None` when byte-exact; otherwise the first observed mismatch.
    pub mismatch: Option<String>,
}

impl NumericsCell {
    /// Cell coordinates for divergence reporting.
    pub fn coordinates(&self) -> String {
        format!("{}/{}/residents={}", self.rule, self.stride, self.static_residents)
    }
}

fn rule_name(rule: UpdateRule) -> &'static str {
    match rule {
        UpdateRule::Adam { weight_decay, .. } if weight_decay > 0.0 => "adamw",
        UpdateRule::Adam { .. } => "adam",
        UpdateRule::Adagrad { .. } => "adagrad",
        UpdateRule::RmsProp { .. } => "rmsprop",
        // `UpdateRule` is non_exhaustive; new rules get a generic label.
        _ => "other",
    }
}

fn stride_name(stride: StridePolicy) -> String {
    match stride {
        StridePolicy::Auto => "auto".to_string(),
        StridePolicy::Adaptive => "adaptive".to_string(),
        StridePolicy::CpuOnly => "cpu-only".to_string(),
        StridePolicy::Fixed(k) => format!("k={k}"),
    }
}

/// Deterministic, rule-agnostic synthetic inputs.
fn initial_params(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i * 13 + 5) % 31) as f32 / 31.0 - 0.4).collect()
}

fn gradients(n: usize, step: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (((i * 7 + 3 * step + 1) % 29) as f32 / 29.0 - 0.5) * (step as f32 + 1.0))
        .collect()
}

fn first_f32_mismatch(what: &str, got: &[f32], want: &[f32]) -> Option<String> {
    got.iter().zip(want).enumerate().find(|(_, (a, b))| a.to_bits() != b.to_bits()).map(
        |(i, (a, b))| {
            format!("{what}[{i}] = {a:?} (bits {:#010x}), sequential {b:?} (bits {:#010x})",
                a.to_bits(), b.to_bits())
        },
    )
}

/// Runs one case: `steps` hybrid steps against a sequential twin, comparing
/// the full [`MixedPrecisionState`] and FP16 outputs bitwise after each
/// step. Returns `None` on byte-exact agreement.
pub fn run_case(case: &NumericsCase) -> NumericsCell {
    let lr = 0.01;
    let mut seq = MixedPrecisionState::new(initial_params(case.params), case.rule, lr);
    let mut hyb = MixedPrecisionState::new(initial_params(case.params), case.rule, lr);
    let sgs = partition_into_subgroups(case.params, case.subgroup);
    let cfg = PipelineConfig {
        stride: case.stride,
        static_residents: case.static_residents,
        ..PipelineConfig::default()
    };

    let mut mismatch = None;
    for step in 0..case.steps {
        let grads = gradients(case.params, step);
        seq.full_step(&grads);
        let expected_16: Vec<F16> = seq.downscale_range(0..case.params);
        let report = match hybrid_update(&mut hyb, &grads, &sgs, cfg) {
            Ok(report) => report,
            Err(e) => {
                mismatch = Some(format!("step {step}: pipeline error: {e}"));
                break;
            }
        };

        mismatch = first_f32_mismatch("params", hyb.params(), seq.params())
            .or_else(|| first_f32_mismatch("momentum", hyb.momentum(), seq.momentum()))
            .or_else(|| first_f32_mismatch("variance", hyb.variance(), seq.variance()))
            .or_else(|| {
                report.fp16_params.iter().zip(&expected_16).position(|(a, b)| a != b).map(|i| {
                    format!(
                        "fp16[{i}] = {:?}, sequential {:?}",
                        report.fp16_params[i], expected_16[i]
                    )
                })
            })
            .map(|m| format!("step {step}: {m}"));
        if mismatch.is_some() {
            break;
        }
    }

    NumericsCell {
        rule: rule_name(case.rule).to_string(),
        stride: stride_name(case.stride),
        static_residents: case.static_residents,
        mismatch,
    }
}

/// The default case matrix: all four rules × all stride policies
/// (CPU-only, auto, k ∈ 1..=max_stride) × resident counts {0, 2}.
pub fn default_cases(max_stride: usize) -> Vec<NumericsCase> {
    let rules =
        [UpdateRule::adam(), UpdateRule::adamw(0.01), UpdateRule::adagrad(), UpdateRule::rmsprop()];
    let mut policies = vec![StridePolicy::CpuOnly, StridePolicy::Auto];
    policies.extend((1..=max_stride).map(StridePolicy::Fixed));
    let mut cases = Vec::new();
    for rule in rules {
        for &stride in &policies {
            for residents in [0, 2] {
                cases.push(NumericsCase {
                    rule,
                    stride,
                    static_residents: residents,
                    params: 257,
                    subgroup: 32,
                    steps: 3,
                });
            }
        }
    }
    cases
}

/// Runs a set of cases and folds the non-exact ones into a
/// [`DivergenceReport`].
pub fn run_cases(cases: &[NumericsCase]) -> (Vec<NumericsCell>, DivergenceReport) {
    run_cases_filtered(cases, None)
}

/// Like [`run_cases`], but only evaluates cases whose coordinate string
/// (see [`NumericsCase::coordinates`]) contains `filter`.
pub fn run_cases_filtered(
    cases: &[NumericsCase],
    filter: Option<&str>,
) -> (Vec<NumericsCell>, DivergenceReport) {
    let cells: Vec<NumericsCell> = cases
        .iter()
        .filter(|c| filter.is_none_or(|f| c.coordinates().contains(f)))
        .map(run_case)
        .collect();
    let report = DivergenceReport {
        cells_checked: cells.len(),
        divergences: cells
            .iter()
            .filter(|c| c.mismatch.is_some())
            .map(|c| Divergence {
                oracle: "numerics".to_string(),
                cell: c.coordinates(),
                expected: "byte-exact vs sequential CPU update".to_string(),
                observed: c.mismatch.clone().unwrap_or_default(),
            })
            .collect(),
    };
    (cells, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_rules_and_strides_are_byte_exact() {
        let (cells, report) = run_cases(&default_cases(5));
        assert_eq!(cells.len(), 4 * 7 * 2);
        assert!(
            report.is_conformant(),
            "numerics divergences:\n{}",
            report.render_table()
        );
    }

    #[test]
    fn a_numerics_bug_is_named_precisely() {
        // Simulate the classic seed bug — a device-side step-count skew
        // (missing `begin_step`) — by running the hybrid update against a
        // sequential twin that is one step ahead.
        let case = NumericsCase {
            rule: UpdateRule::adam(),
            stride: StridePolicy::Fixed(2),
            static_residents: 0,
            params: 128,
            subgroup: 32,
            steps: 1,
        };
        let mut seq = MixedPrecisionState::new(initial_params(case.params), case.rule, 0.01);
        let mut hyb = MixedPrecisionState::new(initial_params(case.params), case.rule, 0.01);
        let sgs = partition_into_subgroups(case.params, case.subgroup);
        let grads = gradients(case.params, 0);
        seq.full_step(&grads); // extra warm-up step: skewed bias correction
        seq.full_step(&grads);
        hybrid_update(
            &mut hyb,
            &grads,
            &sgs,
            PipelineConfig { stride: case.stride, ..PipelineConfig::default() },
        )
        .unwrap();
        let m = first_f32_mismatch("params", hyb.params(), seq.params());
        assert!(m.is_some(), "skewed step count must not be byte-exact");
        assert!(m.unwrap().starts_with("params[0]"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Satellite property for the vectorized-kernel rewrite: every
        /// rule × every stride policy, with `params`/`subgroup` forced odd
        /// so no length is a multiple of any SIMD lane width or of the
        /// kernels' chunk sizes — the remainder path is always exercised.
        #[test]
        fn all_rules_and_policies_stay_byte_exact_on_odd_shapes(
            rule_ix in 0usize..4,
            policy_ix in 0usize..4,
            params in 64usize..400,
            subgroup in 16usize..96,
            residents in 0usize..3,
        ) {
            let rules = [
                UpdateRule::adam(),
                UpdateRule::adamw(0.01),
                UpdateRule::adagrad(),
                UpdateRule::rmsprop(),
            ];
            let policies = [
                StridePolicy::CpuOnly,
                StridePolicy::Auto,
                StridePolicy::Adaptive,
                StridePolicy::Fixed(1 + params % 5),
            ];
            let cell = run_case(&NumericsCase {
                rule: rules[rule_ix],
                stride: policies[policy_ix],
                static_residents: residents,
                params: params | 1,
                subgroup: subgroup | 1,
                steps: 2,
            });
            prop_assert!(cell.mismatch.is_none(), "diverged: {:?}", cell.mismatch);
        }

        #[test]
        fn random_shapes_stay_byte_exact(
            params in 64usize..400,
            subgroup in 16usize..96,
            k in 1usize..6,
            residents in 0usize..3,
        ) {
            let cell = run_case(&NumericsCase {
                rule: UpdateRule::adamw(0.005),
                stride: StridePolicy::Fixed(k),
                static_residents: residents,
                params,
                subgroup,
                steps: 2,
            });
            prop_assert!(cell.mismatch.is_none(), "diverged: {:?}", cell.mismatch);
        }
    }
}
