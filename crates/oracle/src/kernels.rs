//! The kernels oracle: chunked autovectorizable kernels vs their retained
//! scalar reference twins, bit for bit.
//!
//! The vectorized rewrite of the update and conversion loops is only
//! admissible because every kernel keeps the per-element expression order
//! of its scalar original — restructuring *between* elements is free,
//! restructuring *within* one is not. This arm re-checks that contract as
//! part of every `dos-cli conformance` run: [`dos_optim::kernels::apply`]
//! against `apply_reference` for all four rules, and the
//! [`dos_tensor::kernels`] conversions against their `_reference` twins
//! over adversarial bit patterns (NaNs, infinities, subnormals) plus the
//! full 65536-pattern FP16 space on the upscale side. Lengths are chosen
//! to straddle chunk boundaries (`n % CHUNK != 0`), where a vectorized
//! remainder loop would hide.

use serde::{Deserialize, Serialize};

use dos_optim::{kernels as optim_kernels, UpdateRule};
use dos_tensor::{kernels as tensor_kernels, F16};

use crate::report::{Divergence, DivergenceReport};

/// The outcome of one evaluated kernel cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCell {
    /// Operation coordinate (`apply/adam`, `downscale`, ...).
    pub op: String,
    /// Element count the cell ran over.
    pub n: usize,
    /// `None` when bit-exact; otherwise the first observed mismatch.
    pub mismatch: Option<String>,
}

impl KernelCell {
    /// Cell coordinates for divergence reporting, `kernels/<op>/n=<n>`.
    pub fn coordinates(&self) -> String {
        format!("kernels/{}/n={}", self.op, self.n)
    }
}

/// splitmix64-style hash, the deterministic source of adversarial inputs.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Finite values in roughly [-1, 1] for the optimizer-state cells.
fn finite(n: usize, salt: u64) -> Vec<f32> {
    (0..n).map(|i| (mix(i as u64 ^ salt) % 20001) as f32 / 10000.0 - 1.0).collect()
}

/// Raw hashed bit patterns — NaNs, infinities, subnormals included — for
/// the conversion cells (the converters are total over the f32 space).
fn bit_patterns(n: usize, salt: u64) -> Vec<f32> {
    (0..n).map(|i| f32::from_bits(mix(i as u64 ^ salt) as u32)).collect()
}

fn first_bits_mismatch(what: &str, got: &[f32], want: &[f32]) -> Option<String> {
    got.iter().zip(want).enumerate().find(|(_, (a, b))| a.to_bits() != b.to_bits()).map(
        |(i, (a, b))| {
            format!(
                "{what}[{i}] = {a:?} (bits {:#010x}), reference {b:?} (bits {:#010x})",
                a.to_bits(),
                b.to_bits()
            )
        },
    )
}

fn rule_op(rule: UpdateRule) -> &'static str {
    match rule {
        UpdateRule::Adam { weight_decay, .. } if weight_decay > 0.0 => "apply/adamw",
        UpdateRule::Adam { .. } => "apply/adam",
        UpdateRule::Adagrad { .. } => "apply/adagrad",
        UpdateRule::RmsProp { .. } => "apply/rmsprop",
        // `UpdateRule` is non_exhaustive; new rules get a generic label.
        _ => "apply/other",
    }
}

/// Runs one update-rule cell: three steps of [`optim_kernels::apply`] and
/// `apply_reference` over identically-seeded state, compared bitwise after
/// each step.
pub fn run_apply_cell(rule: UpdateRule, n: usize) -> KernelCell {
    let mut pv = finite(n, 1);
    let mut mv = vec![0.0f32; n];
    let mut vv = vec![0.0f32; n];
    let (mut pr, mut mr, mut vr) = (pv.clone(), mv.clone(), vv.clone());
    let mut mismatch = None;
    for step in 1..=3u64 {
        let g = finite(n, 100 + step);
        optim_kernels::apply(&rule, step, 0.01, &mut pv, &g, &mut mv, &mut vv);
        optim_kernels::apply_reference(&rule, step, 0.01, &mut pr, &g, &mut mr, &mut vr);
        mismatch = first_bits_mismatch("params", &pv, &pr)
            .or_else(|| first_bits_mismatch("momentum", &mv, &mr))
            .or_else(|| first_bits_mismatch("variance", &vv, &vr))
            .map(|m| format!("step {step}: {m}"));
        if mismatch.is_some() {
            break;
        }
    }
    KernelCell { op: rule_op(rule).to_string(), n, mismatch }
}

/// Runs one conversion cell (`downscale`, `upscale`, or `round_through`).
pub fn run_conversion_cell(op: &str, n: usize) -> KernelCell {
    let mismatch = match op {
        "downscale" => {
            let src = bit_patterns(n, 7);
            let mut got = vec![F16::ZERO; n];
            let mut want = vec![F16::ZERO; n];
            tensor_kernels::downscale(&src, &mut got);
            tensor_kernels::downscale_reference(&src, &mut want);
            got.iter().zip(&want).enumerate().find(|(_, (a, b))| a != b).map(|(i, (a, b))| {
                format!(
                    "f16[{i}] = {:#06x} from {:?}, reference {:#06x}",
                    a.to_bits(),
                    src[i],
                    b.to_bits()
                )
            })
        }
        "upscale" => {
            // Every FP16 bit pattern, cycled to fill n.
            let src: Vec<F16> =
                (0..n).map(|i| F16::from_bits((i % (1 << 16)) as u16)).collect();
            let mut got = vec![0.0f32; n];
            let mut want = vec![0.0f32; n];
            tensor_kernels::upscale(&src, &mut got);
            tensor_kernels::upscale_reference(&src, &mut want);
            first_bits_mismatch("f32", &got, &want)
        }
        "round_through" => {
            let mut got = bit_patterns(n, 11);
            let mut want = got.clone();
            tensor_kernels::round_through_f16(&mut got);
            tensor_kernels::round_through_f16_reference(&mut want);
            first_bits_mismatch("f32", &got, &want)
        }
        other => Some(format!("unknown conversion op {other:?}")),
    };
    KernelCell { op: op.to_string(), n, mismatch }
}

/// The default cell matrix: all four rules × lengths straddling the chunk
/// size, plus the three conversions (upscale covers the full FP16 space).
pub fn default_cells_filtered(filter: Option<&str>) -> (Vec<KernelCell>, DivergenceReport) {
    let rules =
        [UpdateRule::adam(), UpdateRule::adamw(0.01), UpdateRule::adagrad(), UpdateRule::rmsprop()];
    let mut cells = Vec::new();
    let selected = |coords: &str| filter.is_none_or(|f| coords.contains(f));
    for rule in rules {
        for n in [1usize, 1023, 4097] {
            let coords = format!("kernels/{}/n={n}", rule_op(rule));
            if selected(&coords) {
                cells.push(run_apply_cell(rule, n));
            }
        }
    }
    for (op, n) in [("downscale", 65536), ("upscale", 65536), ("round_through", 65536)] {
        let coords = format!("kernels/{op}/n={n}");
        if selected(&coords) {
            cells.push(run_conversion_cell(op, n));
        }
    }
    let report = DivergenceReport {
        cells_checked: cells.len(),
        divergences: cells
            .iter()
            .filter(|c| c.mismatch.is_some())
            .map(|c| Divergence {
                oracle: "kernels".to_string(),
                cell: c.coordinates(),
                expected: "bit-exact vs scalar reference twin".to_string(),
                observed: c.mismatch.clone().unwrap_or_default(),
            })
            .collect(),
    };
    (cells, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_matrix_is_bit_exact() {
        let (cells, report) = default_cells_filtered(None);
        assert_eq!(cells.len(), 4 * 3 + 3);
        assert!(report.is_conformant(), "{}", report.render_table());
    }

    #[test]
    fn filters_select_by_coordinate_substring() {
        let (cells, report) = default_cells_filtered(Some("kernels/apply/rmsprop"));
        assert_eq!(cells.len(), 3);
        assert_eq!(report.cells_checked, 3);
        assert!(cells.iter().all(|c| c.op == "apply/rmsprop"));
        let (none, _) = default_cells_filtered(Some("no-such-cell"));
        assert!(none.is_empty());
    }

    #[test]
    fn a_kernel_bug_would_be_named_precisely() {
        let cell = run_conversion_cell("definitely-not-an-op", 8);
        assert!(cell.mismatch.is_some());
        assert_eq!(cell.coordinates(), "kernels/definitely-not-an-op/n=8");
    }
}
