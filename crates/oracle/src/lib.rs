//! # dos-oracle — differential conformance harness
//!
//! The workspace carries **three independent implementations** of the
//! paper's update-phase behavior:
//!
//! 1. the closed-form Equation 1 model ([`dos_core::PerfModel`]),
//! 2. the discrete-event simulator (`dos-sim` driven by the
//!    `dos-core` schedulers), and
//! 3. the functional threaded pipeline ([`dos_core::hybrid_update`]).
//!
//! This crate runs the same scenarios through all of them and reports
//! divergences:
//!
//! * [`perf`] sweeps the Table 2 zoo × schedulers (ZeRO-3 offload,
//!   TwinFlow, Deep Optimizer States) × strides k∈1..=5 × static resident
//!   ratios 0.0..=0.5, comparing the Eq. 1 prediction of the update phase
//!   against the simulated `update_secs` within a declared per-family
//!   tolerance band;
//! * [`numerics`] asserts the hybrid pipeline is **byte-exact** against a
//!   sequential CPU update for Adam/AdamW/Adagrad/RMSProp and every stride
//!   policy (§4.1's correctness claim);
//! * [`kernels`] asserts the chunked autovectorizable update/conversion
//!   kernels are **bit-exact** against their retained scalar reference
//!   twins, over chunk-straddling lengths and adversarial bit patterns;
//! * [`DivergenceReport`] serializes the failures and renders them as an
//!   ASCII table naming the exact cell, expected band, and observed value.
//!
//! `dos-cli conformance` runs [`Oracle::full`] and exits nonzero on any
//! divergence, making the harness CI-runnable.
//!
//! ```
//! use dos_oracle::Oracle;
//!
//! let outcome = Oracle::quick().run();
//! assert!(outcome.report.is_conformant(), "{}", outcome.report.render_table());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernels;
pub mod numerics;
pub mod perf;
mod report;

pub use report::{Divergence, DivergenceReport};

/// Serializes a divergence report as pretty JSON (helper so downstream
/// crates need no direct `serde_json` dependency).
pub fn to_json(report: &DivergenceReport) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(report)
}

/// Parses a divergence report back from JSON.
pub fn from_json(json: &str) -> Result<DivergenceReport, serde_json::Error> {
    serde_json::from_str(json)
}

use dos_hal::HardwareProfile;
use dos_nn::ModelSpec;

/// The matrix a conformance run sweeps.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Table 2 model names to simulate.
    pub models: Vec<String>,
    /// Hardware profile shared by all cells.
    pub profile: HardwareProfile,
    /// Fixed strides k to force through Deep Optimizer States.
    pub strides: Vec<usize>,
    /// Static GPU-resident ratios to sweep.
    pub ratios: Vec<f64>,
    /// Largest stride exercised by the numerics oracle.
    pub numerics_max_stride: usize,
}

/// Everything a conformance run produces: the per-cell evaluations of both
/// oracles plus the merged divergence report.
#[derive(Debug, Clone)]
pub struct ConformanceOutcome {
    /// Perf-model matrix cells (prediction vs. simulation).
    pub perf_cells: Vec<perf::PerfCell>,
    /// Numerics cells (pipeline vs. sequential).
    pub numerics_cells: Vec<numerics::NumericsCell>,
    /// Kernel cells (vectorized vs. scalar reference twin).
    pub kernel_cells: Vec<kernels::KernelCell>,
    /// Merged divergence report across all oracles.
    pub report: DivergenceReport,
}

impl Oracle {
    /// The full ISSUE matrix: all five Table 2 models, strides 1..=5,
    /// resident ratios 0.0..=0.5 in steps of 0.1, on the paper's H100
    /// testbed profile.
    pub fn full() -> Oracle {
        Oracle {
            models: ModelSpec::table2_zoo().into_iter().map(|m| m.name).collect(),
            profile: HardwareProfile::jlse_h100(),
            strides: (1..=5).collect(),
            ratios: vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
            numerics_max_stride: 5,
        }
    }

    /// A reduced matrix for unit tests and fast local runs: two models,
    /// three strides, two ratios, same bands.
    pub fn quick() -> Oracle {
        Oracle {
            models: vec!["7B".to_string(), "20B".to_string()],
            profile: HardwareProfile::jlse_h100(),
            strides: vec![1, 2, 3],
            ratios: vec![0.0, 0.3],
            numerics_max_stride: 3,
        }
    }

    /// Runs both oracles over the matrix and merges their reports.
    pub fn run(&self) -> ConformanceOutcome {
        self.run_filtered(None)
    }

    /// Runs only the cells whose coordinate strings contain `filter`
    /// (both oracles; see [`perf::cell_coordinates`] and
    /// [`numerics::NumericsCase::coordinates`] for the formats). Cells
    /// outside the filter are never evaluated, so this is the fast way to
    /// re-run a single diverging cell. `None` runs everything.
    pub fn run_filtered(&self, filter: Option<&str>) -> ConformanceOutcome {
        let (perf_cells, mut report) = perf::run_matrix_filtered(
            &self.models,
            &self.profile,
            &self.strides,
            &self.ratios,
            filter,
        );
        let (numerics_cells, numerics_report) = numerics::run_cases_filtered(
            &numerics::default_cases(self.numerics_max_stride),
            filter,
        );
        report.merge(numerics_report);
        let (kernel_cells, kernel_report) = kernels::default_cells_filtered(filter);
        report.merge(kernel_report);
        ConformanceOutcome { perf_cells, numerics_cells, kernel_cells, report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_is_conformant() {
        let outcome = Oracle::quick().run();
        assert!(outcome.report.is_conformant(), "{}", outcome.report.render_table());
        assert!(outcome.report.cells_checked > 50);
        assert!(!outcome.perf_cells.is_empty());
        assert!(!outcome.numerics_cells.is_empty());
        assert!(!outcome.kernel_cells.is_empty());
    }

    #[test]
    fn filter_selects_matching_cells_only() {
        let outcome = Oracle::quick().run_filtered(Some("zero3-offload"));
        assert!(!outcome.perf_cells.is_empty());
        assert!(outcome.perf_cells.iter().all(|c| c.scheduler == "zero3-offload"));
        assert!(outcome.numerics_cells.is_empty(), "no numerics cell mentions zero3");
        assert!(outcome.report.is_conformant());

        let adagrad = Oracle::quick().run_filtered(Some("adagrad/"));
        assert!(adagrad.perf_cells.is_empty());
        assert!(!adagrad.numerics_cells.is_empty());
        assert!(adagrad.numerics_cells.iter().all(|c| c.rule == "adagrad"));

        // A filter is a coordinate substring, so one exact coordinate
        // re-runs exactly one cell.
        let one = Oracle::quick().run_filtered(Some("20B/twinflow/-/ratio=0.30"));
        assert_eq!(one.report.cells_checked, 1);

        let none = Oracle::quick().run_filtered(Some("no-such-cell"));
        assert_eq!(none.report.cells_checked, 0);
    }

    #[test]
    fn full_matrix_has_the_issue_shape() {
        let o = Oracle::full();
        assert_eq!(o.models.len(), 5);
        assert_eq!(o.strides, vec![1, 2, 3, 4, 5]);
        assert_eq!(o.ratios.len(), 6);
    }
}
