//! Divergence reporting: serde-serializable records plus an ASCII table
//! renderer following the `dos-telemetry` conventions (right-aligned label
//! column, `|`-separated body).

use serde::{Deserialize, Serialize};

/// One conformance failure: the exact cell that diverged, the band it was
/// expected to land in, and what was observed instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Divergence {
    /// Which oracle flagged the cell (`"perf-model"` or `"numerics"`).
    pub oracle: String,
    /// Cell coordinates, e.g. `20B/deep-optimizer-states/k=3/ratio=0.20`.
    pub cell: String,
    /// The declared expectation, e.g. `sim/pred in [0.90, 1.15]`.
    pub expected: String,
    /// The observed value, e.g. `sim/pred = 1.42`.
    pub observed: String,
}

/// The outcome of a conformance run: how many cells were checked and every
/// cell that fell outside its declared band.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Total cells evaluated across all oracles.
    pub cells_checked: usize,
    /// Cells that diverged; empty means full conformance.
    pub divergences: Vec<Divergence>,
}

impl DivergenceReport {
    /// A report with no cells checked yet.
    pub fn new() -> DivergenceReport {
        DivergenceReport::default()
    }

    /// `true` when every checked cell landed inside its band.
    pub fn is_conformant(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Folds another report's cells and divergences into this one.
    pub fn merge(&mut self, other: DivergenceReport) {
        self.cells_checked += other.cells_checked;
        self.divergences.extend(other.divergences);
    }

    /// Renders the divergences as an ASCII table (the telemetry style:
    /// right-aligned label column, `|` separators), followed by a one-line
    /// verdict. Conformant reports render the verdict only.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.divergences.is_empty() {
            let headers = ["oracle", "cell", "expected", "observed"];
            let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
            let rows: Vec<[&str; 4]> = self
                .divergences
                .iter()
                .map(|d| {
                    [d.oracle.as_str(), d.cell.as_str(), d.expected.as_str(), d.observed.as_str()]
                })
                .collect();
            for row in &rows {
                for (w, cell) in widths.iter_mut().zip(row.iter()) {
                    *w = (*w).max(cell.len());
                }
            }
            let line = |cells: &[&str; 4], widths: &[usize]| -> String {
                format!(
                    "{:>w0$} | {:<w1$} | {:<w2$} | {:<w3$}\n",
                    cells[0],
                    cells[1],
                    cells[2],
                    cells[3],
                    w0 = widths[0],
                    w1 = widths[1],
                    w2 = widths[2],
                    w3 = widths[3],
                )
            };
            out.push_str(&line(&headers, &widths));
            let rule_len = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
            out.push_str(&"-".repeat(rule_len));
            out.push('\n');
            for row in &rows {
                out.push_str(&line(row, &widths));
            }
        }
        out.push_str(&format!(
            "{} cells checked, {} divergence(s): {}\n",
            self.cells_checked,
            self.divergences.len(),
            if self.is_conformant() { "CONFORMANT" } else { "DIVERGENT" },
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DivergenceReport {
        DivergenceReport {
            cells_checked: 3,
            divergences: vec![Divergence {
                oracle: "perf-model".into(),
                cell: "20B/twinflow/ratio=0.20".into(),
                expected: "sim/pred in [0.90, 1.10]".into(),
                observed: "sim/pred = 1.42".into(),
            }],
        }
    }

    #[test]
    fn conformance_flag_tracks_divergences() {
        assert!(DivergenceReport::new().is_conformant());
        assert!(!sample().is_conformant());
    }

    #[test]
    fn merge_accumulates() {
        let mut r = DivergenceReport { cells_checked: 2, divergences: vec![] };
        r.merge(sample());
        assert_eq!(r.cells_checked, 5);
        assert_eq!(r.divergences.len(), 1);
    }

    #[test]
    fn table_names_the_cell_and_band() {
        let t = sample().render_table();
        assert!(t.contains("20B/twinflow/ratio=0.20"), "{t}");
        assert!(t.contains("[0.90, 1.10]"), "{t}");
        assert!(t.contains("DIVERGENT"), "{t}");
        let clean = DivergenceReport { cells_checked: 4, divergences: vec![] }.render_table();
        assert!(clean.contains("CONFORMANT"), "{clean}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: DivergenceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
