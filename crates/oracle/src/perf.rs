//! The performance-model oracle: Equation 1's closed form vs. the
//! discrete-event simulator.
//!
//! For every cell of the model × scheduler × stride × resident-ratio
//! matrix, the update phase is predicted analytically from the profile's
//! calibrated throughputs (`PerfModel::predicted_update_secs` plus the
//! per-scheduler serialization structure described below) and simulated
//! with the real dependency graph. The cell conforms when the
//! simulated/predicted ratio falls inside the band declared for its
//! scheduler family; the bands encode how much of each schedule the
//! closed form abstracts away (drain tails, partial subgroups, resident
//! overlap) — they are *declared*, not fitted per run, so a scheduler or
//! perf-model regression moves cells outside them.

use serde::{Deserialize, Serialize};

use dos_core::{
    DeepOptimizerStates, NvmeOffload, PerfModel, StridePolicy, TwinFlow, ZenFlowAsync,
    Zero3Offload,
};
use dos_hal::HardwareProfile;
use dos_nn::ModelSpec;
use dos_sim::{simulate_iteration, TrainConfig};
use dos_zero::partition_into_subgroups;

use crate::report::{Divergence, DivergenceReport};

/// Which update scheduler a matrix cell exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// DeepSpeed ZeRO-3 with fully CPU-offloaded optimizer (blocking chain).
    Zero3Offload,
    /// TwinFlow: head static residents on the GPU, blocking CPU remainder.
    TwinFlow,
    /// Deep Optimizer States with the given stride policy.
    DeepOptimizerStates(StridePolicy),
    /// ZenFlow-style asynchronous updates: the cell's resident ratio is the
    /// importance ratio (the hot on-GPU subset); staleness bound S = 1, so
    /// the cold bulk spills past the iteration barrier and the joined
    /// update phase is the hot subset only.
    ZenFlowAsync,
    /// NVMe-tier streaming offload (ZeRO-Infinity-style CPU pipeline; the
    /// auto stride refuses GPU interleaving on this tier).
    NvmeOffload,
}

impl SchedulerKind {
    fn scheduler_name(&self) -> &'static str {
        match self {
            SchedulerKind::Zero3Offload => "zero3-offload",
            SchedulerKind::TwinFlow => "twinflow",
            SchedulerKind::DeepOptimizerStates(_) => "deep-optimizer-states",
            SchedulerKind::ZenFlowAsync => "zenflow-async",
            SchedulerKind::NvmeOffload => "nvme",
        }
    }

    fn stride_label(&self) -> String {
        match self {
            SchedulerKind::Zero3Offload | SchedulerKind::TwinFlow => "-".to_string(),
            SchedulerKind::DeepOptimizerStates(StridePolicy::Auto) => "auto".to_string(),
            SchedulerKind::DeepOptimizerStates(StridePolicy::Adaptive) => "adaptive".to_string(),
            SchedulerKind::DeepOptimizerStates(StridePolicy::CpuOnly) => "cpu-only".to_string(),
            SchedulerKind::DeepOptimizerStates(StridePolicy::Fixed(k)) => format!("k={k}"),
            SchedulerKind::ZenFlowAsync => "S=1".to_string(),
            SchedulerKind::NvmeOffload => "auto".to_string(),
        }
    }
}

/// The ratio band `simulated / predicted` a cell must land in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToleranceBand {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl ToleranceBand {
    /// Whether `ratio` falls inside the band.
    pub fn contains(&self, ratio: f64) -> bool {
        ratio.is_finite() && self.lo <= ratio && ratio <= self.hi
    }
}

/// Declared bands per scheduler family.
///
/// * ZeRO-3's blocking chain is exactly the Equation 1 CPU-only cost, so
///   the prediction matches the event simulation to rounding; the band is
///   effectively "exact".
/// * TwinFlow adds the head residents' serialized GPU updates — still a
///   fully serial schedule the closed form reproduces exactly.
/// * Deep Optimizer States overlaps three resources. The closed form
///   counts whole subgroups per resource and carries explicit pipeline
///   fill/drain-tail terms (the final FP16 write-back behind the CPU
///   chain, the last GPU update behind the H2D link), so what remains
///   outside the band is only sub-subgroup scheduling jitter — the full
///   H100 matrix observes sim/pred in [0.97, 1.05].
/// * ZenFlowAsync's joined update phase is just the hot subgroups
///   serialized on the GPU — a single-resource chain like ZeRO-3's, so
///   the band is near-exact (partial-subgroup rounding only).
/// * The NVMe stream alternates reads and writes with each write gated on
///   its CPU update; the closed form counts whole subgroups on the drive
///   plus that per-subgroup CPU stall, leaving pipeline fill/tail effects
///   inside a ±10% band.
pub fn band_for(kind: SchedulerKind) -> ToleranceBand {
    match kind {
        SchedulerKind::Zero3Offload => ToleranceBand { lo: 0.99, hi: 1.01 },
        SchedulerKind::TwinFlow => ToleranceBand { lo: 0.98, hi: 1.02 },
        SchedulerKind::DeepOptimizerStates(_) => ToleranceBand { lo: 0.92, hi: 1.12 },
        SchedulerKind::ZenFlowAsync => ToleranceBand { lo: 0.98, hi: 1.02 },
        SchedulerKind::NvmeOffload => ToleranceBand { lo: 0.90, hi: 1.10 },
    }
}

/// One evaluated cell of the perf-model matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfCell {
    /// Table 2 model name.
    pub model: String,
    /// Scheduler name (`IterationReport::scheduler` spelling).
    pub scheduler: String,
    /// Stride coordinate (`k=N`, `auto`, `cpu-only`, or `-`).
    pub stride: String,
    /// Static GPU-resident ratio.
    pub resident_ratio: f64,
    /// Equation 1 prediction of the update phase, seconds.
    pub predicted_secs: f64,
    /// Simulated update phase, seconds.
    pub simulated_secs: f64,
    /// Declared tolerance on `simulated / predicted`.
    pub band: ToleranceBand,
}

impl PerfCell {
    /// Simulated-over-predicted ratio.
    pub fn ratio(&self) -> f64 {
        self.simulated_secs / self.predicted_secs
    }

    /// Whether the cell landed inside its declared band.
    pub fn conformant(&self) -> bool {
        self.band.contains(self.ratio())
    }

    /// Cell coordinates for divergence reporting.
    pub fn coordinates(&self) -> String {
        cell_coordinates(&self.model, self.scheduler.as_str(), &self.stride, self.resident_ratio)
    }
}

/// The canonical perf-cell coordinate string,
/// `<model>/<scheduler>/<stride>/ratio=<r>` — computable *before* a cell is
/// evaluated, so `--filter` can skip cells instead of evaluating and
/// discarding them.
pub fn cell_coordinates(model: &str, scheduler: &str, stride: &str, ratio: f64) -> String {
    format!("{model}/{scheduler}/{stride}/ratio={ratio:.2}")
}

/// Predicts the update-phase seconds for one cell from the profile's
/// calibrated throughputs, mirroring each scheduler's serialization
/// structure (see the module docs).
pub fn predict_update_secs(cfg: &TrainConfig, kind: SchedulerKind) -> f64 {
    let inputs = cfg.profile.perf_model_inputs();
    let model = PerfModel::new(inputs);
    let params = cfg.params_per_rank() as f64;
    let subgroup = cfg.offload.subgroup_params as f64;
    let sgs = partition_into_subgroups(cfg.params_per_rank(), cfg.offload.subgroup_params);
    let n = sgs.len();
    let n_static = ((cfg.offload.gpu_resident_ratio * n as f64).ceil() as usize).min(n);

    match kind {
        SchedulerKind::Zero3Offload => model.predicted_update_secs(params, subgroup, None),
        SchedulerKind::TwinFlow => {
            // Head residents update serially on the GPU while the CPU
            // idles, then the remainder runs the blocking CPU chain.
            let resident_params: f64 = sgs[..n_static].iter().map(|s| s.len() as f64).sum();
            resident_params / inputs.ug
                + model.predicted_update_secs(params - resident_params, subgroup, None)
        }
        SchedulerKind::DeepOptimizerStates(policy) => {
            // Tail residents overlap the dynamic pipeline on the GPU; the
            // phase ends when the slowest resource drains. Unlike the
            // per-cycle Equation 1 form (which the *controller* solves),
            // the oracle counts whole subgroups per resource and adds the
            // pipeline fill/drain tails the steady state hides.
            let resident_params: f64 = sgs[n - n_static..].iter().map(|s| s.len() as f64).sum();
            let dynamic_params = params - resident_params;
            let n_dynamic = n - n_static;
            let stride = match policy {
                StridePolicy::Auto | StridePolicy::Adaptive => model.optimal_stride(),
                StridePolicy::Fixed(k) => Some(k.max(1)),
                StridePolicy::CpuOnly => None,
            };
            let interleaving = stride.is_some_and(|k| n_dynamic > k.saturating_sub(1));
            let s = subgroup;
            if n_dynamic == 0 {
                return resident_params / inputs.ug;
            }
            if interleaving {
                let k = stride.expect("interleaving implies a stride");
                // The scheduler sends every k-th dynamic subgroup to the
                // GPU: exactly n_dynamic / k of them.
                let n_gpu = (n_dynamic / k) as f64;
                let n_cpu = n_dynamic as f64 - n_gpu;
                let uc_eff = inputs.uc * cfg.profile.dram_contention_cpu_factor;
                // CPU side: updates and downscales serialize on the CPU;
                // the final FP16 write-back is the drain tail nothing
                // later can hide.
                let cpu_side =
                    n_cpu * (s / uc_eff + s / inputs.dc) + s / (2.0 * inputs.b);
                // Transfer side: every GPU subgroup's FP32 prefetch plus
                // every CPU subgroup's FP16 write-back share the H2D
                // link; the last GPU update is its drain tail. (The D2H
                // flushes ride their own link and the phase does not wait
                // for them.)
                let xfer_side = n_gpu * 3.0 * s / inputs.b
                    + n_cpu * s / (2.0 * inputs.b)
                    + s / inputs.ug;
                // Dependency chain: each prefetch waits on the previous
                // GPU update, so prefetches and GPU updates alternate on
                // one critical path — the binding arm at small strides.
                let chain_side = n_gpu * (3.0 * s / inputs.b + s / inputs.ug);
                let gpu_side = (resident_params + n_gpu * s) / inputs.ug;
                cpu_side.max(xfer_side).max(gpu_side).max(chain_side)
            } else {
                // CPU-only dynamic path with the pipelined drain: updates
                // then downscales serialize on the CPU, and the FP16
                // write-backs pipeline behind whichever of downscale and
                // H2D is slower — leaving a one-subgroup fill tail on the
                // faster of the two.
                let drain = (dynamic_params / inputs.dc + s / (2.0 * inputs.b))
                    .max(s / inputs.dc + dynamic_params / (2.0 * inputs.b));
                (dynamic_params / inputs.uc + drain).max(resident_params / inputs.ug)
            }
        }
        SchedulerKind::ZenFlowAsync => {
            // With S >= 1 the cold bulk spills past the barrier; the joined
            // update phase is the hot (head) subgroups serialized on the
            // GPU's compute stream.
            let hot_params: f64 = sgs[..n_static].iter().map(|s| s.len() as f64).sum();
            hot_params / inputs.ug
        }
        SchedulerKind::NvmeOffload => {
            // Reads and writes alternate on the single NVMe stream, and
            // each subgroup's write waits for its CPU update (the
            // downscale/H2D leg rides off the critical path): per subgroup
            // 12S/read + S/Uc + 12S/write, whole-state totals below.
            let read = 12.0 * params / cfg.profile.nvme_read_bw;
            let write = 12.0 * params / cfg.profile.nvme_write_bw;
            read + write + params / inputs.uc
        }
    }
}

/// Evaluates one matrix cell: predicts and simulates the update phase.
///
/// # Panics
///
/// Panics if `model` is not in the zoo or the simulation fails (both are
/// programming errors in the matrix definition, not divergences).
pub fn evaluate_cell(
    model: &str,
    profile: &HardwareProfile,
    kind: SchedulerKind,
    resident_ratio: f64,
) -> PerfCell {
    let spec = ModelSpec::by_name(model)
        .unwrap_or_else(|| panic!("unknown model `{model}` in conformance matrix"));
    let mut cfg = match kind {
        SchedulerKind::Zero3Offload | SchedulerKind::TwinFlow | SchedulerKind::ZenFlowAsync => {
            TrainConfig::baseline(spec, profile.clone())
        }
        SchedulerKind::DeepOptimizerStates(_) | SchedulerKind::NvmeOffload => {
            TrainConfig::deep_optimizer_states(spec, profile.clone())
        }
    };
    cfg.offload.gpu_resident_ratio = resident_ratio;
    if kind == SchedulerKind::NvmeOffload {
        cfg.offload.optimizer_on_nvme = true;
    }

    let report = match kind {
        SchedulerKind::Zero3Offload => simulate_iteration(&cfg, &Zero3Offload),
        SchedulerKind::TwinFlow => simulate_iteration(&cfg, &TwinFlow),
        SchedulerKind::DeepOptimizerStates(stride) => simulate_iteration(
            &cfg,
            &DeepOptimizerStates { stride, ..DeepOptimizerStates::default() },
        ),
        SchedulerKind::ZenFlowAsync => {
            simulate_iteration(&cfg, &ZenFlowAsync::new(resident_ratio, 1))
        }
        SchedulerKind::NvmeOffload => simulate_iteration(&cfg, &NvmeOffload::default()),
    }
    .expect("conformance simulation failed");

    PerfCell {
        model: model.to_string(),
        scheduler: kind.scheduler_name().to_string(),
        stride: kind.stride_label(),
        resident_ratio,
        predicted_secs: predict_update_secs(&cfg, kind),
        simulated_secs: report.update_secs,
        band: band_for(kind),
    }
}

/// Enumerates every `(model, scheduler, ratio)` coordinate of the matrix
/// without evaluating anything.
fn matrix_specs(
    models: &[String],
    strides: &[usize],
    ratios: &[f64],
) -> Vec<(String, SchedulerKind, f64)> {
    let mut specs = Vec::new();
    for model in models {
        specs.push((model.clone(), SchedulerKind::Zero3Offload, 0.0));
        specs.push((
            model.clone(),
            SchedulerKind::DeepOptimizerStates(StridePolicy::CpuOnly),
            0.0,
        ));
        specs.push((model.clone(), SchedulerKind::NvmeOffload, 0.0));
        for &ratio in ratios {
            // Ratio 0 would leave the hot set (and the prediction) empty.
            if ratio > 0.0 {
                specs.push((model.clone(), SchedulerKind::ZenFlowAsync, ratio));
            }
            specs.push((model.clone(), SchedulerKind::TwinFlow, ratio));
            specs.push((
                model.clone(),
                SchedulerKind::DeepOptimizerStates(StridePolicy::Auto),
                ratio,
            ));
            for &k in strides {
                specs.push((
                    model.clone(),
                    SchedulerKind::DeepOptimizerStates(StridePolicy::Fixed(k)),
                    ratio,
                ));
            }
        }
    }
    specs
}

/// Runs a matrix of cells and folds the out-of-band ones into a
/// [`DivergenceReport`].
pub fn run_matrix(
    models: &[String],
    profile: &HardwareProfile,
    strides: &[usize],
    ratios: &[f64],
) -> (Vec<PerfCell>, DivergenceReport) {
    run_matrix_filtered(models, profile, strides, ratios, None)
}

/// Like [`run_matrix`], but only evaluates cells whose coordinate string
/// (see [`cell_coordinates`]) contains `filter`. Filtered-out cells are
/// never simulated, so narrow filters run in a fraction of the full
/// matrix's time.
pub fn run_matrix_filtered(
    models: &[String],
    profile: &HardwareProfile,
    strides: &[usize],
    ratios: &[f64],
    filter: Option<&str>,
) -> (Vec<PerfCell>, DivergenceReport) {
    let cells: Vec<PerfCell> = matrix_specs(models, strides, ratios)
        .into_iter()
        .filter(|(model, kind, ratio)| {
            filter.is_none_or(|f| {
                cell_coordinates(model, kind.scheduler_name(), &kind.stride_label(), *ratio)
                    .contains(f)
            })
        })
        .map(|(model, kind, ratio)| evaluate_cell(&model, profile, kind, ratio))
        .collect();
    let report = report_from_cells(&cells);
    (cells, report)
}

/// Builds the divergence report for a set of evaluated cells.
pub fn report_from_cells(cells: &[PerfCell]) -> DivergenceReport {
    DivergenceReport {
        cells_checked: cells.len(),
        divergences: cells
            .iter()
            .filter(|c| !c.conformant())
            .map(|c| Divergence {
                oracle: "perf-model".to_string(),
                cell: c.coordinates(),
                expected: format!("sim/pred in [{:.2}, {:.2}]", c.band.lo, c.band.hi),
                observed: format!(
                    "sim/pred = {:.3} (sim {:.3}s, pred {:.3}s)",
                    c.ratio(),
                    c.simulated_secs,
                    c.predicted_secs
                ),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero3_prediction_is_tight() {
        let cell =
            evaluate_cell("20B", &HardwareProfile::jlse_h100(), SchedulerKind::Zero3Offload, 0.0);
        assert!(cell.conformant(), "ratio {:.3} outside {:?}", cell.ratio(), cell.band);
    }

    #[test]
    fn twinflow_prediction_tracks_resident_sweep() {
        for ratio in [0.0, 0.2, 0.5] {
            let cell =
                evaluate_cell("13B", &HardwareProfile::jlse_h100(), SchedulerKind::TwinFlow, ratio);
            assert!(
                cell.conformant(),
                "ratio={ratio}: sim/pred {:.3} outside {:?}",
                cell.ratio(),
                cell.band
            );
        }
    }

    #[test]
    fn dos_prediction_holds_across_strides() {
        for k in 1..=5 {
            let cell = evaluate_cell(
                "20B",
                &HardwareProfile::jlse_h100(),
                SchedulerKind::DeepOptimizerStates(StridePolicy::Fixed(k)),
                0.0,
            );
            assert!(
                cell.conformant(),
                "k={k}: sim/pred {:.3} outside {:?} (sim {:.3}s pred {:.3}s)",
                cell.ratio(),
                cell.band,
                cell.simulated_secs,
                cell.predicted_secs
            );
        }
    }

    #[test]
    fn zenflow_prediction_tracks_importance_sweep() {
        for ratio in [0.1, 0.3, 0.5] {
            let cell = evaluate_cell(
                "20B",
                &HardwareProfile::jlse_h100(),
                SchedulerKind::ZenFlowAsync,
                ratio,
            );
            assert!(
                cell.conformant(),
                "ratio={ratio}: sim/pred {:.3} outside {:?} (sim {:.4}s pred {:.4}s)",
                cell.ratio(),
                cell.band,
                cell.simulated_secs,
                cell.predicted_secs
            );
        }
    }

    #[test]
    fn nvme_prediction_holds_on_the_streaming_tier() {
        for model in ["7B", "20B"] {
            let cell = evaluate_cell(
                model,
                &HardwareProfile::jlse_h100(),
                SchedulerKind::NvmeOffload,
                0.0,
            );
            assert!(
                cell.conformant(),
                "{model}: sim/pred {:.3} outside {:?} (sim {:.3}s pred {:.3}s)",
                cell.ratio(),
                cell.band,
                cell.simulated_secs,
                cell.predicted_secs
            );
        }
    }

    #[test]
    fn matrix_includes_the_zenflow_and_nvme_arms() {
        let specs = matrix_specs(&["20B".to_string()], &[2], &[0.0, 0.3]);
        let zen: Vec<_> = specs
            .iter()
            .filter(|(_, k, _)| *k == SchedulerKind::ZenFlowAsync)
            .collect();
        assert_eq!(zen.len(), 1, "zenflow only at nonzero ratios: {zen:?}");
        assert_eq!(zen[0].2, 0.3);
        assert_eq!(
            specs.iter().filter(|(_, k, _)| *k == SchedulerKind::NvmeOffload).count(),
            1
        );
    }

    #[test]
    fn broken_prediction_is_flagged() {
        // Reintroducing the classic seed bug — dropping the H2D term from
        // the CPU-only cost — must push ZeRO-3 cells out of their band.
        let cell =
            evaluate_cell("20B", &HardwareProfile::jlse_h100(), SchedulerKind::Zero3Offload, 0.0);
        let inputs = HardwareProfile::jlse_h100().perf_model_inputs();
        let params = cell.predicted_secs / (1.0 / inputs.uc + 1.0 / inputs.dc + 1.0 / (2.0 * inputs.b));
        let buggy_pred = params * (1.0 / inputs.uc + 1.0 / inputs.dc);
        let buggy = PerfCell { predicted_secs: buggy_pred, ..cell };
        assert!(!buggy.conformant(), "bug not caught: ratio {:.3}", buggy.ratio());
        let report = report_from_cells(&[buggy]);
        assert_eq!(report.divergences.len(), 1);
        assert!(report.divergences[0].cell.contains("zero3-offload"));
    }
}
