//! Concurrency facade: real `crossbeam`/`std::thread` primitives in
//! production, a cooperative scheduler under deterministic checking.
//!
//! The hybrid pipeline and the async checkpointer build on exactly four
//! primitives: unbounded MPMC channels, scoped threads, detached threads,
//! and joins. This module is the single place they obtain them. In a
//! normal build the wrappers here compile straight down to
//! `crossbeam::channel` and `std::thread` and add nothing on top. With the
//! `check` feature enabled they *additionally* consult a thread-local
//! scheduler context at construction time: inside a checked run (see
//! [`sched::run_with_scheduler`]) every primitive becomes a virtualized,
//! schedule-controlled twin with a yield point at each observable
//! operation; outside a checked run — including every production code path
//! of a `check`-enabled build — the context is absent and the real
//! primitives are used, byte-for-byte identical behavior to the
//! feature-off build.
//!
//! That fall-through design is what lets `dos-check` sit downstream of
//! this crate in the same workspace (Cargo unifies features across the
//! build graph) without perturbing anything the conformance suite
//! measures.
//!
//! Historically this module lived inside `dos-core`; it became its own
//! crate so that crates *below* `dos-core` in the dependency graph
//! (`dos-collectives`' in-process transport, most notably) can route their
//! concurrency through the same facade and become explorable by
//! `dos-check`. `dos-core` re-exports it as `dos_core::sync`, so existing
//! paths keep working.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

#[cfg(feature = "check")]
pub mod sched;

pub use crossbeam::channel::{RecvError, RecvTimeoutError, SendError, TryRecvError};

// ---------------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------------

enum SenderRepr<T> {
    Real(crossbeam::channel::Sender<T>),
    #[cfg(feature = "check")]
    Virt(sched::VirtSender<T>),
}

enum ReceiverRepr<T> {
    Real(crossbeam::channel::Receiver<T>),
    #[cfg(feature = "check")]
    Virt(sched::VirtReceiver<T>),
}

/// Sending half of an unbounded channel (facade over
/// `crossbeam::channel::Sender`).
pub struct Sender<T>(SenderRepr<T>);

/// Receiving half of an unbounded channel (facade over
/// `crossbeam::channel::Receiver`).
pub struct Receiver<T>(ReceiverRepr<T>);

/// Creates an unbounded channel. Inside a checked run this returns a
/// virtualized channel whose operations are scheduler yield points;
/// otherwise it is exactly `crossbeam::channel::unbounded`.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    #[cfg(feature = "check")]
    if let Some(ctx) = sched::current() {
        let (tx, rx) = sched::virt_channel(&ctx);
        return (Sender(SenderRepr::Virt(tx)), Receiver(ReceiverRepr::Virt(rx)));
    }
    let (tx, rx) = crossbeam::channel::unbounded();
    (Sender(SenderRepr::Real(tx)), Receiver(ReceiverRepr::Real(rx)))
}

impl<T> Sender<T> {
    /// Sends a value; fails iff all receivers are gone.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] carrying the value back when the channel is
    /// disconnected.
    pub fn send(&self, v: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderRepr::Real(tx) => tx.send(v),
            #[cfg(feature = "check")]
            SenderRepr::Virt(tx) => tx.send(v),
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            SenderRepr::Real(tx) => Sender(SenderRepr::Real(tx.clone())),
            #[cfg(feature = "check")]
            SenderRepr::Virt(tx) => Sender(SenderRepr::Virt(tx.clone())),
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value or disconnection.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is empty and all senders are
    /// gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.0 {
            ReceiverRepr::Real(rx) => rx.recv(),
            #[cfg(feature = "check")]
            ReceiverRepr::Virt(rx) => rx.recv(),
        }
    }

    /// Receives with a deadline. Inside a checked run the timeout is
    /// virtual and never fires: the cooperative scheduler's deadlock
    /// detector subsumes it (a recv that can never be enabled is reported
    /// as a deadlock rather than spun on), so the virtualized arm degrades
    /// to a plain blocking [`Receiver::recv`].
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] when the channel is empty and all
    /// senders are gone.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        match &self.0 {
            ReceiverRepr::Real(rx) => rx.recv_timeout(timeout),
            #[cfg(feature = "check")]
            ReceiverRepr::Virt(rx) => rx.recv().map_err(|RecvError| RecvTimeoutError::Disconnected),
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally all senders are
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match &self.0 {
            ReceiverRepr::Real(rx) => rx.try_recv(),
            #[cfg(feature = "check")]
            ReceiverRepr::Virt(rx) => rx.try_recv(),
        }
    }

    /// Iterator of received values; ends at disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Blocking iterator over a [`Receiver`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

// ---------------------------------------------------------------------------
// Scoped threads
// ---------------------------------------------------------------------------

#[cfg(feature = "check")]
type PendingJoins = std::sync::Arc<parking_lot::Mutex<Vec<sched::Tid>>>;

/// Facade over [`std::thread::Scope`]: spawns scoped threads that, inside
/// a checked run, become scheduler-controlled virtual threads.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    #[cfg(feature = "check")]
    ctx: Option<sched::Ctx>,
    #[cfg(feature = "check")]
    pending: PendingJoins,
}

/// Handle to a scoped thread; facade over
/// [`std::thread::ScopedJoinHandle`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    #[cfg(feature = "check")]
    virt: Option<VirtHandle>,
}

#[cfg(feature = "check")]
struct VirtHandle {
    ctx: sched::Ctx,
    tid: sched::Tid,
    pending: PendingJoins,
}

/// Runs `f` with a [`Scope`] whose spawned threads are all joined before
/// this call returns — `std::thread::scope` semantics, scheduler-aware
/// inside a checked run (handles the body never joined are yield-joined
/// through the scheduler so the implicit scope join cannot block outside
/// its control).
pub fn scope<'env, T, F>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| {
        let scope = Scope {
            inner: s,
            #[cfg(feature = "check")]
            ctx: sched::current(),
            #[cfg(feature = "check")]
            pending: std::sync::Arc::new(parking_lot::Mutex::new(Vec::new())),
        };
        #[cfg(feature = "check")]
        let _drain = DrainGuard(&scope);
        f(&scope)
    })
}

/// Yield-joins (or, when unwinding, aborts) a scope's unjoined virtual
/// threads before the enclosing `std::thread::scope` performs its own
/// blocking joins.
#[cfg(feature = "check")]
struct DrainGuard<'a, 'scope, 'env>(&'a Scope<'scope, 'env>);

#[cfg(feature = "check")]
impl Drop for DrainGuard<'_, '_, '_> {
    fn drop(&mut self) {
        let Some(ctx) = &self.0.ctx else { return };
        if std::thread::panicking() {
            // A panic is escaping the scope body while children may still
            // be parked; only the controller can advance them, so tear the
            // run down and let the implicit scope join collect the unwound
            // threads.
            sched::abort_from_thread(ctx);
            return;
        }
        let tids: Vec<sched::Tid> = std::mem::take(&mut *self.0.pending.lock());
        for tid in tids {
            sched::join_thread(ctx, tid);
        }
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread (virtualized inside a checked run).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        #[cfg(feature = "check")]
        if let Some(ctx) = &self.ctx {
            let (shared, tid) = sched::register_child(ctx);
            self.pending.lock().push(tid);
            let inner = self.inner.spawn(move || {
                let _guard = sched::enter(shared, tid);
                f()
            });
            return ScopedJoinHandle {
                inner,
                virt: Some(VirtHandle {
                    ctx: ctx.clone(),
                    tid,
                    pending: self.pending.clone(),
                }),
            };
        }
        ScopedJoinHandle {
            inner: self.inner.spawn(f),
            #[cfg(feature = "check")]
            virt: None,
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it unwound.
    pub fn join(self) -> std::thread::Result<T> {
        #[cfg(feature = "check")]
        if let Some(v) = &self.virt {
            v.pending.lock().retain(|&t| t != v.tid);
            sched::join_thread(&v.ctx, v.tid);
        }
        self.inner.join()
    }
}

// ---------------------------------------------------------------------------
// Detached threads
// ---------------------------------------------------------------------------

/// Handle to a detached thread; facade over [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    #[cfg(feature = "check")]
    virt: Option<OwnedVirt>,
}

#[cfg(feature = "check")]
struct OwnedVirt {
    ctx: sched::Ctx,
    tid: sched::Tid,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

/// Spawns a detached thread (facade over [`std::thread::spawn`];
/// virtualized inside a checked run).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    #[cfg(feature = "check")]
    if let Some(ctx) = sched::current() {
        let (shared, tid) = sched::register_child(&ctx);
        let inner = std::thread::spawn(move || {
            let _guard = sched::enter(shared, tid);
            f()
        });
        return JoinHandle { inner, virt: Some(OwnedVirt { ctx, tid }) };
    }
    JoinHandle {
        inner: std::thread::spawn(f),
        #[cfg(feature = "check")]
        virt: None,
    }
}

impl<T> JoinHandle<T> {
    /// Whether the thread has finished. Inside a checked run the probe is
    /// itself a scheduling yield point (observing completion is an
    /// interleaving decision).
    pub fn is_finished(&self) -> bool {
        #[cfg(feature = "check")]
        if let Some(v) = &self.virt {
            return sched::poll_thread(&v.ctx, v.tid);
        }
        self.inner.is_finished()
    }

    /// Waits for the thread to finish; `Err` carries its panic payload.
    ///
    /// # Errors
    ///
    /// Returns the thread's panic payload if it unwound.
    pub fn join(self) -> std::thread::Result<T> {
        #[cfg(feature = "check")]
        if let Some(v) = &self.virt {
            sched::join_thread(&v.ctx, v.tid);
        }
        self.inner.join()
    }
}

#[cfg(all(test, feature = "check"))]
mod tests {
    use super::sched::{run_with_scheduler, Pick, PendingOp, RunError};
    use super::*;

    /// Lowest-enabled-tid pick: the deterministic default schedule.
    fn first(_: usize, enabled: &[(sched::Tid, PendingOp)]) -> Pick {
        Pick::Run(enabled[0].0)
    }

    #[test]
    fn facade_uses_real_primitives_outside_a_run() {
        let (tx, rx) = unbounded::<u32>();
        std::thread::scope(|s| {
            s.spawn(move || {
                tx.send(7).unwrap();
            });
            assert_eq!(rx.recv(), Ok(7));
        });
    }

    #[test]
    fn checked_run_ping_pong_completes_under_default_schedule() {
        let outcome = run_with_scheduler(
            || {
                let (tx, rx) = unbounded::<u32>();
                let (back_tx, back_rx) = unbounded::<u32>();
                scope(|s| {
                    let worker = s.spawn(move || {
                        while let Ok(v) = rx.recv() {
                            back_tx.send(v * 2).unwrap();
                        }
                    });
                    for i in 0..4 {
                        tx.send(i).unwrap();
                    }
                    drop(tx);
                    let got: Vec<u32> = back_rx.iter().collect();
                    worker.join().unwrap();
                    got
                })
            },
            first,
            10_000,
        );
        assert!(outcome.error.is_none(), "unexpected teardown: {:?}", outcome.error);
        assert_eq!(outcome.result.unwrap(), vec![0, 2, 4, 6]);
        assert!(!outcome.trace.is_empty());
    }

    #[test]
    fn recv_with_live_sender_in_hand_is_a_detected_deadlock() {
        let outcome = run_with_scheduler(
            || {
                let (_tx, rx) = unbounded::<u32>();
                // _tx is alive on this very thread: recv can never be
                // enabled, and no other thread exists to send.
                let _ = rx.recv();
            },
            first,
            10_000,
        );
        match outcome.error {
            Some(RunError::Deadlock { parked, .. }) => {
                assert!(parked.iter().any(|(_, op)| matches!(op, PendingOp::Recv(_))));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(outcome.result.is_err(), "root must have been unwound");
    }

    #[test]
    fn detached_spawn_poll_and_join_are_schedulable() {
        let outcome = run_with_scheduler(
            || {
                let h = spawn(|| 41 + 1);
                let polled = h.is_finished();
                let v = h.join().unwrap();
                (polled, v)
            },
            first,
            10_000,
        );
        assert!(outcome.error.is_none());
        let (_, v) = outcome.result.unwrap();
        assert_eq!(v, 42);
    }

}
