//! Cooperative scheduler: the `check`-mode backend of the [`crate`]-level
//! facade.
//!
//! A *checked run* executes a closure (the "root body") on a virtual
//! thread whose every interaction with a channel or another thread is a
//! **yield point**: the thread parks, publishes the operation it wants to
//! perform ([`PendingOp`]), and waits for the controller to grant it the
//! run token. Exactly one virtual thread runs between grants, so the
//! entire interleaving of a run is the sequence of grants — a schedule —
//! chosen by the controller's [`Pick`] callback. Replaying the same pick
//! sequence replays the same execution bit for bit.
//!
//! Virtual threads are real OS threads (spawned inside a [`std::thread::scope`])
//! gated on a single mutex+condvar core, so the user code under test is the
//! *same code* that runs in production — only the primitives it blocks on
//! are swapped, and only when a scheduler context is installed on the
//! current thread.
//!
//! Blocking semantics are modeled, not executed: a `recv` on an empty,
//! connected channel leaves the thread parked-but-not-*enabled*, and the
//! controller only ever grants enabled threads. "All live threads parked,
//! none enabled" is therefore a *detected deadlock* (which subsumes
//! lost-wakeup bugs: a wakeup that production code would have missed shows
//! up here as a permanently disabled thread). Runs are torn down by
//! granting every parked thread with the abort flag raised; the primitives
//! then unwind their threads via a panic carrying [`Aborted`].

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Virtual thread id (index into the run's thread table; the root body is
/// always tid 0, children number upward in spawn order).
pub type Tid = usize;

/// Virtual channel id (index into the run's channel table, in creation
/// order — deterministic under a fixed schedule).
pub type ChanId = usize;

/// The operation a parked virtual thread wants to perform next. This is
/// what schedule exploration sees at every decision point, and what
/// partial-order pruning reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PendingOp {
    /// A freshly spawned thread waiting to start executing.
    Start,
    /// Send one value into a channel (never blocks: channels are unbounded).
    Send(ChanId),
    /// Receive from a channel; enabled when the queue is non-empty or all
    /// senders are gone.
    Recv(ChanId),
    /// Non-blocking receive probe (always enabled).
    TryRecv(ChanId),
    /// Drop one sender handle of a channel.
    CloseSender(ChanId),
    /// Drop one receiver handle of a channel.
    CloseReceiver(ChanId),
    /// Join another virtual thread; enabled once it has finished.
    Join(Tid),
    /// Observe whether another virtual thread has finished (always enabled).
    Poll(Tid),
}

impl PendingOp {
    /// The channel this operation touches, if it is a channel operation.
    pub fn channel(&self) -> Option<ChanId> {
        match self {
            PendingOp::Send(c)
            | PendingOp::Recv(c)
            | PendingOp::TryRecv(c)
            | PendingOp::CloseSender(c)
            | PendingOp::CloseReceiver(c) => Some(*c),
            _ => None,
        }
    }
}

/// Panic payload used to unwind virtual threads when a run is torn down
/// (deadlock, prune, or step-limit). Never escapes [`run_with_scheduler`].
#[derive(Debug, Clone, Copy)]
pub struct Aborted;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Holds the run token and is executing user code.
    Running,
    /// Parked at a yield point, waiting for a grant.
    Parked(PendingOp),
    /// The thread's body has returned (or unwound).
    Finished,
}

struct ThreadSlot {
    status: Status,
    granted: bool,
}

struct ChanSlot {
    len: usize,
    senders: usize,
    receivers: usize,
}

struct Core {
    threads: Vec<ThreadSlot>,
    chans: Vec<ChanSlot>,
    abort: bool,
}

/// Shared state of one checked run: the scheduling core plus the condvar
/// both sides (controller and virtual threads) block on.
pub struct Shared {
    core: Mutex<Core>,
    cv: Condvar,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            core: Mutex::new(Core { threads: Vec::new(), chans: Vec::new(), abort: false }),
            cv: Condvar::new(),
        }
    }

    /// Raises the abort flag and grants every parked thread so it can
    /// unwind. Idempotent; callable from either side.
    fn abort_all(&self) {
        let mut core = self.core.lock();
        core.abort = true;
        for t in core.threads.iter_mut() {
            if matches!(t.status, Status::Parked(_)) {
                t.granted = true;
            }
        }
        drop(core);
        self.cv.notify_all();
    }
}

/// Per-thread scheduler context: which run this thread belongs to and its
/// virtual thread id. Installed in TLS by [`enter`].
#[derive(Clone)]
pub struct Ctx {
    shared: Arc<Shared>,
    tid: Tid,
}

std::thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The scheduler context installed on the current thread, if any. The
/// facade uses this to decide between real and virtual primitives.
pub fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

impl Ctx {
    /// Parks the current virtual thread at a yield point and blocks until
    /// the controller grants it the run token.
    ///
    /// During panic-unwinding this is a no-op (state updates still happen
    /// in the callers' `Drop` impls); if the run is aborting it panics
    /// with [`Aborted`] to unwind this thread.
    fn yield_op(&self, op: PendingOp) {
        if std::thread::panicking() {
            return;
        }
        let mut core = self.shared.core.lock();
        if core.abort {
            drop(core);
            std::panic::resume_unwind(Box::new(Aborted));
        }
        self.park_and_wait(&mut core, op);
        let abort = core.abort;
        drop(core);
        if abort {
            std::panic::resume_unwind(Box::new(Aborted));
        }
    }

    fn park_and_wait(&self, core: &mut parking_lot::MutexGuard<'_, Core>, op: PendingOp) {
        core.threads[self.tid].status = Status::Parked(op);
        core.threads[self.tid].granted = false;
        self.shared.cv.notify_all();
        while !core.threads[self.tid].granted {
            self.shared.cv.wait(core);
        }
        core.threads[self.tid].granted = false;
        core.threads[self.tid].status = Status::Running;
    }

    fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

/// Registers a new virtual thread (born parked at [`PendingOp::Start`])
/// and returns its tid. Called by the spawning side before the OS thread
/// exists, so the controller sees the child immediately.
fn register_thread(shared: &Arc<Shared>) -> Tid {
    let mut core = shared.core.lock();
    core.threads.push(ThreadSlot { status: Status::Parked(PendingOp::Start), granted: false });
    let tid = core.threads.len() - 1;
    drop(core);
    shared.cv.notify_all();
    tid
}

/// Marks a thread finished when its body returns *or unwinds*, and clears
/// the TLS context. Produced by [`enter`]; must outlive the body.
pub struct ThreadGuard {
    shared: Arc<Shared>,
    tid: Tid,
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = None);
        let mut core = self.shared.core.lock();
        core.threads[self.tid].status = Status::Finished;
        core.threads[self.tid].granted = false;
        drop(core);
        self.shared.cv.notify_all();
    }
}

/// Installs the scheduler context on the current OS thread, then blocks
/// until the controller schedules this virtual thread for the first time.
/// The returned guard marks the thread finished on drop (including
/// unwinds), so hold it for the whole body.
pub(super) fn enter(shared: Arc<Shared>, tid: Tid) -> ThreadGuard {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx { shared: shared.clone(), tid });
    });
    let guard = ThreadGuard { shared: shared.clone(), tid };
    // Wait for the first grant. Status is already Parked(Start).
    let mut core = shared.core.lock();
    while !core.threads[tid].granted {
        shared.cv.wait(&mut core);
    }
    core.threads[tid].granted = false;
    core.threads[tid].status = Status::Running;
    let abort = core.abort;
    drop(core);
    if abort {
        std::panic::resume_unwind(Box::new(Aborted));
    }
    guard
}

/// Spawn-side half of [`enter`]: registers the child with the scheduler.
pub(super) fn register_child(ctx: &Ctx) -> (Arc<Shared>, Tid) {
    let shared = ctx.shared().clone();
    let tid = register_thread(&shared);
    (shared, tid)
}

/// Scheduler-aware join: parks until `tid` has finished. A no-op when the
/// current thread is unwinding.
pub(super) fn join_thread(ctx: &Ctx, tid: Tid) {
    ctx.yield_op(PendingOp::Join(tid));
}

/// Scheduler-aware `is_finished` probe: yields (the observation is a real
/// interleaving point) and then reads the target's status.
pub(super) fn poll_thread(ctx: &Ctx, tid: Tid) -> bool {
    ctx.yield_op(PendingOp::Poll(tid));
    let core = ctx.shared.core.lock();
    matches!(core.threads[tid].status, Status::Finished)
}

/// Tears the current run down from *inside* a virtual thread (used when a
/// user panic is escaping a scope that still has live children, so the
/// implicit scope join cannot be left waiting on threads only the
/// controller can advance).
pub(super) fn abort_from_thread(ctx: &Ctx) {
    ctx.shared.abort_all();
}

// ---------------------------------------------------------------------------
// Virtual channels
// ---------------------------------------------------------------------------

struct ChanData<T> {
    queue: Mutex<VecDeque<T>>,
}

/// Sending half of a virtual channel.
pub struct VirtSender<T> {
    id: ChanId,
    shared: Arc<Shared>,
    data: Arc<ChanData<T>>,
}

/// Receiving half of a virtual channel.
pub struct VirtReceiver<T> {
    id: ChanId,
    shared: Arc<Shared>,
    data: Arc<ChanData<T>>,
}

/// Creates an unbounded virtual channel registered with `ctx`'s run.
pub(super) fn virt_channel<T>(ctx: &Ctx) -> (VirtSender<T>, VirtReceiver<T>) {
    let shared = ctx.shared().clone();
    let mut core = shared.core.lock();
    core.chans.push(ChanSlot { len: 0, senders: 1, receivers: 1 });
    let id = core.chans.len() - 1;
    drop(core);
    let data = Arc::new(ChanData { queue: Mutex::new(VecDeque::new()) });
    (
        VirtSender { id, shared: shared.clone(), data: data.clone() },
        VirtReceiver { id, shared, data },
    )
}

/// The context of the current thread, which must belong to the same run as
/// the endpoint. Channel endpoints never migrate between runs.
fn endpoint_ctx(shared: &Arc<Shared>) -> Ctx {
    match current() {
        Some(ctx) if Arc::ptr_eq(ctx.shared(), shared) => ctx,
        Some(_) => panic!("virtual channel endpoint used from a different checked run"),
        None => panic!("virtual channel endpoint used outside its checked run"),
    }
}

impl<T> VirtSender<T> {
    /// Sends `v`, yielding to the scheduler first. Fails iff the receiver
    /// is gone, matching crossbeam semantics.
    pub fn send(&self, v: T) -> Result<(), crossbeam::channel::SendError<T>> {
        let ctx = endpoint_ctx(&self.shared);
        ctx.yield_op(PendingOp::Send(self.id));
        let mut core = self.shared.core.lock();
        if core.chans[self.id].receivers == 0 {
            return Err(crossbeam::channel::SendError(v));
        }
        core.chans[self.id].len += 1;
        drop(core);
        self.data.queue.lock().push_back(v);
        Ok(())
    }
}

impl<T> Clone for VirtSender<T> {
    fn clone(&self) -> Self {
        let mut core = self.shared.core.lock();
        core.chans[self.id].senders += 1;
        drop(core);
        VirtSender { id: self.id, shared: self.shared.clone(), data: self.data.clone() }
    }
}

impl<T> Drop for VirtSender<T> {
    fn drop(&mut self) {
        // Dropping a sender is observable (it can disconnect the channel),
        // so it is a yield point — except during unwinds, where we only
        // record the state change.
        if !std::thread::panicking() {
            if let Some(ctx) = current() {
                if Arc::ptr_eq(ctx.shared(), &self.shared) {
                    ctx.yield_op(PendingOp::CloseSender(self.id));
                }
            }
        }
        let mut core = self.shared.core.lock();
        core.chans[self.id].senders = core.chans[self.id].senders.saturating_sub(1);
        drop(core);
        self.shared.cv.notify_all();
    }
}

impl<T> VirtReceiver<T> {
    /// Receives one value, yielding until the channel is readable or
    /// disconnected. The controller only grants this operation when it is
    /// enabled, so after the grant exactly one outcome applies.
    pub fn recv(&self) -> Result<T, crossbeam::channel::RecvError> {
        let ctx = endpoint_ctx(&self.shared);
        ctx.yield_op(PendingOp::Recv(self.id));
        let mut core = self.shared.core.lock();
        if core.chans[self.id].len > 0 {
            core.chans[self.id].len -= 1;
            drop(core);
            match self.data.queue.lock().pop_front() {
                Some(v) => Ok(v),
                None => panic!("virtual channel accounting out of sync with its queue"),
            }
        } else if core.chans[self.id].senders == 0 {
            Err(crossbeam::channel::RecvError)
        } else {
            panic!("scheduler granted recv on an empty, connected channel")
        }
    }

    /// Non-blocking receive; the probe itself is a yield point.
    pub fn try_recv(&self) -> Result<T, crossbeam::channel::TryRecvError> {
        let ctx = endpoint_ctx(&self.shared);
        ctx.yield_op(PendingOp::TryRecv(self.id));
        let mut core = self.shared.core.lock();
        if core.chans[self.id].len > 0 {
            core.chans[self.id].len -= 1;
            drop(core);
            match self.data.queue.lock().pop_front() {
                Some(v) => Ok(v),
                None => panic!("virtual channel accounting out of sync with its queue"),
            }
        } else if core.chans[self.id].senders == 0 {
            Err(crossbeam::channel::TryRecvError::Disconnected)
        } else {
            Err(crossbeam::channel::TryRecvError::Empty)
        }
    }
}

impl<T> Drop for VirtReceiver<T> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            if let Some(ctx) = current() {
                if Arc::ptr_eq(ctx.shared(), &self.shared) {
                    ctx.yield_op(PendingOp::CloseReceiver(self.id));
                }
            }
        }
        let mut core = self.shared.core.lock();
        core.chans[self.id].receivers = core.chans[self.id].receivers.saturating_sub(1);
        drop(core);
        self.shared.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// The controller's decision at one quiescent point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pick {
    /// Grant the run token to this tid (must be enabled).
    Run(Tid),
    /// Abandon the run (the explorer pruned this branch).
    Stop,
}

/// One recorded scheduling decision: what was runnable and what ran.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// The tid that was granted.
    pub chosen: Tid,
    /// Every enabled `(tid, pending-op)` pair at this point, ordered by
    /// tid. Deterministic under a fixed schedule.
    pub enabled: Vec<(Tid, PendingOp)>,
}

/// Why a run ended without its body completing normally.
#[derive(Debug, Clone)]
pub enum RunError {
    /// Every live thread was parked and none was enabled.
    Deadlock {
        /// Decision index at which the deadlock was detected.
        step: usize,
        /// The parked `(tid, op)` set at that point.
        parked: Vec<(Tid, PendingOp)>,
    },
    /// The pick callback abandoned the run ([`Pick::Stop`]).
    Stopped {
        /// Decision index at which the run was abandoned.
        step: usize,
    },
    /// The run exceeded the step budget (runaway-schedule guard).
    StepLimit {
        /// The configured budget.
        limit: usize,
    },
}

/// Everything a finished run yields: the body's result (None only when the
/// run was torn down before the root finished cleanly — the root is still
/// joined, its panic folded into `result` as `Some(Err(..))`), the decision
/// trace, and the teardown reason if any.
pub struct RunOutcome<R> {
    /// The root body's outcome; `Err` carries a panic payload (which is
    /// [`Aborted`] for controller-initiated teardowns).
    pub result: std::thread::Result<R>,
    /// The full decision trace, one record per grant.
    pub trace: Vec<StepRecord>,
    /// Set when the run was torn down (deadlock, prune, step limit).
    pub error: Option<RunError>,
}

fn op_enabled(core: &Core, op: &PendingOp) -> bool {
    match op {
        PendingOp::Recv(c) => core.chans[*c].len > 0 || core.chans[*c].senders == 0,
        PendingOp::Join(t) => matches!(core.threads[*t].status, Status::Finished),
        _ => true,
    }
}

/// Runs `body` as virtual thread 0 under a fresh cooperative scheduler,
/// asking `pick` which enabled thread to grant at every quiescent point.
///
/// `pick(step, enabled)` receives the decision index and the enabled set
/// (ordered by tid, never empty); returning [`Pick::Stop`] tears the run
/// down. A quiescent point with *no* enabled thread is a deadlock: the run
/// is torn down and reported in [`RunOutcome::error`].
///
/// Panics if called from inside another checked run (no nesting).
pub fn run_with_scheduler<R, F, P>(body: F, mut pick: P, max_steps: usize) -> RunOutcome<R>
where
    F: FnOnce() -> R + Send,
    R: Send,
    P: FnMut(usize, &[(Tid, PendingOp)]) -> Pick,
{
    if current().is_some() {
        panic!("nested checked runs are not supported");
    }
    let shared = Arc::new(Shared::new());
    let mut trace: Vec<StepRecord> = Vec::new();
    let mut error: Option<RunError> = None;

    let result = std::thread::scope(|s| {
        let root_tid = register_thread(&shared);
        let sh = shared.clone();
        let root = s.spawn(move || {
            let _guard = enter(sh, root_tid);
            body()
        });

        loop {
            // Wait for quiescence: nobody running, no grant outstanding.
            let mut core = shared.core.lock();
            loop {
                let busy = core.threads.iter().any(|t| {
                    matches!(t.status, Status::Running)
                        || (matches!(t.status, Status::Parked(_)) && t.granted)
                });
                if !busy {
                    break;
                }
                shared.cv.wait(&mut core);
            }
            if core.threads.iter().all(|t| matches!(t.status, Status::Finished)) {
                break;
            }

            // Collect the parked set and who is enabled, ordered by tid.
            let mut parked: Vec<(Tid, PendingOp)> = Vec::new();
            let mut enabled: Vec<(Tid, PendingOp)> = Vec::new();
            for (tid, t) in core.threads.iter().enumerate() {
                if let Status::Parked(op) = &t.status {
                    parked.push((tid, *op));
                    if op_enabled(&core, op) {
                        enabled.push((tid, *op));
                    }
                }
            }

            if enabled.is_empty() {
                error = Some(RunError::Deadlock { step: trace.len(), parked });
                drop(core);
                shared.abort_all();
                continue;
            }
            if trace.len() >= max_steps {
                error = Some(RunError::StepLimit { limit: max_steps });
                drop(core);
                shared.abort_all();
                continue;
            }
            drop(core);

            match pick(trace.len(), &enabled) {
                Pick::Run(tid) => {
                    let mut core = shared.core.lock();
                    let ok_grant = matches!(core.threads[tid].status, Status::Parked(_))
                        && enabled.iter().any(|(t, _)| *t == tid);
                    if !ok_grant {
                        panic!("pick chose tid {tid}, which is not enabled");
                    }
                    core.threads[tid].granted = true;
                    drop(core);
                    shared.cv.notify_all();
                    trace.push(StepRecord { chosen: tid, enabled });
                }
                Pick::Stop => {
                    error = Some(RunError::Stopped { step: trace.len() });
                    shared.abort_all();
                }
            }
        }

        root.join()
    });

    RunOutcome { result, trace, error }
}
