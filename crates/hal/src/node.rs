//! Instantiation of a simulated training rank.
//!
//! A [`RankSim`] bundles one data-parallel rank's view of the node: the GPU,
//! its share of the host CPUs, its dedicated PCIe link (one resource per
//! direction, so the engine models full duplex), the NVLink port used by
//! collectives, host-DRAM bandwidth, and the standard set of streams the
//! Deep Optimizer States middleware uses (compute, H2D, D2H, and the three
//! dedicated parameter/momentum/variance transfer streams of Algorithm 1).
//!
//! Because the paper's update phase is embarrassingly parallel across ranks
//! (§2: "no interprocess communication is required in the update phase"),
//! simulating a single representative rank reproduces per-iteration timing;
//! collective costs for forward/backward are layered on by `dos-sim`.

use crate::engine::{ResourceId, ResourceKind, Simulator, StreamId};
use crate::memory::MemoryPool;
use crate::profile::HardwareProfile;

/// The per-rank resource and stream handles for one simulated rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankResources {
    /// GPU execution units (work unit: seconds of GPU time).
    pub gpu: ResourceId,
    /// This rank's CPU-core share (work unit: seconds of CPU time).
    pub cpu: ResourceId,
    /// Host-to-device direction of the rank's PCIe link (bytes).
    pub h2d: ResourceId,
    /// Device-to-host direction of the rank's PCIe link (bytes).
    pub d2h: ResourceId,
    /// NVLink port for collectives (bytes).
    pub nvlink: ResourceId,
    /// Host DRAM bandwidth share (bytes) — models allocation and host-side
    /// conversion contention.
    pub host_mem: ResourceId,
    /// NVMe bandwidth (bytes) for checkpoint/offload extensions.
    pub nvme: ResourceId,
}

/// The standard stream set used by the middleware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankStreams {
    /// Default GPU compute stream (forward/backward kernels, GPU updates).
    pub compute: StreamId,
    /// CPU work queue (CPU updates, downscaling).
    pub cpu: StreamId,
    /// General H2D copy stream.
    pub h2d: StreamId,
    /// General D2H copy stream.
    pub d2h: StreamId,
    /// Dedicated parameter-transfer stream (Algorithm 1, lines 14/17/21).
    pub param: StreamId,
    /// Dedicated momentum-transfer stream (lines 15/19).
    pub momentum: StreamId,
    /// Dedicated variance-transfer stream (lines 16/20).
    pub variance: StreamId,
}

/// One simulated data-parallel rank: engine + resources + memory pools.
#[derive(Debug, Clone)]
pub struct RankSim {
    /// The underlying scheduling engine.
    pub sim: Simulator,
    /// Resource handles.
    pub res: RankResources,
    /// Stream handles.
    pub streams: RankStreams,
    /// The GPU's HBM pool.
    pub hbm: MemoryPool,
    /// This rank's share of host DRAM.
    pub dram: MemoryPool,
    /// The hardware profile the rank was built from.
    pub profile: HardwareProfile,
}

impl RankSim {
    /// Builds a rank from a profile.
    ///
    /// CPU and GPU compute resources are registered with rate 1.0 (their
    /// work unit is *seconds of occupancy*); callers derive durations from
    /// the profile's throughputs so that contention scaling via
    /// [`Simulator::set_throughput_scale`] still applies.
    pub fn new(profile: &HardwareProfile) -> Self {
        let mut sim = Simulator::new();
        let res = RankResources {
            gpu: sim.add_resource("gpu", ResourceKind::GpuCompute, 1.0),
            cpu: sim.add_resource("cpu", ResourceKind::CpuCompute, 1.0),
            h2d: sim.add_resource("pcie.h2d", ResourceKind::LinkH2D, profile.pcie_h2d),
            d2h: sim.add_resource("pcie.d2h", ResourceKind::LinkD2H, profile.pcie_d2h),
            nvlink: sim.add_resource("nvlink", ResourceKind::LinkD2D, profile.nvlink_bw),
            host_mem: sim.add_resource(
                "host.dram",
                ResourceKind::HostMemory,
                profile.host_memcpy_bw,
            ),
            nvme: sim.add_resource("nvme", ResourceKind::Nvme, profile.nvme_write_bw),
        };
        let streams = RankStreams {
            compute: sim.add_stream("compute"),
            cpu: sim.add_stream("cpu"),
            h2d: sim.add_stream("h2d"),
            d2h: sim.add_stream("d2h"),
            param: sim.add_stream("param"),
            momentum: sim.add_stream("momentum"),
            variance: sim.add_stream("variance"),
        };
        RankSim {
            sim,
            res,
            streams,
            hbm: MemoryPool::new("gpu.hbm", profile.gpu_hbm_bytes),
            dram: MemoryPool::new("host.dram", profile.dram_per_rank()),
            profile: profile.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::OpSpec;
    use crate::profile::GB;

    #[test]
    fn rank_has_full_duplex_pcie() {
        let profile = HardwareProfile::jlse_h100();
        let mut rank = RankSim::new(&profile);
        let a = rank
            .sim
            .submit(OpSpec::transfer(rank.res.h2d, 55.0 * GB).on(rank.streams.h2d))
            .unwrap();
        let b = rank
            .sim
            .submit(OpSpec::transfer(rank.res.d2h, 55.0 * GB).on(rank.streams.d2h))
            .unwrap();
        assert!((rank.sim.finish_time(a).as_secs() - 1.0).abs() < 1e-9);
        assert!((rank.sim.finish_time(b).as_secs() - 1.0).abs() < 1e-9);
        assert!((rank.sim.makespan().as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pools_match_profile_capacities() {
        let profile = HardwareProfile::jlse_h100();
        let rank = RankSim::new(&profile);
        assert_eq!(rank.hbm.capacity(), profile.gpu_hbm_bytes);
        assert_eq!(rank.dram.capacity(), profile.dram_per_rank());
    }

    #[test]
    fn dedicated_transfer_streams_are_distinct() {
        let profile = HardwareProfile::v100_node();
        let rank = RankSim::new(&profile);
        let s = [
            rank.streams.compute,
            rank.streams.cpu,
            rank.streams.h2d,
            rank.streams.d2h,
            rank.streams.param,
            rank.streams.momentum,
            rank.streams.variance,
        ];
        let mut unique = s.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), s.len());
    }

    #[test]
    fn resource_names_are_queryable() {
        let rank = RankSim::new(&HardwareProfile::jlse_h100());
        assert_eq!(rank.sim.resource_name(rank.res.gpu), "gpu");
        assert_eq!(rank.sim.resource_name(rank.res.h2d), "pcie.h2d");
        assert_eq!(
            rank.sim.resource_kind(rank.res.d2h),
            crate::engine::ResourceKind::LinkD2H
        );
    }
}
